"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro circuits
    python -m repro flow s27 --lg 256 --verilog tpg.v --bench tpg.bench
    python -m repro flow g1488 --jobs 4 --stats
    python -m repro flow s27 --save-tpg design.json --lint strict
    python -m repro table6 s27 g208
    python -m repro tradeoff g208
    python -m repro atpg s27
    python -m repro bench-info path/to/design.bench
    python -m repro lint s27 design.json --format sarif --output lint.sarif
    python -m repro lint --all-circuits --self --fail-on error

Every command prints plain text; files are written only when an output
path is given explicitly.

The simulation-heavy commands (``flow``, ``table6``, ``tradeoff``)
accept runtime flags: ``--jobs N`` fans fault simulation out over N
worker processes, ``--cache-dir PATH`` / ``--no-cache`` control the
on-disk artifact cache (on by default, under ``~/.cache/repro``),
``--stats`` prints the runtime counters after the command, and
``--lint [warn|strict]`` runs the static diagnostics gate on circuits
and synthesized TPGs as they flow through.  Results are bit-identical
regardless of worker count or cache state.

They also accept the resilience flags: ``--task-timeout SECONDS`` and
``--retries N`` govern recovery from hung or crashed workers (failing
tasks are ultimately replayed serially, so results never change),
``--resume`` lets a sweep skip circuits already checkpointed by an
earlier — possibly interrupted — run, and ``--chaos SPEC`` turns on
the deterministic fault-injection harness (for testing the recovery
paths).  SIGINT/SIGTERM stop a sweep cleanly: completed circuits stay
checkpointed and the command exits with status 130.

And the tracing flags: ``--trace PATH`` records a hierarchical span
trace of the run (wall/CPU time and runtime-counter deltas per phase)
and ``--trace-format text|json|chrome`` selects the export — ``chrome``
loads directly into Perfetto.  ``repro trace show|convert|compare``
works with the written artifacts; ``compare`` gates per-phase timings
against a baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.circuit import (
    Circuit,
    available_circuits,
    circuit_stats,
    load_circuit,
    parse_bench,
    write_bench,
)
from repro.circuit.verilog import write_verilog
from repro.core import ProcedureConfig, WeightAssignment
from repro.core.report import format_table6
from repro.errors import ReproError, SweepInterrupted, TraceError
from repro.flows import FlowConfig, run_full_flow
from repro.obs import format_tradeoff, observation_point_tradeoff
from repro.sim import all_faults, collapse_faults
from repro.trace.compare import DEFAULT_MIN_SECONDS, DEFAULT_TOLERANCE
from repro.trace.export import EXPORT_FORMATS


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = getattr(args, "handler", None)
    if handler is None:
        parser.print_help()
        return 2
    try:
        return handler(args)
    except SweepInterrupted as exc:
        print(f"repro: interrupted: {exc}", file=sys.stderr)
        return 130
    except (ReproError, FileNotFoundError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Built-in generation of weighted test sequences for "
            "synchronous sequential circuits (Pomeranz & Reddy, DATE 2000)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers()

    p = sub.add_parser("circuits", help="list the embedded benchmark circuits")
    p.set_defaults(handler=_cmd_circuits)

    p = sub.add_parser("flow", help="run the full pipeline on one circuit")
    p.add_argument("circuit", help="library name (e.g. s27) or .bench path")
    p.add_argument("--lg", type=int, default=512, help="weighted sequence length L_G")
    p.add_argument("--seed", type=int, default=1, help="test generation seed")
    p.add_argument("--hybrid", action="store_true",
                   help="use random + deterministic ATPG test generation")
    p.add_argument("--verilog", type=Path, default=None,
                   help="write the synthesized TPG as Verilog")
    p.add_argument("--bench", type=Path, default=None,
                   help="write the synthesized TPG as .bench")
    p.add_argument("--save-seq", type=Path, default=None,
                   help="write the deterministic test sequence T")
    p.add_argument("--save-tpg", type=Path, default=None,
                   help="write the full TPG design (netlist + Ω + L_G) as "
                        "JSON, reloadable by `repro lint`")
    p.add_argument("--static-prune", action="store_true",
                   help="exclude faults the static implication engine "
                        "proves untestable from fault simulation; pruned "
                        "faults are reported, all other outputs are "
                        "identical")
    _add_runtime_flags(p)
    p.set_defaults(handler=_cmd_flow)

    p = sub.add_parser(
        "analyze",
        help="static implication analysis and redundancy certificates",
        description=(
            "Run the static implication engine on one circuit: "
            "value-set constant propagation over the time-unrolled "
            "sequential structure, direct and learned implications, "
            "fanout-free regions and dominators, and a per-fault "
            "untestability verdict with a machine-checkable "
            "certificate for every fault proved untestable.  Emits "
            "one canonical JSON document."
        ),
    )
    p.add_argument("circuit", help="library name (e.g. s27) or .bench path")
    p.add_argument("--faults", dest="fault_universe", default="collapsed",
                   choices=("collapsed", "all"),
                   help="fault universe to issue verdicts for "
                        "(default: the collapsed list the flows target)")
    p.add_argument("--max-frames", type=int, default=None, metavar="N",
                   help="sequential unrolling bound for the value-set "
                        "fixpoint (default: derived from the flop count)")
    p.add_argument("--check", action="store_true",
                   help="independently re-validate every emitted "
                        "certificate before printing (defense in depth; "
                        "fails loudly on any invalid certificate)")
    p.add_argument("--output", type=Path, default=None, metavar="PATH",
                   help="write the analysis JSON to PATH and print a "
                        "one-line summary instead of dumping to stdout")
    _add_runtime_flags(p)
    p.set_defaults(handler=_cmd_analyze)

    p = sub.add_parser("table6", help="regenerate the paper's Table 6")
    p.add_argument("circuits", nargs="*", help="circuit names (default: fast suite)")
    _add_runtime_flags(p)
    p.set_defaults(handler=_cmd_table6)

    p = sub.add_parser("tradeoff", help="observation-point tradeoff (Tables 7-16)")
    p.add_argument("circuit")
    _add_runtime_flags(p)
    p.set_defaults(handler=_cmd_tradeoff)

    p = sub.add_parser(
        "optimize",
        help="multi-objective search over weight assignments",
        description=(
            "Seeded NSGA-II search over weight assignments drawn from "
            "the quantized hardware alphabet, reporting the Pareto "
            "front over (fault coverage, TPG area, test length) "
            "against the paper's greedy Ω baseline.  Fully "
            "deterministic: the front is byte-identical for any "
            "--jobs value and across an interrupted run rerun with "
            "--resume."
        ),
    )
    p.add_argument("circuit", help="library name (e.g. s27) or .bench path")
    p.add_argument("--population", type=int, default=16, metavar="N",
                   help="population size μ (default: 16)")
    p.add_argument("--generations", type=int, default=8, metavar="N",
                   help="offspring generations after the seeded "
                        "generation 0 (default: 8)")
    p.add_argument("--seed", type=int, default=1,
                   help="search (and baseline flow) seed")
    p.add_argument("--lg", type=int, default=512,
                   help="baseline weighted sequence length L_G")
    p.add_argument("--tgen-max-len", type=int, default=2000, metavar="N",
                   help="baseline test-generation length cap")
    p.add_argument("--compaction-sims", type=int, default=60, metavar="N",
                   help="baseline compaction budget (0 disables)")
    p.add_argument("--output", type=Path, default=None, metavar="PATH",
                   help="write the canonical front JSON to PATH")
    p.add_argument("--save-tpg", type=Path, default=None, metavar="PATH",
                   help="save the best-coverage front point as a TPG "
                        "design carrying the full weight alphabet")
    p.add_argument("--static-prune", action="store_true",
                   help="exclude statically-proved-untestable faults from "
                        "phase fault simulation (scores and front are "
                        "identical either way)")
    _add_runtime_flags(p)
    p.set_defaults(handler=_cmd_optimize)

    p = sub.add_parser("atpg", help="run deterministic ATPG on a circuit")
    p.add_argument("circuit")
    p.set_defaults(handler=_cmd_atpg)

    p = sub.add_parser("scan", help="full-scan insertion + combinational ATPG")
    p.add_argument("circuit")
    p.set_defaults(handler=_cmd_scan)

    p = sub.add_parser("bench-info", help="parse a .bench file and show statistics")
    p.add_argument("path", type=Path)
    p.set_defaults(handler=_cmd_bench_info)

    p = sub.add_parser(
        "lint",
        help="static diagnostics for circuits, TPG designs and Python code",
        description=(
            "Lint targets may be library circuit names (s27), .bench "
            "netlists, saved TPG designs (.json from `flow --save-tpg`), "
            "Python files, or directories of Python files."
        ),
    )
    p.add_argument("targets", nargs="*",
                   help="circuit name, .bench / .json / .py path, or directory")
    p.add_argument("--self", dest="lint_self", action="store_true",
                   help="lint the repro package's own sources "
                        "(determinism rules)")
    p.add_argument("--all-circuits", action="store_true",
                   help="lint every embedded library circuit")
    p.add_argument("--static", dest="lint_static", action="store_true",
                   help="also run the implication-engine rules "
                        "(C010-C013) on circuit targets; slower")
    p.add_argument("--format", dest="fmt", default="text",
                   choices=("text", "json", "sarif"),
                   help="output format (default: text)")
    p.add_argument("--output", type=Path, default=None, metavar="PATH",
                   help="write the report to PATH instead of stdout")
    p.add_argument("--fail-on", default="error",
                   choices=("note", "warning", "error", "never"),
                   help="exit non-zero when findings at or above this "
                        "severity exist (default: error)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(handler=_cmd_lint)

    p = sub.add_parser(
        "trace",
        help="inspect, convert and compare trace artifacts",
        description=(
            "Work with traces written by `repro flow/table6/tradeoff "
            "--trace PATH`: print the span tree, re-export to another "
            "format (chrome opens in Perfetto / chrome://tracing), or "
            "compare per-phase timings against a baseline artifact."
        ),
    )
    tsub = p.add_subparsers()

    ts = tsub.add_parser("show", help="print a JSON trace as a text tree")
    ts.add_argument("path", type=Path, help="JSON trace artifact")
    ts.set_defaults(handler=_cmd_trace_show)

    tc = tsub.add_parser("convert", help="re-export a JSON trace")
    tc.add_argument("path", type=Path, help="JSON trace artifact")
    tc.add_argument("--to", dest="fmt", default="chrome",
                    choices=EXPORT_FORMATS,
                    help="target format (default: chrome)")
    tc.add_argument("--output", type=Path, required=True, metavar="PATH")
    tc.set_defaults(handler=_cmd_trace_convert)

    tp = tsub.add_parser(
        "compare",
        help="compare per-phase timings against a baseline",
        description=(
            "Both arguments may be JSON trace artifacts or the "
            "benchmark harness's phase-timing artifacts "
            "(benchmarks/results/*.json with a 'phases' table).  Exits "
            "1 when any phase regressed beyond the tolerance."
        ),
    )
    tp.add_argument("baseline", type=Path)
    tp.add_argument("current", type=Path)
    tp.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    metavar="FRACTION",
                    help="allowed fractional growth per phase "
                         f"(default: {DEFAULT_TOLERANCE})")
    tp.add_argument("--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
                    metavar="SECONDS",
                    help="absolute growth below this is never a regression "
                         f"(default: {DEFAULT_MIN_SECONDS})")
    tp.set_defaults(handler=_cmd_trace_compare)

    def _trace_help(args: argparse.Namespace) -> int:
        p.print_help()
        return 2

    p.set_defaults(handler=_trace_help)

    p = sub.add_parser(
        "serve",
        help="run the BIST-campaign job server",
        description=(
            "Serve the job API over HTTP: durable priority queue, "
            "per-client rate limits, load shedding, graceful drain on "
            "SIGINT/SIGTERM.  All state (queue journal, results, "
            "artifact cache) lives under --state-dir; restarting on "
            "the same directory resumes every acknowledged job."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8037,
                   help="TCP port (0 binds an ephemeral port; the bound "
                        "address is printed on startup)")
    p.add_argument("--state-dir", type=Path, default=None, metavar="PATH",
                   help="server state root (default: "
                        "$REPRO_CACHE_DIR/serve or ~/.cache/repro/serve)")
    p.add_argument("--queue-cap", type=int, default=None, metavar="N",
                   help="bounded queue depth; beyond it submissions shed "
                        "lower-priority work or get 503 (default: 64)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="per-client admission rate, jobs/second "
                        "(default: 20)")
    p.add_argument("--burst", type=int, default=None, metavar="B",
                   help="per-client burst allowance (default: 20)")
    p.add_argument("--drain-grace", type=float, default=60.0,
                   metavar="SECONDS",
                   help="seconds to wait for the in-flight job on drain "
                        "(default: 60)")
    p.add_argument("--cache-dir", type=Path, default=None, metavar="PATH",
                   help="artifact cache root (default: inside --state-dir)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (reruns recompute)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="deterministic fault injection for the job "
                        "runtimes and the worker service (results are "
                        "still bit-identical)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="supervised worker processes executing jobs "
                        "under leased ownership; 1 (the default) runs "
                        "jobs on the in-process scheduler")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SECONDS",
                   help="lease deadline per claim; worker heartbeats "
                        "renew it (default: 30)")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="heartbeat silence after which a worker is "
                        "declared hung and restarted (default: 10)")
    p.add_argument("--trace", type=Path, default=None, metavar="PATH",
                   help="write the server's span trace (job lifecycle "
                        "events included) on drain")
    p.add_argument("--trace-format", default="json", choices=EXPORT_FORMATS)
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a campaign job to a running server",
    )
    p.add_argument("circuit", help="library circuit name (e.g. s27)")
    p.add_argument("--server", default="http://127.0.0.1:8037",
                   metavar="URL", help="server base URL")
    p.add_argument("--priority", type=int, default=None, metavar="0-9",
                   help="dispatch priority, higher first (default: 4)")
    p.add_argument("--client", default=None, metavar="NAME",
                   help="client identity for rate limiting/fair share "
                        "(default: submit-<user>)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--lg", type=int, default=512,
                   help="weighted sequence length L_G")
    p.add_argument("--hybrid", action="store_true",
                   help="random + deterministic ATPG test generation")
    p.add_argument("--synthesize", action="store_true",
                   help="also synthesize and verify the TPG")
    p.add_argument("--task", default="flow", choices=("flow", "optimize"),
                   help="job type: the greedy flow or the multi-objective "
                        "weight search (default: flow)")
    p.add_argument("--population", type=int, default=8, metavar="N",
                   help="optimize-task population size (default: 8)")
    p.add_argument("--generations", type=int, default=2, metavar="N",
                   help="optimize-task generation count (default: 2)")
    p.add_argument("--static-prune", action="store_true",
                   help="run the certified static pre-prune; the result "
                        "reports the proved-untestable faults")
    p.add_argument("--sim-backend", default="auto",
                   choices=("auto", "python", "vector"),
                   help="fault-simulation backend the job runs with; "
                        "results (and the job key) are backend-"
                        "independent (default: auto)")
    p.add_argument("--job-workers", type=int, default=1, metavar="N",
                   help="worker processes the job may use (default: 1)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print the result")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                   help="max seconds to wait with --wait (default: 300)")
    p.set_defaults(handler=_cmd_submit)

    p = sub.add_parser(
        "jobs",
        help="list, inspect, cancel or fetch jobs on a running server",
    )
    p.add_argument("key", nargs="?", default=None,
                   help="job key (omit to list every job)")
    p.add_argument("--server", default="http://127.0.0.1:8037",
                   metavar="URL", help="server base URL")
    p.add_argument("--cancel", action="store_true",
                   help="cancel the queued job KEY")
    p.add_argument("--result", action="store_true",
                   help="print the job's canonical result JSON")
    p.add_argument("--job-trace", action="store_true",
                   help="print the job's normalized trace JSON")
    p.add_argument("--metrics", action="store_true",
                   help="print the server's /metrics payload")
    p.add_argument("--watch", action="store_true",
                   help="follow the job's live progress events "
                        "(long-poll) until it reaches a terminal state")
    p.add_argument("--watch-timeout", type=float, default=300.0,
                   metavar="SECONDS",
                   help="give up watching after this long (default: 300)")
    p.set_defaults(handler=_cmd_jobs)

    p = sub.add_parser("report", help="render benchmarks/results/ as an HTML report")
    p.add_argument("--results", type=Path, default=Path("benchmarks/results"))
    p.add_argument("--output", type=Path, default=Path("report.html"))
    p.set_defaults(handler=_cmd_report)

    p = sub.add_parser(
        "campaign",
        help="experiment warehouse: ingest, run, query, report, suggest",
        description=(
            "Operate a sqlite experiment warehouse over every artifact "
            "the repo produces.  `ingest` loads artifacts (idempotent, "
            "content-addressed), `run` drives a factorial design "
            "through a campaign server (or locally), `query` prints "
            "deterministic views, `report` renders a self-contained "
            "HTML dashboard and `suggest` sizes knobs from fitted "
            "regression models."
        ),
    )
    csub = p.add_subparsers()

    ci = csub.add_parser(
        "ingest", help="ingest artifact files/directories into the store"
    )
    ci.add_argument("paths", type=Path, nargs="+",
                    help="result files, journals, traces, benchmark "
                         "artifacts or directories of them")
    ci.add_argument("--store", type=Path, default=Path("campaign.db"),
                    metavar="PATH", help="sqlite store (default: "
                                         "campaign.db, created on demand)")
    ci.set_defaults(handler=_cmd_campaign_ingest)

    cr = csub.add_parser(
        "run", help="run a factorial campaign and warehouse the results"
    )
    cr.add_argument("grid",
                    help="grid spec, e.g. 'circuit=s27,g208 l_g=256,512 "
                         "static_prune=0,1 seed=1'")
    cr.add_argument("--store", type=Path, default=Path("campaign.db"),
                    metavar="PATH")
    cr.add_argument("--name", default="campaign",
                    help="campaign name in the store (default: campaign)")
    cr.add_argument("--fraction", type=int, default=1, metavar="K",
                    help="keep every point whose level-index parity sum "
                         "is 0 mod K (1 = full factorial)")
    cr.add_argument("--server", default=None, metavar="URL",
                    help="campaign server to run through (default: run "
                         "points locally through the same execution core)")
    cr.add_argument("--timeout", type=float, default=600.0,
                    metavar="SECONDS",
                    help="overall budget when running through a server")
    cr.add_argument("--tgen-max-len", type=int, default=2000, metavar="N",
                    help="test-generation budget for every point not "
                         "sweeping it (default: 2000)")
    cr.add_argument("--compaction-sims", type=int, default=60, metavar="N",
                    help="compaction budget for every point not sweeping "
                         "it (default: 60)")
    cr.set_defaults(handler=_cmd_campaign_run)

    cq = csub.add_parser(
        "query", help="print deterministic views of the store"
    )
    cq.add_argument("--store", type=Path, default=Path("campaign.db"),
                    metavar="PATH")
    cq.add_argument("--view", default="summary",
                    choices=("summary", "table6", "fronts", "timings",
                             "jobs", "campaigns", "circuits", "benchmarks"),
                    help="which view to print (default: summary)")
    cq.add_argument("--circuit", default=None,
                    help="restrict table6/fronts to one circuit")
    cq.add_argument("--campaign", default=None,
                    help="restrict table6 to one campaign's points")
    cq.add_argument("--sql", default=None, metavar="SELECT",
                    help="run one read-only SELECT instead of a view")
    cq.add_argument("--json", action="store_true",
                    help="print rows as canonical JSON")
    cq.set_defaults(handler=_cmd_campaign_query)

    cp = csub.add_parser(
        "report", help="render the store as text, JSON or an HTML dashboard"
    )
    cp.add_argument("--store", type=Path, default=Path("campaign.db"),
                    metavar="PATH")
    cp.add_argument("--format", dest="fmt", default="text",
                    choices=("text", "json", "html"),
                    help="output format (default: text)")
    cp.add_argument("--output", type=Path, default=None, metavar="PATH",
                    help="write to a file instead of stdout")
    cp.set_defaults(handler=_cmd_campaign_report)

    cs = csub.add_parser(
        "suggest",
        help="size campaign knobs for a circuit from fitted models",
    )
    cs.add_argument("circuit", help="library circuit name (e.g. s27)")
    cs.add_argument("--store", type=Path, default=Path("campaign.db"),
                    metavar="PATH")
    cs.add_argument("--target-coverage", type=float, default=0.9,
                    metavar="FRACTION",
                    help="coverage the suggestion must reach "
                         "(default: 0.9)")
    cs.add_argument("--json", action="store_true",
                    help="print the full prediction payload as JSON")
    cs.set_defaults(handler=_cmd_campaign_suggest)

    def _campaign_help(args: argparse.Namespace) -> int:
        p.print_help()
        return 2

    p.set_defaults(handler=_campaign_help)

    return parser


def _add_runtime_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("runtime")
    g.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for fault simulation (default: 1)")
    g.add_argument("--sim-backend", default="auto",
                   choices=("auto", "python", "vector"),
                   help="fault-simulation backend; results are "
                        "bit-identical, 'vector' packs faults into "
                        "machine words (default: auto)")
    g.add_argument("--cache-dir", type=Path, default=None, metavar="PATH",
                   help="artifact cache directory "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    g.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk artifact cache")
    g.add_argument("--stats", action="store_true",
                   help="print runtime statistics after the command")
    g.add_argument("--lint", nargs="?", const="warn", default="off",
                   choices=("warn", "strict"), metavar="POLICY",
                   help="lint circuits and TPG designs as they flow through: "
                        "'warn' records findings in --stats, 'strict' "
                        "aborts on error-severity findings "
                        "(default policy when the flag is bare: warn)")
    r = p.add_argument_group("resilience")
    r.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task timeout for pool workers; a hung worker "
                        "is abandoned, the pool rebuilt and the task "
                        "retried (default: no timeout)")
    r.add_argument("--retries", type=int, default=2, metavar="N",
                   help="pool retries per failed/hung/corrupted task "
                        "before it is replayed serially (default: 2)")
    r.add_argument("--resume", action="store_true",
                   help="skip circuits already checkpointed under the "
                        "cache dir by an earlier (possibly interrupted) "
                        "run; results are identical either way")
    r.add_argument("--chaos", default=None, metavar="SPEC",
                   help="deterministic fault injection for exercising the "
                        "recovery paths, e.g. "
                        "'crash=0.2,hang=0.1,corrupt=0.1,cache=0.3,seed=7' "
                        "(results are still bit-identical)")
    t = p.add_argument_group("tracing")
    t.add_argument("--trace", type=Path, default=None, metavar="PATH",
                   help="record a hierarchical span trace of the run and "
                        "write it to PATH (see `repro trace --help`)")
    t.add_argument("--trace-format", default="json", choices=EXPORT_FORMATS,
                   help="trace output format: human text tree, JSON "
                        "artifact, or Chrome trace events for Perfetto "
                        "(default: json)")


def _check_trace_output(args: argparse.Namespace) -> None:
    """Reject an unwritable ``--trace`` destination *before* the run —
    the clean one-line error beats losing minutes of simulation."""
    trace = getattr(args, "trace", None)
    if trace is None:
        return
    parent = trace.parent
    if not parent.is_dir():
        raise TraceError(
            f"cannot write trace {trace}: directory {parent} does not exist"
        )
    if trace.is_dir():
        raise TraceError(f"cannot write trace {trace}: it is a directory")


def _write_trace(runtime, args: argparse.Namespace) -> None:
    """Seal the runtime's tracer and export it to ``--trace``."""
    if getattr(args, "trace", None) is None or runtime.tracer is None:
        return
    from repro.trace import export_trace

    root = runtime.tracer.finish()
    export_trace(root, runtime.tracer.events, args.trace, args.trace_format)
    print(f"wrote {args.trace} ({args.trace_format} trace)")


def _make_runtime(args: argparse.Namespace):
    from repro.runtime import RuntimeContext

    _check_trace_output(args)
    return RuntimeContext(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        enable_cache=not args.no_cache,
        lint=args.lint,
        task_timeout=args.task_timeout,
        retries=args.retries,
        chaos=args.chaos,
        resume=args.resume,
        trace=getattr(args, "trace", None) is not None,
        sim_backend=getattr(args, "sim_backend", "auto"),
    )


def _load(ref: str):
    if ref.endswith(".bench") or "/" in ref:
        return parse_bench(ref)
    return load_circuit(ref)


def _cmd_circuits(args: argparse.Namespace) -> int:
    for name in available_circuits():
        print(circuit_stats(load_circuit(name)).describe())
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    circuit = _load(args.circuit)
    config = FlowConfig(
        seed=args.seed,
        tgen_mode="hybrid" if args.hybrid else "random",
        procedure=ProcedureConfig(l_g=args.lg),
        synthesize_hardware=True,
        static_prune=args.static_prune,
        sim_backend=args.sim_backend,
    )
    from repro.resilience import handle_termination

    with _make_runtime(args) as runtime, handle_termination():
        flow = run_full_flow(circuit, config, runtime=runtime)
    print(format_table6([flow.table6]))
    print(f"\nT: {len(flow.sequence)} cycles, coverage "
          f"{100 * flow.generated.coverage:.1f}% of the collapsed fault list")
    if flow.pruned is not None:
        print(f"proved untestable: {flow.pruned.n_pruned}/"
              f"{flow.pruned.n_faults} faults excluded from simulation "
              "(each carries a certificate; denominators unchanged)")
    print(f"TPG verified: {flow.tpg_verified}")
    if flow.tpg is not None:
        if args.verilog is not None:
            args.verilog.write_text(write_verilog(flow.tpg.circuit))
            print(f"wrote {args.verilog}")
        if args.bench is not None:
            args.bench.write_text(write_bench(flow.tpg.circuit))
            print(f"wrote {args.bench}")
        if args.save_tpg is not None:
            from repro.hw.design_io import save_design

            save_design(flow.tpg, args.save_tpg)
            print(f"wrote {args.save_tpg}")
    if args.save_seq is not None:
        from repro.tgen.io import save_sequence

        save_sequence(
            flow.sequence,
            args.save_seq,
            comment=f"{flow.circuit.name}: deterministic test sequence T "
                    f"({len(flow.sequence)} cycles)",
        )
        print(f"wrote {args.save_seq}")
    if args.stats:
        print()
        print(runtime.stats.format())
    _write_trace(runtime, args)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.static import analyze, check_certificate
    from repro.errors import AnalysisError
    from repro.resilience import handle_termination

    circuit = _load(args.circuit)
    faults = all_faults(circuit) if args.fault_universe == "all" else None
    with _make_runtime(args) as runtime, handle_termination():
        analysis = analyze(
            circuit, faults=faults, runtime=runtime,
            max_frames=args.max_frames,
        )
    if args.check:
        bad = [
            name for name, cert in sorted(analysis.certificates.items())
            if not check_certificate(circuit, cert)
        ]
        if bad:
            raise AnalysisError(
                f"{len(bad)} certificate(s) failed independent "
                f"re-validation: {', '.join(bad[:5])}"
            )
    summary = analysis.payload.get("summary", {})
    if isinstance(summary, dict):
        by_kind = summary.get("by_kind", {})
        detail = (
            " (" + ", ".join(f"{k}: {v}" for k, v in sorted(by_kind.items()))
            + ")" if by_kind else ""
        )
        line = (f"{circuit.name}: {summary.get('proved_untestable', 0)}/"
                f"{summary.get('n_faults', 0)} faults proved untestable"
                f"{detail}")
    else:  # pragma: no cover - payload always carries a summary
        line = circuit.name
    if args.output is not None:
        args.output.write_text(analysis.to_json())
        print(f"wrote {args.output}")
        print(line)
    else:
        # stdout stays pure canonical JSON; the summary goes to stderr.
        sys.stdout.write(analysis.to_json())
        print(line, file=sys.stderr)
    if args.stats:
        print()
        print(runtime.stats.format())
    _write_trace(runtime, args)
    return 0


def _cmd_table6(args: argparse.Namespace) -> int:
    from repro.flows import table6_rows
    from repro.resilience import handle_termination

    names = tuple(args.circuits) or None
    with _make_runtime(args) as runtime, handle_termination():
        rows = table6_rows(names, runtime=runtime, sim_backend=args.sim_backend)
    print(format_table6(rows))
    if args.stats:
        print()
        print(runtime.stats.format())
    _write_trace(runtime, args)
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.flows import flow_for
    from repro.resilience import handle_termination

    with _make_runtime(args) as runtime, handle_termination():
        flow = flow_for(args.circuit, runtime=runtime)
        rows = observation_point_tradeoff(
            flow.circuit, flow.procedure, runtime=runtime
        )
    print(format_tradeoff(args.circuit, rows))
    if args.stats:
        print()
        print(runtime.stats.format())
    _write_trace(runtime, args)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.optimize import (
        OptimizeConfig,
        render_front,
        render_front_table,
        run_optimize,
    )
    from repro.resilience import handle_termination

    circuit = _load(args.circuit)
    config = OptimizeConfig(
        seed=args.seed,
        population=args.population,
        generations=args.generations,
        l_g=args.lg,
        tgen_max_len=args.tgen_max_len,
        compaction_sims=args.compaction_sims,
        static_prune=args.static_prune,
        sim_backend=args.sim_backend,
    )
    with _make_runtime(args) as runtime, handle_termination():
        result = run_optimize(circuit, config, runtime=runtime)
    print(render_front_table(result))
    if args.output is not None:
        args.output.write_text(render_front(result))
        print(f"wrote {args.output}")
    if args.save_tpg is not None:
        from repro.hw.design_io import save_design
        from repro.hw.tpg import synthesize_tpg

        best = max(result.front, key=lambda p: (p.detected, -p.area))
        design = synthesize_tpg(
            [WeightAssignment.from_strings(list(a)) for a in best.assignments],
            max(best.windows),
            circuit.inputs,
            alphabet=result.alphabet,
        )
        if runtime is not None:
            runtime.lint_design(design)
        save_design(design, args.save_tpg)
        print(f"wrote {args.save_tpg}")
    if args.stats:
        print()
        print(runtime.stats.format())
    _write_trace(runtime, args)
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.atpg import deterministic_atpg

    circuit = _load(args.circuit)
    faults = collapse_faults(circuit)
    result = deterministic_atpg(circuit, faults)
    print(f"{circuit.name}: {len(result.detected)}/{len(faults)} faults "
          f"detected by a {len(result.sequence)}-cycle sequence")
    print(f"aborted: {len(result.aborted)}, "
          f"untestable at max depth: {len(result.exhausted)}, "
          f"PODEM runs: {result.n_podem_runs}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.scan import scan_atpg, scan_cost

    circuit = _load(args.circuit)
    result = scan_atpg(circuit)
    cost = scan_cost(circuit, result.design)
    supported = (
        len(result.detected) + len(result.untestable) + len(result.aborted)
    )
    print(f"{circuit.name}: {len(result.tests)} scan tests, "
          f"{len(result.detected)}/{supported} supported faults detected")
    print(f"proven untestable: {len(result.untestable)}, "
          f"aborted: {len(result.aborted)}, "
          f"unsupported (DFF D-pin branches): {len(result.unsupported)}")
    print(f"session: {result.session_cycles} cycles "
          f"({result.design.chain_length}-cell chain); "
          f"overhead: {cost.extra_gates} gates, {cost.extra_ports} pins")
    return 0


def _cmd_bench_info(args: argparse.Namespace) -> int:
    circuit = parse_bench(args.path)
    print(circuit_stats(circuit).describe())
    print(f"fault universe: {len(all_faults(circuit))} "
          f"({len(collapse_faults(circuit))} collapsed)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import LintError
    from repro.lint import (
        FORMATTERS,
        LintReport,
        Severity,
        all_rules,
        lint_bench_path,
        lint_circuit,
        lint_design_path,
        lint_package,
        lint_python_path,
        lint_static,
    )

    def lint_one_circuit(circuit: Circuit, artifact: str) -> LintReport:
        report = lint_circuit(circuit, artifact=artifact)
        if args.lint_static:
            report = report.merge(lint_static(circuit, artifact=artifact))
        return report

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {str(rule.severity):<7} "
                  f"{rule.name:<26} {rule.summary}")
        return 0

    if not args.targets and not args.lint_self and not args.all_circuits:
        raise LintError(
            "nothing to lint: give a target, --self or --all-circuits "
            "(see `repro lint --help`)"
        )

    report = LintReport()
    for target in args.targets:
        path = Path(target)
        if target.endswith(".bench"):
            report = report.merge(lint_bench_path(path))
            if args.lint_static:
                # The structural pass tolerates unbuildable netlists;
                # the static rules need a real circuit, so only run
                # them when the bench parses.
                try:
                    circuit = parse_bench(path)
                except ReproError:
                    pass
                else:
                    report = report.merge(
                        lint_static(circuit, artifact=target)
                    )
        elif target.endswith(".json"):
            report = report.merge(lint_design_path(path))
        elif target.endswith(".py"):
            try:
                report = report.merge(lint_python_path(path))
            except SyntaxError as exc:
                raise LintError(f"{path}: not parseable: {exc}") from exc
        elif path.is_dir():
            report = report.merge(lint_package(path))
        elif target in available_circuits():
            report = report.merge(
                lint_one_circuit(load_circuit(target), artifact=target)
            )
        else:
            raise LintError(
                f"cannot lint {target!r}: not a library circuit, .bench, "
                ".json design, .py file or directory"
            )
    if args.all_circuits:
        for name in available_circuits():
            report = report.merge(
                lint_one_circuit(load_circuit(name), artifact=name)
            )
    if args.lint_self:
        report = report.merge(lint_package())

    rendered = FORMATTERS[args.fmt](report)
    if args.output is not None:
        args.output.write_text(rendered + "\n")
        print(f"wrote {args.output} ({len(report)} findings)")
    else:
        print(rendered)

    if args.fail_on != "never" and report.at_least(Severity.parse(args.fail_on)):
        return 1
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.trace import load_trace, render_text

    root, events = load_trace(args.path)
    print(render_text(root, events), end="")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.trace import export_trace, load_trace

    root, events = load_trace(args.path)
    export_trace(root, events, args.output, args.fmt)
    print(f"wrote {args.output} ({args.fmt} trace)")
    return 0


def _cmd_trace_compare(args: argparse.Namespace) -> int:
    from repro.trace import compare_phases, load_phases, regressions

    deltas = compare_phases(
        load_phases(args.baseline),
        load_phases(args.current),
        tolerance=args.tolerance,
        min_seconds=args.min_seconds,
    )
    for delta in deltas:
        print(delta.format())
    bad = regressions(deltas)
    if bad:
        print(
            f"{len(bad)} phase(s) regressed beyond the "
            f"{100 * args.tolerance:.0f}% tolerance",
            file=sys.stderr,
        )
        return 1
    print("no phase regressions")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime.cache import default_cache_dir
    from repro.serve import CampaignServer, ServerConfig

    state_dir = args.state_dir
    if state_dir is None:
        state_dir = default_cache_dir() / "serve"
    _check_trace_output(args)
    kwargs = {}
    if args.queue_cap is not None:
        kwargs["queue_capacity"] = args.queue_cap
    if args.rate is not None:
        kwargs["rate_per_s"] = args.rate
    if args.burst is not None:
        kwargs["burst"] = args.burst
    server = CampaignServer(ServerConfig(
        state_dir=state_dir,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        enable_cache=not args.no_cache,
        chaos=args.chaos,
        drain_grace_s=args.drain_grace,
        trace_path=args.trace,
        trace_format=args.trace_format,
        workers=args.workers,
        lease_ttl_s=args.lease_ttl,
        heartbeat_timeout_s=args.heartbeat_timeout,
        **kwargs,
    ))

    def ready(host: str, port: int) -> None:
        print(f"repro-serve: listening on http://{host}:{port} "
              f"(state: {state_dir})", flush=True)

    code = server.run(ready=ready)
    print("repro-serve: drained cleanly", flush=True)
    if args.trace is not None:
        print(f"wrote {args.trace} ({args.trace_format} trace)")
    return code


def _cmd_submit(args: argparse.Namespace) -> int:
    import getpass

    from repro.serve import JobSpec, ServeClient

    client_id = args.client
    if client_id is None:
        # Client identity only routes rate limiting, never results.
        client_id = f"submit-{getpass.getuser()}"  # lint: ignore[D104]
    spec_kwargs = dict(
        circuit=args.circuit,
        task=args.task,
        seed=args.seed,
        l_g=args.lg,
        tgen_mode="hybrid" if args.hybrid else "random",
        synthesize_hardware=args.synthesize,
        static_prune=args.static_prune,
        sim_backend=args.sim_backend,
        population=args.population,
        generations=args.generations,
        client=client_id,
        jobs=args.job_workers,
    )
    if args.priority is not None:
        spec_kwargs["priority"] = args.priority
    spec = JobSpec(**spec_kwargs)
    client = ServeClient(args.server, client_id=client_id)
    record = client.submit(spec)
    key = record.get("key")
    verb = "submitted" if record.get("created") else "deduplicated onto"
    print(f"{verb} job {key} ({args.circuit}, "
          f"priority {spec.priority}, state {record.get('state')})")
    if record.get("shed"):
        print(f"note: shed lower-priority job {record['shed']} to make room")
    if not args.wait:
        return 0
    final = client.wait(str(key), timeout_s=args.timeout)
    state = final.get("state")
    print(f"job {key} finished: {state}")
    if state == "done":
        result = client.result(str(key))
        if result.get("kind") == "optimize-front":
            front = result.get("front", [])
            comparison = result.get("comparison", {})
            verdict = comparison.get("dominates_or_matches_baseline")
            print(f"  Pareto front: {len(front)} points over "
                  f"{result.get('evaluations')} evaluated genomes; "
                  f"dominates-or-matches greedy baseline: {verdict}")
            return 0
        table6 = result.get("table6", {})
        print(f"  sequence: {len(result.get('sequence', []))} cycles, "
              f"omega: {result.get('omega_size')}, "
              f"kept: {result.get('kept_assignments')}")
        if isinstance(table6, dict) and table6:
            row = ", ".join(f"{k}={v}" for k, v in sorted(table6.items()))
            print(f"  table6: {row}")
        return 0
    if state == "failed":
        print(f"  error: {final.get('error')}", file=sys.stderr)
    return 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ServeError
    from repro.serve import ServeClient

    client = ServeClient(args.server)
    if args.metrics:
        print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    if args.key is None:
        if args.cancel or args.result or args.job_trace:
            raise ServeError("give a job key to cancel or fetch")
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for job in jobs:
            spec = job.get("spec", {})
            circuit = spec.get("circuit") if isinstance(spec, dict) else "?"
            priority = spec.get("priority") if isinstance(spec, dict) else "?"
            line = (f"{job.get('key')}  {str(job.get('state')):<10} "
                    f"p{priority} {circuit}")
            if job.get("error"):
                line += f"  ({job['error']})"
            print(line)
        return 0
    if args.cancel:
        record = client.cancel(args.key)
        print(f"cancelled job {record.get('key')}")
        return 0
    if args.result:
        sys.stdout.write(client.result_bytes(args.key).decode("utf-8"))
        return 0
    if args.job_trace:
        sys.stdout.write(client.trace_bytes(args.key).decode("utf-8") + "\n")
        return 0
    if args.watch:
        for event in client.watch(
            args.key, timeout_s=args.watch_timeout
        ):
            attrs = event.get("attrs", {})
            attr_text = ""
            if isinstance(attrs, dict) and attrs:
                attr_text = "  " + " ".join(
                    f"{k}={attrs[k]}" for k in sorted(attrs)
                )
            print(f"[{event.get('seq'):>4}] "
                  f"{event.get('kind')}{attr_text}")
        final = client.job(args.key)
        print(f"job {args.key} finished: {final.get('state')}")
        return 0 if final.get("state") == "done" else 1
    print(_json.dumps(client.job(args.key), indent=2, sort_keys=True))
    return 0


def _cmd_campaign_ingest(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore

    store = CampaignStore(args.store)
    report = None
    for path in args.paths:
        if not path.exists():
            raise FileNotFoundError(f"no such artifact: {path}")
        sub = store.ingest_path(path)
        report = sub if report is None else report.merge(sub)
    assert report is not None  # argparse enforces nargs="+"
    print(f"{args.store}: {report.describe()}")
    for skipped in report.skipped:
        print(f"  skipped (unrecognized): {skipped}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore, parse_grid, run_campaign

    store = CampaignStore(args.store)
    grid = parse_grid(args.grid, name=args.name)
    run = run_campaign(
        store,
        grid,
        fraction=args.fraction,
        server_url=args.server,
        timeout_s=args.timeout,
        spec_overrides={
            "tgen_max_len": args.tgen_max_len,
            "compaction_sims": args.compaction_sims,
        },
    )
    mode = f"via {args.server}" if args.server else "locally"
    print(f"campaign {run.campaign}: {run.done}/{run.points} point(s) "
          f"done {mode}")
    print(f"  {run.report.describe()}")
    if run.failed:
        print(f"  failed design point(s): "
              f"{', '.join(map(str, run.failed))}", file=sys.stderr)
        return 1
    return 0


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign import CampaignStore

    store = CampaignStore(args.store)
    if args.sql is not None:
        rows: list = store.sql(args.sql)
    elif args.view == "summary":
        summary = store.summary()
        if args.json:
            print(_json.dumps(summary, indent=2, sort_keys=True))
        else:
            for table in sorted(summary):
                print(f"{table:<12} {summary[table]:>6}")
        return 0
    elif args.view == "table6":
        rows = store.query_table6(
            circuit=args.circuit, campaign=args.campaign
        )
    elif args.view == "fronts":
        rows = store.query_fronts(circuit=args.circuit)
    elif args.view == "timings":
        rows = store.query_timings()
    elif args.view == "jobs":
        rows = store.query_jobs()
    elif args.view == "campaigns":
        rows = store.query_campaigns()
    elif args.view == "circuits":
        rows = store.query_circuits()
    else:
        rows = store.query_benchmarks()
    if args.json:
        print(_json.dumps(rows, indent=2, sort_keys=True, default=repr))
        return 0
    if not rows:
        print("no rows")
        return 0
    columns = list(rows[0].keys())
    print("  ".join(columns))
    for row in rows:
        print("  ".join(str(row.get(column, "")) for column in columns))
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignStore,
        render_dashboard,
        render_json,
        render_text,
    )

    store = CampaignStore(args.store)
    if args.fmt == "html":
        text = render_dashboard(store)
    elif args.fmt == "json":
        text = render_json(store)
    else:
        text = render_text(store)
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {args.output} ({len(text)} bytes)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_campaign_suggest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.campaign import CampaignStore, suggest

    store = CampaignStore(args.store)
    outcome = suggest(
        store, args.circuit, target_coverage=args.target_coverage
    )
    if args.json:
        print(_json.dumps(outcome, indent=2, sort_keys=True))
        return 0
    best = outcome["recommendation"]
    met = "reaches" if outcome["target_met"] else "best effort toward"
    print(f"{args.circuit}: l_g={best['l_g']} "  # type: ignore[index]
          f"tgen_max_len={best['tgen_max_len']} "  # type: ignore[index]
          f"{met} coverage {args.target_coverage:g} "
          f"(predicted {best['predicted_coverage']}, "  # type: ignore[index]
          f"~{best['predicted_tpg_gate_equivalents']} "  # type: ignore[index]
          "TPG gate-equivalents)")
    models = outcome.get("models", {})
    if isinstance(models, dict):
        for name in sorted(models):
            model = models[name]
            loco = model.get("loco_residuals", {})
            loco_text = ", ".join(
                f"{c}={v}" for c, v in sorted(loco.items())
            ) or "n/a (single circuit)"
            print(f"  model {name}: {model.get('n_observations')} obs, "
                  f"R²={model.get('r2')}, LOCO |residual| {loco_text}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import collect_results, write_report

    artifacts = collect_results(args.results)
    if not artifacts:
        print(f"no artifacts in {args.results}; run "
              "`pytest benchmarks/ --benchmark-only` first")
        return 1
    path = write_report(args.results, args.output)
    print(f"wrote {path} ({len(artifacts)} artifacts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
