"""Replay equivalence check for synthesized TPGs.

The strongest possible check of the Figure-1 construction: simulate the
TPG netlist gate-by-gate and compare its output stream, cycle-exact,
against the software expansion of every weight assignment.  This ties
together the netlist IR, the logic simulator, the QM minimizer, the FSM
construction and the weighted-sequence semantics — if any of them is
wrong, this fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hw.tpg import TpgDesign
from repro.sim.logicsim import LogicSimulator
from repro.sim.values import V0, V1


@dataclass(frozen=True)
class TpgMismatch:
    """One cycle where the TPG deviated from the expected sequence.

    Attributes
    ----------
    assignment_index / time:
        Which assignment and which of its cycles.
    port:
        The CUT input (PO index) that deviated.
    expected / actual:
        Values (ternary ints).
    """

    assignment_index: int
    time: int
    port: int
    expected: int
    actual: int


@dataclass(frozen=True)
class TpgVerification:
    """Result of :func:`verify_tpg`.

    Attributes
    ----------
    ok:
        True iff the TPG replayed every assignment exactly.
    cycles_checked:
        Total output cycles compared.
    mismatches:
        Every deviation found (empty when ``ok``).
    """

    ok: bool
    cycles_checked: int
    mismatches: Tuple[TpgMismatch, ...]


def verify_tpg(design: TpgDesign, max_mismatches: int = 16) -> TpgVerification:
    """Simulate ``design`` and compare against the software sequences.

    Protocol: ``reset = 1`` for one cycle, then ``reset = 0``.  Output
    cycle ``1 + j * l_g + t`` must equal value ``t`` of assignment
    ``j``'s weighted sequence.
    """
    total = design.total_cycles
    stimulus = [(V1,)] + [(V0,)] * total
    trace = LogicSimulator(design.circuit).run(stimulus)

    expected_streams = [
        design.expected_stream(j) for j in range(design.n_assignments)
    ]

    mismatches: List[TpgMismatch] = []
    for j, stream in enumerate(expected_streams):
        for t in range(design.l_g):
            actual = trace.outputs[1 + j * design.l_g + t]
            expected = stream[t]
            for port, (e, a) in enumerate(zip(expected, actual)):
                if e != a:
                    mismatches.append(
                        TpgMismatch(
                            assignment_index=j,
                            time=t,
                            port=port,
                            expected=e,
                            actual=a,
                        )
                    )
                    if len(mismatches) >= max_mismatches:
                        return TpgVerification(
                            ok=False,
                            cycles_checked=total,
                            mismatches=tuple(mismatches),
                        )
    return TpgVerification(
        ok=not mismatches,
        cycles_checked=total,
        mismatches=tuple(mismatches),
    )
