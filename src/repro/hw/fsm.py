"""Weight FSMs (Section 3, Table 3 of the paper).

Every subsequence weight is produced by a finite-state machine that
cycles through ``L_S`` states and emits the subsequence's values, one
output column per subsequence.  All subsequences of the same length
share one FSM — so the number of FSMs equals the number of *distinct
subsequence lengths*, and the total output count equals the number of
distinct subsequences (after merging repetition-equivalent ones such as
``01`` and ``0101``, exactly as Section 5 prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.weight import Weight
from repro.errors import HardwareError


@dataclass(frozen=True)
class WeightFsm:
    """One weight FSM: a modulo-``length`` state cycle with one output
    per subsequence.

    Attributes
    ----------
    length:
        ``L_S``: number of reachable states.
    outputs:
        The subsequences emitted, one per output, in a deterministic
        order.  Output ``z_j`` at state ``s`` is ``outputs[j].bits[s]``.
    """

    length: int
    outputs: Tuple[Weight, ...]

    def __post_init__(self) -> None:
        for weight in self.outputs:
            if weight.length != self.length:
                raise HardwareError(
                    f"subsequence {weight} has length {weight.length}, "
                    f"FSM has {self.length} states"
                )

    @property
    def n_outputs(self) -> int:
        """Number of output columns."""
        return len(self.outputs)

    @property
    def n_state_bits(self) -> int:
        """State register width: ``ceil(log2 L_S)`` (0 for ``L_S = 1``)."""
        return (self.length - 1).bit_length()

    @property
    def n_unreachable_states(self) -> int:
        """Binary-encoded states never visited — the output don't-cares
        the paper's observation (2) in Section 3 refers to."""
        return (1 << self.n_state_bits) - self.length

    def output_at(self, weight_index: int, state: int) -> int:
        """Output value of column ``weight_index`` at ``state``."""
        return self.outputs[weight_index].bits[state]

    def transition_table(self) -> List[Tuple[int, int, Tuple[int, ...]]]:
        """Rows ``(present_state, next_state, output_values)`` — the
        paper's Table 3 layout (states numbered instead of lettered)."""
        rows = []
        for state in range(self.length):
            next_state = (state + 1) % self.length
            values = tuple(w.bits[state] for w in self.outputs)
            rows.append((state, next_state, values))
        return rows


@dataclass(frozen=True)
class FsmSummary:
    """The two FSM columns of the paper's Table 6.

    Attributes
    ----------
    n_fsms:
        Number of FSMs = number of distinct subsequence lengths
        (column ``num``).
    n_outputs:
        Total outputs over all FSMs = number of distinct subsequences
        after repetition-equivalence merging (column ``out``).
    """

    n_fsms: int
    n_outputs: int


def merge_equivalent(weights: Iterable[Weight]) -> Dict[Weight, Weight]:
    """Map every weight to its repetition-equivalence representative.

    Weights whose repetitions produce the same infinite sequence (same
    canonical form) share a representative: the canonical (shortest)
    form itself.  ``01`` and ``0101`` both map to ``01``.
    """
    return {w: w.canonical() for w in weights}


def build_weight_fsms(weights: Iterable[Weight]) -> List[WeightFsm]:
    """Build the FSM bank implementing ``weights``.

    Repetition-equivalent subsequences are merged first; the remaining
    distinct subsequences are grouped by length, one FSM per length,
    sorted by length for determinism.
    """
    representatives = sorted(set(merge_equivalent(weights).values()))
    by_length: Dict[int, List[Weight]] = {}
    for weight in representatives:
        by_length.setdefault(weight.length, []).append(weight)
    return [
        WeightFsm(length=length, outputs=tuple(sorted(members)))
        for length, members in sorted(by_length.items())
    ]


def fsm_summary(weights: Iterable[Weight]) -> FsmSummary:
    """Compute the ``FSMs num / out`` columns of Table 6 for ``weights``."""
    fsms = build_weight_fsms(weights)
    return FsmSummary(
        n_fsms=len(fsms),
        n_outputs=sum(f.n_outputs for f in fsms),
    )


def find_output(fsms: Sequence[WeightFsm], weight: Weight) -> Tuple[int, int]:
    """Locate ``weight``'s generator: ``(fsm_index, output_index)``.

    The weight is looked up by its canonical form (the merged
    representative that actually got an FSM output).
    """
    canonical = weight.canonical()
    for fsm_index, fsm in enumerate(fsms):
        if fsm.length != canonical.length:
            continue
        for output_index, out in enumerate(fsm.outputs):
            if out == canonical:
                return (fsm_index, output_index)
    raise HardwareError(f"weight {weight} has no FSM output")
