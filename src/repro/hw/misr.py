"""Multiple-input signature register (MISR) response compaction.

The paper generates stimuli on chip but does not discuss response
analysis; any deployed BIST needs it.  This module completes the loop:

* :class:`Misr` — software-golden MISR (Fibonacci feedback, one XOR
  per input channel), absorbing one primary-output vector per cycle.
* :func:`synthesize_misr` — the same register as a netlist
  (:class:`~repro.circuit.Circuit`) that can be simulated, fault
  simulated, or exported.
* :func:`signature_coverage` — fault coverage under *signature-based*
  detection: a fault counts as detected only if some weight
  assignment's final signature differs from the fault-free signature.
  This is strictly weaker than per-cycle PO observation because of
  aliasing and unknown-value masking, and the gap is measurable
  (see ``benchmarks/test_misr_response.py``).

Unknown handling: with no reset, early output cycles are X.  A MISR
absorbing X is ruined, so a *mask* is computed from the fault-free
simulation — cycles/outputs that are X in the good machine are forced
to 0 on both machines (in hardware: a mask ROM or a settle-time gate).
A faulty machine producing X at an unmasked position has an unknown
signature and is conservatively counted as undetected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.lfsr import PRIMITIVE_TAPS
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.errors import HardwareError
from repro.sim.values import V0, V1, VX, Value


class Misr:
    """Software-golden MISR.

    State update per cycle (Fibonacci form, left shift):
    ``s0' = feedback XOR d0``, ``sk' = s(k-1) XOR dk`` where ``d`` is
    the (zero-padded) input vector and ``feedback`` is the XOR of the
    primitive-polynomial tap bits.

    Parameters
    ----------
    width:
        Register width; must be >= the number of input channels.
    n_inputs:
        Input channels (CUT primary outputs).
    seed:
        Initial state.
    taps:
        Feedback taps (1-based); defaults to a primitive polynomial.
    """

    def __init__(
        self,
        width: int,
        n_inputs: int,
        seed: int = 0,
        taps: Sequence[int] | None = None,
    ) -> None:
        if n_inputs > width:
            raise HardwareError(
                f"{n_inputs} input channels exceed MISR width {width}"
            )
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise HardwareError(f"no primitive polynomial for width {width}")
            taps = PRIMITIVE_TAPS[width]
        self.width = width
        self.n_inputs = n_inputs
        self.taps = tuple(taps)
        self._mask = (1 << width) - 1
        self.state = seed & self._mask

    def absorb(self, bits: Sequence[int]) -> None:
        """Clock one cycle with ``bits`` on the input channels."""
        if len(bits) != self.n_inputs:
            raise HardwareError(
                f"absorb expects {self.n_inputs} bits, got {len(bits)}"
            )
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        shifted = ((self.state << 1) | feedback) & self._mask
        data = 0
        for k, bit in enumerate(bits):
            if bit not in (0, 1):
                raise HardwareError(f"MISR cannot absorb non-binary value {bit!r}")
            data |= bit << k
        self.state = shifted ^ data

    @property
    def signature(self) -> int:
        """The current signature."""
        return self.state

    def run(self, vectors: Sequence[Sequence[int]]) -> int:
        """Absorb all vectors; return the final signature."""
        for vector in vectors:
            self.absorb(vector)
        return self.state

    def aliasing_probability(self) -> float:
        """Asymptotic aliasing probability ``2^-width`` of a random
        error stream (the classical MISR bound)."""
        return 2.0 ** -self.width


def synthesize_misr(
    width: int,
    n_inputs: int,
    taps: Sequence[int] | None = None,
    name: str = "misr",
) -> Circuit:
    """Emit the MISR as a netlist.

    Ports: ``reset`` plus one data input ``d<k>`` per channel; outputs
    are the state bits ``s<k>`` (the signature, LSB first).  Reset
    clears the register to 0.
    """
    golden = Misr(width, n_inputs, 0, taps)  # validates width/taps
    b = CircuitBuilder(name)
    reset = b.input("reset")
    data = [b.input(f"d{k}") for k in range(n_inputs)]
    state = [f"s{k}" for k in range(width)]
    b.not_("nreset", reset)

    feedback_bits = [state[tap - 1] for tap in golden.taps]
    if len(feedback_bits) == 1:
        b.buf("feedback", feedback_bits[0])
    else:
        b.xor("feedback", *feedback_bits)

    for k in range(width):
        shifted = "feedback" if k == 0 else state[k - 1]
        if k < n_inputs:
            b.xor(f"mix{k}", shifted, data[k])
            mixed = f"mix{k}"
        else:
            mixed = shifted
        b.and_(f"dn{k}", "nreset", mixed)
        b.dff(state[k], f"dn{k}")
        b.output(state[k])
    return b.build()


@dataclass(frozen=True)
class SignatureCoverage:
    """Result of signature-based fault grading.

    Attributes
    ----------
    detected:
        Faults whose signature differs in some assignment window.
    aliased:
        Faults whose outputs differed at some cycle yet every window
        signature matched (classical aliasing).
    unknown:
        Faults producing X at an unmasked position (unknown signature,
        conservatively undetected).
    undetected:
        Faults with no output discrepancy at all under the applied
        sequences.
    masked_positions:
        Number of (cycle, output) positions masked because the good
        machine was X there.
    """

    detected: Tuple
    aliased: Tuple
    unknown: Tuple
    undetected: Tuple
    masked_positions: int

    @property
    def coverage(self) -> float:
        """Signature-detected fraction."""
        total = (
            len(self.detected)
            + len(self.aliased)
            + len(self.unknown)
            + len(self.undetected)
        )
        return len(self.detected) / total if total else 1.0


def signature_coverage(
    circuit: Circuit,
    stimuli: Sequence[Sequence[Sequence[Value]]],
    faults: Sequence,
    misr_width: int | None = None,
) -> SignatureCoverage:
    """Grade ``faults`` under signature-based detection.

    Parameters
    ----------
    circuit:
        The circuit under test.
    stimuli:
        One stimulus (pattern list) per assignment window; each window
        gets a fresh MISR and its own signature comparison.
    faults:
        Faults to grade.
    misr_width:
        MISR width; defaults to ``max(#POs, 8)``.
    """
    from repro.sim.logicsim import LogicSimulator
    from repro.sim.faultsim import FaultSimulator

    n_po = len(circuit.outputs)
    width = misr_width or max(n_po, 8)
    logic = LogicSimulator(circuit)

    # Good-machine responses, masks and golden signatures per window.
    windows = []
    masked_total = 0
    for stimulus in stimuli:
        trace = logic.run(stimulus)
        mask: List[Tuple[bool, ...]] = []
        golden = Misr(width, n_po)
        for outputs in trace.outputs:
            row_mask = tuple(v == VX for v in outputs)
            masked_total += sum(row_mask)
            golden.absorb(
                [0 if m else v for v, m in zip(outputs, row_mask)]
            )
            mask.append(row_mask)
        windows.append((stimulus, mask, trace.outputs, golden.signature))

    detected = []
    aliased = []
    unknown = []
    undetected = []

    sim = FaultSimulator(circuit)
    for fault in faults:
        verdict = "undetected"
        for stimulus, mask, good_rows, good_sig in windows:
            faulty_outputs = _faulty_po_trace(sim, circuit, stimulus, fault)
            misr = Misr(width, n_po)
            window_unknown = False
            any_discrepancy = False
            for row, row_mask, good_row in zip(faulty_outputs, mask, good_rows):
                bits = []
                for v, m, g in zip(row, row_mask, good_row):
                    if m:
                        bits.append(0)
                        continue
                    if v == VX:
                        # Unknown faulty value at an unmasked position:
                        # the real signature is indeterminate.
                        window_unknown = True
                        bits.append(0)
                    else:
                        bits.append(v)
                        if g in (V0, V1) and v != g:
                            any_discrepancy = True
                misr.absorb(bits)
            if window_unknown:
                # Signature comparison is unsound for this window.
                verdict = _stronger(verdict, "unknown")
            elif misr.signature != good_sig:
                verdict = "detected"
                break
            elif any_discrepancy:
                verdict = _stronger(verdict, "aliased")
        {
            "detected": detected,
            "aliased": aliased,
            "unknown": unknown,
            "undetected": undetected,
        }[verdict].append(fault)

    return SignatureCoverage(
        detected=tuple(detected),
        aliased=tuple(aliased),
        unknown=tuple(unknown),
        undetected=tuple(undetected),
        masked_positions=masked_total,
    )


_STRENGTH = {"undetected": 0, "unknown": 1, "aliased": 2, "detected": 3}


def _stronger(current: str, candidate: str) -> str:
    return candidate if _STRENGTH[candidate] > _STRENGTH[current] else current


def _faulty_po_trace(sim, circuit, stimulus, fault):
    """Per-cycle ternary PO values of the faulty machine."""
    from repro.sim.faultsim import _GroupSim

    comp = sim.comp
    flop_pos = {name: i for i, name in enumerate(circuit.flops)}
    group = _GroupSim(comp, flop_pos, [fault])
    rows = []
    for pattern in stimulus:
        group.step(pattern)
        row = []
        for idx in comp.po_indices:
            ones, zeros = group.ones[idx], group.zeros[idx]
            if ones & 2:
                row.append(V1)
            elif zeros & 2:
                row.append(V0)
            else:
                row.append(VX)
        rows.append(tuple(row))
    return rows
