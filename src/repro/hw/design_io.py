"""Saving and reloading synthesized TPG designs.

A :class:`~repro.hw.tpg.TpgDesign` is more than its netlist: the weight
assignments ``Ω``, the window length ``L_G`` and the optional LFSR
parameters are what make the netlist *verifiable* (and lintable).  The
JSON layout written here keeps all of it together:

.. code-block:: json

    {"format": 1, "kind": "tpg-design", "name": "tpg",
     "l_g": 512, "assignments": [["01", "0", "100", "1"]],
     "output_ports": ["out_G0", "..."], "alphabet": null, "lfsr": null,
     "bench": "# tpg\\nINPUT(reset)\\n..."}

Designs synthesized for a quantized weight alphabet (the optimizer's)
carry it as a list of weight strings; the FSM bank is rebuilt from the
assignments *and* the alphabet on load, exactly as synthesis built it.

The netlist is embedded as canonical ``.bench`` text, so a saved design
round-trips bit-exactly and remains inspectable with any bench tool.
On load the FSM bank is rebuilt deterministically from the assignments
(the same construction synthesis used), which means a hand-edited or
corrupted file does not crash the loader's callers blindly — the lint
subsystem (``repro lint design.json``) cross-checks the reloaded
netlist against the reloaded parameters and reports any drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.circuit.bench import parse_bench_text, write_bench
from repro.core.assignment import WeightAssignment
from repro.core.weight import Weight
from repro.errors import HardwareError
from repro.hw.fsm import build_weight_fsms
from repro.hw.tpg import LfsrSpec, TpgDesign

DESIGN_FORMAT = 1
"""Version of the saved-design layout; bumped on incompatible change."""

DESIGN_KIND = "tpg-design"


def design_to_dict(design: TpgDesign) -> Dict[str, object]:
    """Render ``design`` as a JSON-ready dictionary."""
    return {
        "format": DESIGN_FORMAT,
        "kind": DESIGN_KIND,
        "name": design.circuit.name,
        "l_g": design.l_g,
        "assignments": [
            [str(w) for w in assignment.weights]
            for assignment in design.assignments
        ],
        "output_ports": list(design.output_ports),
        "alphabet": (
            [str(w) for w in design.alphabet]
            if design.alphabet is not None
            else None
        ),
        "lfsr": (
            {"width": design.lfsr.width, "seed": design.lfsr.seed}
            if design.lfsr is not None
            else None
        ),
        "bench": write_bench(design.circuit),
    }


def save_design(design: TpgDesign, path: str | Path) -> None:
    """Write ``design`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(design_to_dict(design), indent=2))


def validate_design_dict(payload: object) -> Dict[str, object]:
    """Check the JSON shape of a saved design; return it typed.

    Raises
    ------
    HardwareError
        If the payload is not a saved TPG design or uses an
        incompatible format version.
    """
    if not isinstance(payload, dict):
        raise HardwareError("saved design must be a JSON object")
    if payload.get("kind") != DESIGN_KIND:
        raise HardwareError(
            f"not a saved TPG design (kind={payload.get('kind')!r})"
        )
    if payload.get("format") != DESIGN_FORMAT:
        raise HardwareError(
            f"saved design has format {payload.get('format')!r}; "
            f"this build reads format {DESIGN_FORMAT}"
        )
    for field, kind in (
        ("l_g", int),
        ("assignments", list),
        ("output_ports", list),
        ("bench", str),
    ):
        if not isinstance(payload.get(field), kind):
            raise HardwareError(f"saved design field {field!r} is missing "
                                f"or has the wrong type")
    return payload


def design_from_dict(payload: Dict[str, object]) -> TpgDesign:
    """Reconstruct a :class:`TpgDesign` from :func:`design_to_dict` output.

    The circuit is rebuilt from the embedded ``.bench`` text (strict —
    a structurally broken netlist raises; use the lint subsystem to
    diagnose one) and the FSM bank is rebuilt from the assignments.
    """
    payload = validate_design_dict(payload)
    assignments = tuple(
        WeightAssignment.from_strings([str(t) for t in texts])
        for texts in payload["assignments"]  # type: ignore[union-attr]
    )
    lfsr_raw = payload.get("lfsr")
    lfsr = None
    if lfsr_raw is not None:
        if not isinstance(lfsr_raw, dict):
            raise HardwareError("saved design field 'lfsr' must be an object")
        lfsr = LfsrSpec(width=int(lfsr_raw["width"]), seed=int(lfsr_raw["seed"]))
    alphabet_raw = payload.get("alphabet")
    alphabet = None
    if alphabet_raw is not None:
        if not isinstance(alphabet_raw, list):
            raise HardwareError("saved design field 'alphabet' must be a list")
        alphabet = tuple(Weight.from_string(str(t)) for t in alphabet_raw)
    weights: List[Weight] = []
    for assignment in assignments:
        weights.extend(assignment.deterministic_weights())
    if alphabet is not None:
        weights.extend(alphabet)
    circuit = parse_bench_text(
        str(payload["bench"]), str(payload.get("name", "tpg"))
    )
    return TpgDesign(
        circuit=circuit,
        assignments=assignments,
        l_g=int(payload["l_g"]),  # type: ignore[call-overload]
        fsms=tuple(build_weight_fsms(weights)),
        output_ports=tuple(str(p) for p in payload["output_ports"]),  # type: ignore[union-attr]
        lfsr=lfsr,
        alphabet=alphabet,
    )


def load_design(path: str | Path) -> TpgDesign:
    """Load a saved TPG design from ``path``.

    Raises
    ------
    ReproError
        :class:`HardwareError` on malformed JSON or a wrong payload
        shape; :class:`~repro.errors.BenchParseError` when the embedded
        netlist fails to build (``repro lint`` diagnoses those without
        raising).
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise HardwareError(f"{path}: not valid JSON: {exc}") from exc
    return design_from_dict(payload)
