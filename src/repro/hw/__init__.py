"""Hardware realization of the weight-based test pattern generator.

* :mod:`repro.hw.fsm` — the weight FSMs of Section 3 / Table 3: one FSM
  per subsequence length, one output column per subsequence, with
  repetition-equivalent subsequences merged (Section 5).
* :mod:`repro.hw.qm` — a from-scratch Quine-McCluskey two-level
  minimizer (don't-cares from unreachable FSM states).
* :mod:`repro.hw.tpg` — the full test sequence generator of Figure 1:
  phase counter, assignment counter, FSM bank and per-input selection
  logic, synthesized as an ordinary :class:`~repro.circuit.Circuit`.
* :mod:`repro.hw.cost` — gate/flip-flop cost model, including the
  ROM-storage comparison that motivates the paper.
* :mod:`repro.hw.verify` — replay equivalence: the synthesized TPG is
  simulated and checked cycle-exact against the software-generated
  weighted sequences.
* :mod:`repro.hw.design_io` — JSON save/reload of a full design
  (netlist + Ω + L_G + LFSR), the artifact ``repro lint`` checks.
"""

from repro.hw.fsm import WeightFsm, FsmSummary, build_weight_fsms, fsm_summary
from repro.hw.qm import Cube, minimize
from repro.hw.tpg import LfsrSpec, TpgDesign, synthesize_tpg
from repro.hw.design_io import load_design, save_design
from repro.hw.cost import TpgCost, tpg_cost, rom_bits_equivalent
from repro.hw.verify import verify_tpg
from repro.hw.misr import Misr, SignatureCoverage, signature_coverage, synthesize_misr

__all__ = [
    "WeightFsm",
    "FsmSummary",
    "build_weight_fsms",
    "fsm_summary",
    "Cube",
    "minimize",
    "LfsrSpec",
    "TpgDesign",
    "synthesize_tpg",
    "load_design",
    "save_design",
    "TpgCost",
    "tpg_cost",
    "rom_bits_equivalent",
    "verify_tpg",
    "Misr",
    "SignatureCoverage",
    "signature_coverage",
    "synthesize_misr",
]
