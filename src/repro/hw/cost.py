"""Hardware cost model for synthesized TPGs.

The paper's motivation for weighted-sequence BIST over stored-pattern
BIST ([18]/[19]) is memory: storing a deterministic sequence of length
``L`` for ``n`` inputs costs ``L x n`` ROM bits, while the FSM-based
generator costs a handful of flip-flops and gates.  This module
quantifies both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuit.gates import GateType
from repro.hw.tpg import TpgDesign


@dataclass(frozen=True)
class TpgCost:
    """Gate-level cost of a TPG.

    Attributes
    ----------
    n_flops:
        Flip-flop count (cycle counter + assignment counter + FSM state
        registers).
    n_gates:
        Combinational gate count.
    n_literals:
        Total fanin pins of combinational gates (a standard two-level
        area proxy).
    gate_mix:
        Per-type combinational gate counts.
    """

    n_flops: int
    n_gates: int
    n_literals: int
    gate_mix: Dict[str, int]

    @property
    def gate_equivalents(self) -> float:
        """Rough NAND2-equivalent area: gates weighted by fanin, flops
        counted as 6 gate equivalents (a common rule of thumb)."""
        return self.n_literals / 2 + 6 * self.n_flops


def tpg_cost(design: TpgDesign) -> TpgCost:
    """Compute the cost of a synthesized TPG."""
    circuit = design.circuit
    mix: Dict[str, int] = {}
    literals = 0
    n_gates = 0
    for net in circuit.combinational_order:
        gate = circuit.gate(net)
        mix[gate.gtype.value] = mix.get(gate.gtype.value, 0) + 1
        literals += gate.arity
        n_gates += 1
    n_flops = sum(
        1 for g in circuit.gates.values() if g.gtype is GateType.DFF
    )
    return TpgCost(
        n_flops=n_flops,
        n_gates=n_gates,
        n_literals=literals,
        gate_mix=mix,
    )


def rom_bits_equivalent(sequence_length: int, n_inputs: int) -> int:
    """ROM bits to store a deterministic sequence directly
    (the stored-pattern alternative of [18]/[19])."""
    return sequence_length * n_inputs
