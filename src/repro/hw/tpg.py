"""Synthesis of the test sequence generator of Figure 1.

The TPG consists of:

* a **cycle counter** counting ``0 .. L_G - 1`` (its terminal count
  advances the assignment counter — "a binary counter that advances
  every L_G clock cycles" in the paper's words),
* an **assignment counter** selecting the active weight assignment
  ``Ω_1 .. Ω_m``,
* one **weight FSM per subsequence length**, each a modulo-``L_S``
  state counter whose output logic (synthesized with Quine-McCluskey,
  unreachable states as don't-cares) emits every subsequence of that
  length, and
* per-CUT-input **selection logic** routing the right FSM output to the
  input under the active assignment (the multiplexers of Figure 1).

Everything is emitted as an ordinary :class:`~repro.circuit.Circuit`
with a single ``reset`` primary input, so the TPG can be simulated,
fault-simulated, exported to ``.bench``, and verified cycle-exact
against the software-generated weighted sequences
(:mod:`repro.hw.verify`).

Design choice: the weight FSMs restart at every assignment boundary
(synchronous clear on the cycle counter's terminal count), which makes
the hardware sequence of assignment ``j`` identical to
``assignment.generate(L_G)`` — the same semantics the selection
procedure simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.lfsr import Lfsr
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.core.weight import Weight
from repro.errors import HardwareError
from repro.hw.fsm import WeightFsm, build_weight_fsms, find_output
from repro.hw.qm import Cube, minimize
from repro.tgen.sequence import TestSequence


@dataclass(frozen=True)
class LfsrSpec:
    """On-chip LFSR parameters for pseudo-random weights.

    The LFSR is reloaded with ``seed`` at reset and at every assignment
    boundary, so each assignment window sees the same reproducible
    stream — which is what lets :func:`~repro.hw.verify.verify_tpg`
    check the hardware cycle-exact.

    Attributes
    ----------
    width:
        Register width (2..32; primitive feedback polynomial built in).
    seed:
        Non-zero initial state.
    """

    width: int = 8
    seed: int = 1

    def bit_stream(self, bit: int, length: int) -> Tuple[int, ...]:
        """The trace of state bit ``bit`` over ``length`` cycles."""
        lfsr = Lfsr(self.width, self.seed)
        values = []
        for _ in range(length):
            values.append((lfsr.state >> bit) & 1)
            lfsr.step()
        return tuple(values)


@dataclass(frozen=True)
class TpgDesign:
    """A synthesized test pattern generator.

    Attributes
    ----------
    circuit:
        The TPG netlist.  One PI (``reset``); one PO per CUT input, in
        the same order as the assignments' weights.
    assignments:
        The weight assignments the TPG applies, in order.
    l_g:
        Cycles spent on each assignment.
    fsms:
        The weight FSM bank.
    output_ports:
        PO names, one per CUT input.
    alphabet:
        The quantized weight alphabet the hardware supports, when the
        design was synthesized for one (e.g. by the optimizer).  The
        FSM bank then covers every alphabet weight — including ones no
        current assignment references — so the same silicon can realize
        any assignment drawn from the alphabet.  ``None`` for designs
        synthesized from their assignments alone.
    """

    circuit: Circuit
    assignments: Tuple[WeightAssignment, ...]
    l_g: int
    fsms: Tuple[WeightFsm, ...]
    output_ports: Tuple[str, ...]
    lfsr: Optional[LfsrSpec] = None
    alphabet: Optional[Tuple[Weight, ...]] = None

    @property
    def n_assignments(self) -> int:
        """Number of weight assignments applied."""
        return len(self.assignments)

    @property
    def total_cycles(self) -> int:
        """Cycles to apply every assignment once (excluding the reset
        cycle)."""
        return self.n_assignments * self.l_g

    def expected_stream(self, assignment_index: int) -> TestSequence:
        """The weighted sequence the hardware must emit for one
        assignment window.

        Deterministic weights expand as usual; pseudo-random weights
        expand from the on-chip LFSR's bit traces (input ``i`` taps
        state bit ``width - 1 - (i mod width)``).
        """
        assignment = self.assignments[assignment_index]
        columns = []
        for i, weight in enumerate(assignment.weights):
            if weight.is_random:
                if self.lfsr is None:
                    raise HardwareError(
                        "design has random weights but no LFSR spec"
                    )
                bit = self.lfsr.width - 1 - (i % self.lfsr.width)
                columns.append(self.lfsr.bit_stream(bit, self.l_g))
            else:
                columns.append(weight.expand(self.l_g))
        return TestSequence(zip(*columns))


class _Netlist:
    """Wraps :class:`CircuitBuilder` with memoized constants, memoized
    inverters, and unique naming.  The builder resolves fanins at build
    time, so gates may reference nets declared later (used for counter
    clear signals that depend on the counter's own bits)."""

    def __init__(self, name: str) -> None:
        self.b = CircuitBuilder(name)
        self._counter = 0
        self._const: Dict[int, str] = {}
        self._inverted: Dict[str, str] = {}

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def const(self, value: int) -> str:
        if value not in self._const:
            name = f"const{value}"
            if value:
                self.b.const1(name)
            else:
                self.b.const0(name)
            self._const[value] = name
        return self._const[value]

    def inv(self, net: str) -> str:
        if net not in self._inverted:
            name = self.fresh("inv")
            self.b.not_(name, net)
            self._inverted[net] = name
        return self._inverted[net]

    def and_(self, nets: Sequence[str]) -> str:
        nets = list(dict.fromkeys(nets))  # dedupe, keep order
        if not nets:
            return self.const(1)
        if len(nets) == 1:
            return nets[0]
        name = self.fresh("and")
        self.b.and_(name, *nets)
        return name

    def or_(self, nets: Sequence[str]) -> str:
        nets = list(dict.fromkeys(nets))
        if not nets:
            return self.const(0)
        if len(nets) == 1:
            return nets[0]
        name = self.fresh("or")
        self.b.or_(name, *nets)
        return name

    def xor(self, a: str, b: str) -> str:
        name = self.fresh("xor")
        self.b.xor(name, a, b)
        return name


def _decode(net: _Netlist, bits: Sequence[str], value: int) -> str:
    """AND-decode ``bits == value`` (LSB-first bit list)."""
    terms = []
    for k, bit in enumerate(bits):
        terms.append(bit if (value >> k) & 1 else net.inv(bit))
    return net.and_(terms)


def _counter(
    net: _Netlist,
    prefix: str,
    n_bits: int,
    reset: str,
    enable: Optional[str],
    clear: Optional[str],
) -> List[str]:
    """Declare an ``n_bits`` synchronous up-counter; return its state
    bits (LSB first).

    The increment carry chain is seeded with ``enable``: when disabled
    the carry is 0 everywhere and the counter holds.  ``clear`` (and
    ``reset``) force the next state to zero.  ``clear`` may name a net
    that is declared later (forward reference).
    """
    bits = [f"{prefix}_q{k}" for k in range(n_bits)]
    carry = enable if enable is not None else net.const(1)
    guards = [net.inv(reset)]
    if clear is not None:
        guards.append(net.inv(clear))
    for k, bit in enumerate(bits):
        inc = net.xor(bit, carry)
        if k + 1 < n_bits:
            carry = net.and_([bit, carry])
        d = net.and_(guards + [inc])
        net.b.dff(bit, d)
    return bits


def _sop(net: _Netlist, bits: Sequence[str], cubes: Sequence[Cube]) -> str:
    """Materialize a sum-of-products over the state ``bits``."""
    if not cubes:
        return net.const(0)
    if len(cubes) == 1 and cubes[0].care == 0:
        return net.const(1)
    products = []
    for cube in cubes:
        literals = []
        for k, bit in enumerate(bits):
            mask = 1 << k
            if not cube.care & mask:
                continue
            literals.append(bit if cube.value & mask else net.inv(bit))
        products.append(net.and_(literals))
    return net.or_(products)


def synthesize_tpg(
    assignments: Sequence[WeightAssignment],
    l_g: int,
    input_names: Sequence[str] | None = None,
    name: str = "tpg",
    lfsr: Optional[LfsrSpec] = None,
    alphabet: Sequence[Weight] | None = None,
) -> TpgDesign:
    """Synthesize the Figure-1 generator for ``assignments``.

    Parameters
    ----------
    assignments:
        The weight assignments (all must share the same width).
        Pseudo-random weights require ``lfsr`` — an on-chip LFSR is
        synthesized and its state bits drive those inputs (the paper's
        Section-6 future-work extension).
    l_g:
        Cycles per assignment.
    input_names:
        CUT input names for the PO ports; defaults to ``in0, in1, ...``.
    name:
        Circuit name.
    lfsr:
        Optional on-chip LFSR parameters for pseudo-random weights.
    alphabet:
        Optional quantized weight alphabet to build the FSM bank for.
        The bank then realizes *every* alphabet weight, not only the
        ones the current assignments use; the extra outputs are
        declared on the design so the linter knows they are
        intentional.  Deterministic weights only.

    Returns
    -------
    A :class:`TpgDesign`.  Drive ``reset = 1`` for one cycle, then hold
    it low: output cycle ``1 + j * l_g + t`` carries value ``t`` of
    assignment ``j``'s weighted sequence
    (:meth:`TpgDesign.expected_stream`).
    """
    if not assignments:
        raise HardwareError("cannot synthesize a TPG for zero assignments")
    widths = {a.width for a in assignments}
    if len(widths) != 1:
        raise HardwareError(f"assignments have mixed widths: {sorted(widths)}")
    width = widths.pop()
    needs_lfsr = any(a.has_random for a in assignments)
    if needs_lfsr and lfsr is None:
        raise HardwareError(
            "assignments contain pseudo-random weights; pass an LfsrSpec "
            "to synthesize the on-chip LFSR"
        )
    if l_g < 1:
        raise HardwareError(f"l_g must be positive, got {l_g}")
    if input_names is None:
        input_names = [f"in{i}" for i in range(width)]
    if len(input_names) != width:
        raise HardwareError(
            f"{len(input_names)} input names for width-{width} assignments"
        )

    net = _Netlist(name)
    reset = net.b.input("reset")
    n_assignments = len(assignments)

    # Cycle counter with wrap at l_g - 1.  The terminal-count decode
    # references the counter bits before they are declared — the
    # builder resolves names at build time.
    if l_g == 1:
        at_max = net.const(1)
    else:
        n_cyc = (l_g - 1).bit_length()
        cyc_names = [f"cyc_q{k}" for k in range(n_cyc)]
        at_max = _decode(net, cyc_names, l_g - 1)
        _counter(net, "cyc", n_cyc, reset, None, at_max)

    # Assignment counter: advances on at_max, wraps after the last
    # assignment.
    if n_assignments == 1:
        sel_bits: List[str] = []
    else:
        n_sel = (n_assignments - 1).bit_length()
        sel_names = [f"sel_q{k}" for k in range(n_sel)]
        at_last = _decode(net, sel_names, n_assignments - 1)
        wrap = net.and_([at_last, at_max])
        _counter(net, "sel", n_sel, reset, at_max, wrap)
        sel_bits = sel_names

    # On-chip LFSR for pseudo-random weights: Fibonacci left-shift,
    # reloaded with the seed at reset and at every assignment boundary
    # (matching TpgDesign.expected_stream's software reference).
    lfsr_bits: List[str] = []
    if needs_lfsr:
        assert lfsr is not None
        golden = Lfsr(lfsr.width, lfsr.seed)  # validates width/taps/seed
        lfsr_bits = [f"lfsr_q{k}" for k in range(lfsr.width)]
        reload = net.or_([reset, at_max])
        not_reload = net.inv(reload)
        tap_bits = [lfsr_bits[tap - 1] for tap in golden.taps]
        if len(tap_bits) == 1:
            feedback = tap_bits[0]
        else:
            feedback = net.fresh("lfsr_fb")
            net.b.xor(feedback, *tap_bits)
        seed_value = golden.state
        for k in range(lfsr.width):
            next_net = feedback if k == 0 else lfsr_bits[k - 1]
            held = net.and_([not_reload, next_net])
            if (seed_value >> k) & 1:
                d = net.or_([reload, held])
            else:
                d = held
            net.b.dff(lfsr_bits[k], d)

    # Weight FSM bank: one modulo-length counter per distinct length,
    # output logic per subsequence (QM with unreachable-state
    # don't-cares), all restarted at assignment boundaries.
    all_weights: List[Weight] = []
    for assignment in assignments:
        all_weights.extend(assignment.deterministic_weights())
    if alphabet is not None:
        for weight in alphabet:
            if weight.is_random:
                raise HardwareError(
                    "the weight alphabet must contain deterministic "
                    "weights only (pseudo-random weights come from the "
                    "LFSR, not the FSM bank)"
                )
        all_weights.extend(alphabet)
    fsms = build_weight_fsms(all_weights)

    # Output logic is materialized only for the columns Ω references:
    # alphabet-only columns are declared capacity (their FSM counters
    # exist, and the bank metadata records them for lint/design reuse),
    # but emitting their SOPs would leave dangling nets in the netlist.
    used_columns = {
        find_output(fsms, w)
        for a in assignments
        for w in a.weights
        if not w.is_random
    }
    weight_nets: Dict[Tuple[int, int], str] = {}
    for fsm_index, fsm in enumerate(fsms):
        if fsm.length == 1:
            for out_index, weight in enumerate(fsm.outputs):
                if (fsm_index, out_index) in used_columns:
                    weight_nets[(fsm_index, out_index)] = net.const(
                        weight.bits[0]
                    )
            continue
        prefix = f"fsm{fsm_index}"
        n_state = fsm.n_state_bits
        state_names = [f"{prefix}_q{k}" for k in range(n_state)]
        at_last_state = _decode(net, state_names, fsm.length - 1)
        clear = net.or_([at_last_state, at_max])
        _counter(net, prefix, n_state, reset, None, clear)
        unreachable = list(range(fsm.length, 1 << n_state))
        for out_index, weight in enumerate(fsm.outputs):
            if (fsm_index, out_index) not in used_columns:
                continue
            minterms = [s for s in range(fsm.length) if weight.bits[s] == 1]
            cubes = minimize(n_state, minterms, unreachable)
            weight_nets[(fsm_index, out_index)] = _sop(net, state_names, cubes)

    # Per-input selection logic (the multiplexers of Figure 1).
    output_ports = []
    for i, port in enumerate(input_names):
        sources = []
        for a in assignments:
            weight = a.weights[i]
            if weight.is_random:
                assert lfsr is not None
                bit = lfsr.width - 1 - (i % lfsr.width)
                sources.append(lfsr_bits[bit])
            else:
                sources.append(weight_nets[find_output(fsms, weight)])
        po_name = f"out_{port}"
        if len(set(sources)) == 1:
            net.b.buf(po_name, sources[0])
        else:
            terms = []
            for j, source in enumerate(sources):
                terms.append(net.and_([_decode(net, sel_bits, j), source]))
            or_net = net.or_(terms)
            net.b.buf(po_name, or_net)
        net.b.output(po_name)
        output_ports.append(po_name)

    circuit = net.b.build()
    return TpgDesign(
        circuit=circuit,
        assignments=tuple(assignments),
        l_g=l_g,
        fsms=tuple(fsms),
        output_ports=tuple(output_ports),
        lfsr=lfsr if needs_lfsr else None,
        alphabet=tuple(alphabet) if alphabet is not None else None,
    )
