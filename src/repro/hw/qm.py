"""Quine-McCluskey two-level logic minimization with don't-cares.

Used to synthesize the weight-FSM output functions: a subsequence of
length ``L_S`` occupies ``L_S`` states of a ``ceil(log2 L_S)``-bit state
register, and the ``2^ceil(log2 L_S) - L_S`` unreachable states are
don't-cares — exactly the structure the paper's observation (2) in
Section 3 exploits.

The minimizer is exact for prime implicant generation and uses
essential-then-greedy covering (optimal for the tiny functions that
arise here; the greedy step only matters for cyclic charts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Cube:
    """A product term over ``n_vars`` variables.

    Attributes
    ----------
    care:
        Bit mask of variables appearing in the term.
    value:
        Polarity of each caring variable (bits outside ``care`` are 0).
    """

    care: int
    value: int

    def covers(self, minterm: int) -> bool:
        """True iff the cube contains ``minterm``."""
        return (minterm & self.care) == self.value

    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return bin(self.care).count("1")

    def to_string(self, n_vars: int) -> str:
        """Positional cube string, MSB first: ``1``, ``0`` or ``-``.

        >>> Cube(care=0b10, value=0b10).to_string(2)
        '1-'
        """
        chars = []
        for bit in range(n_vars - 1, -1, -1):
            mask = 1 << bit
            if not self.care & mask:
                chars.append("-")
            elif self.value & mask:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)


def minimize(
    n_vars: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> List[Cube]:
    """Minimize a single-output function.

    Parameters
    ----------
    n_vars:
        Number of input variables.
    minterms:
        Input combinations where the function is 1.
    dont_cares:
        Input combinations whose value is free.

    Returns
    -------
    A list of prime-implicant cubes covering every minterm (possibly
    empty for the constant-0 function).  The constant-1 function
    returns a single all-don't-care cube.
    """
    ones = sorted(set(minterms))
    free = sorted(set(dont_cares) - set(ones))
    if not ones:
        return []
    space = 1 << n_vars
    for term in ones + free:
        if term < 0 or term >= space:
            raise ValueError(f"term {term} outside {n_vars}-variable space")
    if len(ones) + len(free) == space:
        return [Cube(care=0, value=0)]

    primes = _prime_implicants(n_vars, ones + free)
    return _cover(primes, ones)


def _prime_implicants(n_vars: int, terms: Sequence[int]) -> List[Cube]:
    """All prime implicants of the ON∪DC set (classic QM merging)."""
    current: set[Tuple[int, int]] = {((1 << n_vars) - 1, t) for t in terms}
    primes: set[Tuple[int, int]] = set()
    while current:
        merged: set[Tuple[int, int]] = set()
        used: set[Tuple[int, int]] = set()
        group = sorted(current)
        by_care: dict[int, List[Tuple[int, int]]] = {}
        for cube in group:
            by_care.setdefault(cube[0], []).append(cube)
        for care, cubes in by_care.items():
            values = {v for _c, v in cubes}
            for _care, value in cubes:
                for bit in range(n_vars):
                    mask = 1 << bit
                    if not care & mask:
                        continue
                    partner = value ^ mask
                    if partner in values and value & mask == 0:
                        merged.add((care & ~mask, value))
                        used.add((care, value))
                        used.add((care, partner))
        primes.update(current - used)
        current = merged
    return [Cube(care=c, value=v) for c, v in sorted(primes)]


def _cover(primes: Sequence[Cube], ones: Sequence[int]) -> List[Cube]:
    """Essential-first prime implicant covering.

    The residual (cyclic) chart is solved exactly by increasing subset
    size when few primes remain; oversized charts fall back to greedy
    (most new minterms, fewest literals) — a standard compromise.
    """
    remaining: set[int] = set(ones)
    coverage: dict[int, List[Cube]] = {
        m: [p for p in primes if p.covers(m)] for m in ones
    }
    chosen: List[Cube] = []

    # Essential primes.
    for minterm, covers in coverage.items():
        if len(covers) == 1 and covers[0] not in chosen:
            chosen.append(covers[0])
    for cube in chosen:
        remaining -= {m for m in remaining if cube.covers(m)}
    if not remaining:
        return chosen

    useful = [
        p
        for p in primes
        if p not in chosen and any(p.covers(m) for m in remaining)
    ]
    exact = _exact_cover(useful, remaining) if len(useful) <= 18 else None
    if exact is not None:
        return chosen + exact

    # Greedy fallback: most new minterms, fewest literals.
    while remaining:
        best: Cube | None = None
        best_key: Tuple[int, int] | None = None
        for prime in useful:
            gain = sum(1 for m in remaining if prime.covers(m))
            if not gain:
                continue
            key = (-gain, prime.literal_count())
            if best_key is None or key < best_key:
                best, best_key = prime, key
        if best is None:  # pragma: no cover — primes always cover ones
            raise AssertionError("prime implicants fail to cover minterms")
        chosen.append(best)
        remaining -= {m for m in remaining if best.covers(m)}
    return chosen


def _exact_cover(primes: Sequence[Cube], minterms: set[int]) -> List[Cube] | None:
    """Smallest subset of ``primes`` covering ``minterms`` — minimum
    cardinality, ties by total literal count.  Exhaustive by subset
    size; call only with small prime counts."""
    from itertools import combinations

    for size in range(1, len(primes) + 1):
        best: List[Cube] | None = None
        best_literals = None
        for subset in combinations(primes, size):
            covered: set[int] = set()
            for cube in subset:
                covered |= {m for m in minterms if cube.covers(m)}
            if covered == minterms:
                literals = sum(c.literal_count() for c in subset)
                if best is None or literals < best_literals:
                    best, best_literals = list(subset), literals
        if best is not None:
            return best
    return None


def evaluate_cubes(cubes: Sequence[Cube], assignment: int) -> int:
    """Evaluate a sum-of-products at one input combination."""
    return 1 if any(cube.covers(assignment) for cube in cubes) else 0


def total_literals(cubes: Sequence[Cube]) -> int:
    """Literal count of a sum-of-products (standard area proxy)."""
    return sum(cube.literal_count() for cube in cubes)
