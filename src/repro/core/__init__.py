"""The paper's primary contribution: selection of subsequence weights
and weight assignments for built-in generation of weighted test
sequences (Pomeranz & Reddy, DATE 2000).

Pipeline (paper section in parentheses):

1. :mod:`repro.core.weight` — subsequence weights ``α`` and the tail
   mining rule ``α(u' mod L_S) = T_i(u')`` (§3).
2. :mod:`repro.core.weight_set` — the growing weight set ``S`` (§3).
3. :mod:`repro.core.candidates` — per-input candidate sets ``A_i``
   sorted by match count ``n_m``, with the full-length promotion rule
   (§4.1).
4. :mod:`repro.core.assignment` — weight assignments ``w_j`` and
   weighted sequence generation ``T_G`` (§4.1).
5. :mod:`repro.core.procedure` — the overall selection procedure
   producing the assignment set ``Ω`` (§4.2).
6. :mod:`repro.core.postprocess` — reverse-order simulation (§4.3).
7. :mod:`repro.core.report` — Table-6-style result rows (§5).
"""

from repro.core.weight import Weight, RandomWeight, mine_weight
from repro.core.weight_set import WeightSet
from repro.core.candidates import candidate_sets, promote_full_length
from repro.core.assignment import WeightAssignment
from repro.core.procedure import ProcedureConfig, ProcedureResult, select_weight_assignments
from repro.core.postprocess import reverse_order_simulation
from repro.core.report import Table6Row, build_table6_row

__all__ = [
    "Weight",
    "RandomWeight",
    "mine_weight",
    "WeightSet",
    "candidate_sets",
    "promote_full_length",
    "WeightAssignment",
    "ProcedureConfig",
    "ProcedureResult",
    "select_weight_assignments",
    "reverse_order_simulation",
    "Table6Row",
    "build_table6_row",
]
