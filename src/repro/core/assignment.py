"""Weight assignments and weighted sequence generation (Section 4.1).

A weight assignment ``w = {α_i : 1 <= i <= n}`` gives every primary
input one weight.  Applying it for ``L_G`` cycles produces the weighted
test sequence ``T_G`` where input ``i`` receives ``α_i^r`` — this is
exactly what the hardware of Figure 1 applies, with all weight FSMs
starting from their reset state (phase 0).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.core.weight import RandomWeight, Weight
from repro.errors import WeightError
from repro.tgen.sequence import TestSequence
from repro.util.rng import DeterministicRng

AnyWeight = Union[Weight, RandomWeight]


class WeightAssignment:
    """An immutable per-input weight assignment.

    Parameters
    ----------
    weights:
        One weight per primary input, in port order.
    """

    __slots__ = ("_weights",)

    def __init__(self, weights: Sequence[AnyWeight]) -> None:
        if not weights:
            raise WeightError("a weight assignment needs at least one input")
        self._weights: Tuple[AnyWeight, ...] = tuple(weights)

    @classmethod
    def from_strings(cls, texts: Sequence[str]) -> "WeightAssignment":
        """Build from subsequence strings, e.g. ``["01", "0", "100", "1"]``.

        The string ``"R"`` denotes the pseudo-random weight.
        """
        weights: list[AnyWeight] = []
        for text in texts:
            if text == "R":
                weights.append(RandomWeight())
            else:
                weights.append(Weight.from_string(text))
        return cls(weights)

    # -- accessors ---------------------------------------------------------

    @property
    def weights(self) -> Tuple[AnyWeight, ...]:
        """The per-input weights."""
        return self._weights

    @property
    def width(self) -> int:
        """Number of inputs covered."""
        return len(self._weights)

    @property
    def max_length(self) -> int:
        """Longest subsequence in the assignment."""
        return max(w.length for w in self._weights)

    @property
    def has_random(self) -> bool:
        """True if any input uses the pseudo-random weight."""
        return any(w.is_random for w in self._weights)

    def deterministic_weights(self) -> Tuple[Weight, ...]:
        """The non-random weights of this assignment."""
        return tuple(w for w in self._weights if not w.is_random)

    # -- generation ----------------------------------------------------------

    def generate(
        self, length: int, rng: Optional[DeterministicRng] = None
    ) -> TestSequence:
        """Produce the weighted test sequence ``T_G`` of ``length`` cycles.

        Every weight expands from phase 0, matching the hardware's FSM
        reset between weight assignments.  ``rng`` is required only when
        the assignment contains the pseudo-random weight.
        """
        if self.has_random and rng is None:
            raise WeightError("assignment contains RandomWeight: rng required")
        columns = [w.expand(length, rng) for w in self._weights]
        return TestSequence(zip(*columns)) if length else TestSequence([])

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightAssignment):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __getitem__(self, i: int) -> AnyWeight:
        return self._weights[i]

    def __repr__(self) -> str:
        return f"WeightAssignment({', '.join(str(w) for w in self._weights)})"

    def __str__(self) -> str:
        return "{" + ", ".join(str(w) for w in self._weights) + "}"
