"""Subsequence weights (Section 3 of the paper).

A *weight* is a binary subsequence ``α``.  Assigned to an input, it
means the input receives the periodic sequence ``α^r = αα...α``.  The
key operations are:

* **Expansion** — ``α^r(u) = α(u mod |α|)``.
* **Mining** — given ``T_i`` and a detection time ``u``, the unique
  subsequence of length ``L_S`` whose expansion reproduces the last
  ``L_S`` values of ``T_i`` ending at ``u``:
  ``α(u' mod L_S) = T_i(u')`` for ``u - L_S + 1 <= u' <= u``.
* **Matching** — ``n_m``: at how many time units the expansion agrees
  with ``T_i`` (the sorting key for candidate sets ``A_i``).

The paper's worked example (s27, Table 1): mining input 0 at ``u = 8``
with ``L_S = 4`` yields ``α = 0110``, whose repetition ``011001100...``
matches ``T_0`` perfectly at time units 5..8.

:class:`RandomWeight` implements the paper's future-work extension
(Section 6): a pseudo-random source used as one more weight.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import WeightError
from repro.sim.values import V0, V1, Value
from repro.util.rng import DeterministicRng


class Weight:
    """An immutable binary subsequence weight ``α``.

    >>> w = Weight((0, 1))
    >>> w.expand(5)
    (0, 1, 0, 1, 0)
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Sequence[int]) -> None:
        bits = tuple(bits)
        if not bits:
            raise WeightError("a weight subsequence cannot be empty")
        if any(b not in (0, 1) for b in bits):
            raise WeightError(f"weight bits must be binary, got {bits!r}")
        self._bits = bits

    @classmethod
    def from_string(cls, text: str) -> "Weight":
        """Build from a string like ``"001"``."""
        return cls(tuple(int(c) for c in text))

    # -- basic accessors -----------------------------------------------------

    @property
    def bits(self) -> Tuple[int, ...]:
        """The subsequence ``α`` itself."""
        return self._bits

    @property
    def length(self) -> int:
        """``L_S``: the subsequence length."""
        return len(self._bits)

    @property
    def is_random(self) -> bool:
        """False — deterministic subsequence weight."""
        return False

    def value_at(self, u: int) -> int:
        """``α^r(u) = α(u mod L_S)``."""
        return self._bits[u % len(self._bits)]

    def expand(self, length: int, rng: Optional[DeterministicRng] = None) -> Tuple[int, ...]:
        """The repeated sequence ``α^r`` truncated to ``length``.

        ``rng`` is accepted (and ignored) for interface compatibility
        with :class:`RandomWeight`.
        """
        del rng
        bits = self._bits
        n = len(bits)
        reps = length // n + 1
        return (bits * reps)[:length]

    # -- paper operations ------------------------------------------------------

    def match_count(self, t_i: Sequence[Value]) -> int:
        """``n_m``: time units where ``α^r`` agrees with ``T_i``.

        Unknown (X) values in ``T_i`` never match.
        """
        bits = self._bits
        n = len(bits)
        return sum(1 for u, v in enumerate(t_i) if bits[u % n] == v)

    def matches_tail(self, t_i: Sequence[Value], u: int) -> bool:
        """Perfect match with the last ``L_S`` values of ``T_i`` ending
        at time unit ``u`` (Section 4.1's membership test for ``A_i``).

        Requires ``u - L_S + 1 >= 0``; shorter histories cannot be
        perfectly matched and return False.
        """
        n = len(self._bits)
        if u - n + 1 < 0 or u >= len(t_i):
            return False
        return all(
            self._bits[up % n] == t_i[up] for up in range(u - n + 1, u + 1)
        )

    def canonical(self) -> "Weight":
        """The shortest weight with the same infinite expansion.

        ``0101`` canonicalizes to ``01``; ``100`` is already canonical.
        Two weights produce identical repeated sequences iff their
        canonical forms are equal — the dedup rule the paper applies
        before FSM construction (Section 5).
        """
        bits = self._bits
        n = len(bits)
        for period in range(1, n + 1):
            if n % period:
                continue
            if bits == bits[:period] * (n // period):
                return Weight(bits[:period]) if period != n else self
        return self  # pragma: no cover — period n always divides

    def same_expansion(self, other: "Weight") -> bool:
        """True iff repeating both weights yields the same sequence."""
        return self.canonical().bits == other.canonical().bits

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RandomWeight):
            return False
        if not isinstance(other, Weight):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __lt__(self, other: "Weight") -> bool:
        if not isinstance(other, Weight):
            return NotImplemented
        return (self.length, self._bits) < (other.length, other._bits)

    def __repr__(self) -> str:
        return f"Weight({''.join(map(str, self._bits))})"

    def __str__(self) -> str:
        return "".join(map(str, self._bits))


class RandomWeight:
    """The pseudo-random weight of the paper's future-work extension.

    Assigned to an input, the input receives pseudo-random values
    instead of a repeated subsequence (in hardware: one LFSR cell).  It
    trivially "matches" nothing deterministically, so the procedure
    only uses it as an explicitly enabled fallback.
    """

    __slots__ = ()

    @property
    def length(self) -> int:
        """Period length reported as 1 (one LFSR cell feeds the input)."""
        return 1

    @property
    def is_random(self) -> bool:
        """True — pseudo-random weight."""
        return True

    def expand(self, length: int, rng: Optional[DeterministicRng] = None) -> Tuple[int, ...]:
        """``length`` pseudo-random bits drawn from ``rng``."""
        if rng is None:
            raise WeightError("RandomWeight.expand requires an rng")
        return rng.bits(length)

    def match_count(self, t_i: Sequence[Value]) -> int:
        """Expected matches of an unbiased random source: half."""
        return len(t_i) // 2

    def matches_tail(self, t_i: Sequence[Value], u: int) -> bool:
        """A random source never guarantees a perfect tail match."""
        del t_i, u
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RandomWeight)

    def __hash__(self) -> int:
        return hash("RandomWeight")

    def __repr__(self) -> str:
        return "RandomWeight()"

    def __str__(self) -> str:
        return "R"


def mine_weight(t_i: Sequence[Value], u: int, length: int) -> Weight:
    """Mine the unique weight reproducing ``T_i``'s tail at ``u``.

    Solves ``α(u' mod L_S) = T_i(u')`` for ``u - L_S + 1 <= u' <= u``
    (Section 3).  The ``L_S`` consecutive time units cover every residue
    modulo ``L_S`` exactly once, so ``α`` is fully determined.

    Raises
    ------
    WeightError
        If ``length > u + 1`` (not enough history), ``u`` is out of
        range, or the tail contains unknown values.
    """
    if u < 0 or u >= len(t_i):
        raise WeightError(f"time unit {u} outside sequence of length {len(t_i)}")
    if length < 1:
        raise WeightError(f"subsequence length must be >= 1, got {length}")
    if length > u + 1:
        raise WeightError(
            f"cannot mine length {length} at time {u}: only {u + 1} values of history"
        )
    alpha: list[int | None] = [None] * length
    for up in range(u - length + 1, u + 1):
        value = t_i[up]
        if value not in (V0, V1):
            raise WeightError(f"unknown value at time {up}; weights must be binary")
        alpha[up % length] = value
    return Weight(tuple(alpha))  # type: ignore[arg-type] — all slots filled
