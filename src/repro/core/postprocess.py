"""Reverse-order simulation (Section 4.3).

The procedure builds ``Ω`` short-subsequences-first, which can leave
early assignments redundant: everything they detect may also be
detected by assignments generated later.  Reverse-order simulation
walks ``Ω`` from the last assignment to the first, keeps an assignment
only if its weighted sequence detects target faults no kept assignment
has covered yet, and drops the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.core.procedure import ProcedureResult
from repro.errors import ProcedureError
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator
from repro.trace import trace_event, traced


@dataclass(frozen=True)
class ReverseOrderResult:
    """Outcome of reverse-order simulation.

    Attributes
    ----------
    kept:
        The non-redundant assignments, in original generation order.
    detected_by:
        Per kept assignment (same order), the target faults credited to
        it during the reverse pass.
    dropped:
        The redundant assignments that were removed.
    """

    kept: Tuple[WeightAssignment, ...]
    detected_by: Tuple[Tuple[Fault, ...], ...]
    dropped: Tuple[WeightAssignment, ...]

    @property
    def n_kept(self) -> int:
        """Number of surviving assignments — the paper's ``seq`` column."""
        return len(self.kept)


def reverse_order_simulation(
    circuit: Circuit,
    result: ProcedureResult,
    compiled: CompiledCircuit | None = None,
    simulator=None,
    runtime=None,
    sim_backend=None,
) -> ReverseOrderResult:
    """Remove redundant weight assignments from ``result.omega``.

    Assignments are re-simulated in reverse generation order against
    the shrinking target set; an assignment detecting nothing new is
    dropped.  The union of kept assignments is verified to cover every
    target fault.

    ``simulator`` defaults to the stuck-at fault simulator; pass the
    same simulator the procedure ran with when targeting a different
    fault model.  ``runtime`` and ``sim_backend`` (both ignored when
    ``simulator`` is given) plug the default simulator into the cache /
    worker pool and pick its backend.
    """
    comp = compiled or compile_circuit(circuit)
    sim = (
        simulator
        if simulator is not None
        else FaultSimulator(circuit, comp, runtime=runtime, backend=sim_backend)
    )
    pending: Set[Fault] = set(result.target_faults)

    kept_rev: List[WeightAssignment] = []
    credited_rev: List[Tuple[Fault, ...]] = []
    dropped: List[WeightAssignment] = []

    with traced(runtime, "reverse_order_sim", entries=len(result.omega)):
        for index in range(len(result.omega) - 1, -1, -1):
            entry = result.omega[index]
            assignment = entry.assignment
            if not pending:
                dropped.append(assignment)
                trace_event(
                    runtime, "reverse", index=index, kept=False, detected=0
                )
                continue
            rng = (
                result.generation_rng(index) if assignment.has_random else None
            )
            t_g = assignment.generate(result.l_g, rng)
            detections = sim.run(t_g.patterns, sorted(pending)).detection_time
            if detections:
                kept_rev.append(assignment)
                credited_rev.append(tuple(sorted(detections)))
                pending.difference_update(detections)
            else:
                dropped.append(assignment)
            trace_event(
                runtime,
                "reverse",
                index=index,
                kept=bool(detections),
                detected=len(detections),
            )

    if pending:
        raise ProcedureError(
            f"reverse-order simulation left {len(pending)} target faults "
            "uncovered; Ω no longer detects its own target set"
        )

    return ReverseOrderResult(
        kept=tuple(reversed(kept_rev)),
        detected_by=tuple(reversed(credited_rev)),
        dropped=tuple(dropped),
    )
