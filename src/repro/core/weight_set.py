"""The growing weight set ``S`` (Section 3).

``S`` accumulates subsequences mined from the deterministic sequence
``T`` as the procedure visits detection times.  The paper deliberately
keeps repetition-equivalent subsequences of different lengths (e.g.
``0`` and ``00``) because the *length* matters when constructing weight
assignments; only the hardware stage (Section 5) merges them.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.weight import Weight, mine_weight
from repro.tgen.sequence import TestSequence


class WeightSet:
    """Insertion-ordered set of distinct subsequence weights.

    Iteration order is insertion order, which gives every weight a
    stable index — the paper's Table 4 numbers its weights the same way.
    """

    def __init__(self) -> None:
        self._weights: List[Weight] = []
        self._seen: set[Weight] = set()

    def add(self, weight: Weight) -> bool:
        """Add ``weight`` if new; return True when it was added."""
        if weight in self._seen:
            return False
        self._seen.add(weight)
        self._weights.append(weight)
        return True

    def extend_from(self, sequence: TestSequence, u: int, length: int) -> List[Weight]:
        """Extend ``S`` from detection time ``u`` and length ``L_S``.

        For every primary input ``i``, mines the unique subsequence of
        length ``L_S`` reproducing ``T_i``'s tail ending at ``u``
        (Section 3's extension step) and adds it.  Returns the weights
        that were actually new.
        """
        added = []
        for i in range(sequence.width):
            weight = mine_weight(sequence.restrict(i), u, length)
            if self.add(weight):
                added.append(weight)
        return added

    def of_length(self, length: int) -> Tuple[Weight, ...]:
        """All weights of exactly the given length, in insertion order."""
        return tuple(w for w in self._weights if w.length == length)

    def up_to_length(self, length: int) -> Tuple[Weight, ...]:
        """All weights of length at most ``length``, in insertion order."""
        return tuple(w for w in self._weights if w.length <= length)

    @property
    def max_length(self) -> int:
        """Longest subsequence in ``S`` (0 when empty)."""
        return max((w.length for w in self._weights), default=0)

    def __iter__(self) -> Iterator[Weight]:
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, weight: object) -> bool:
        return weight in self._seen

    def __getitem__(self, index: int) -> Weight:
        return self._weights[index]

    def __repr__(self) -> str:
        preview = ", ".join(str(w) for w in self._weights[:8])
        suffix = ", ..." if len(self._weights) > 8 else ""
        return f"WeightSet([{preview}{suffix}], n={len(self._weights)})"
