"""Per-input candidate sets ``A_i`` (Section 4.1).

For a detection time ``u`` and maximum subsequence length ``L_S``,
``A_i`` collects every weight in ``S`` (of length at most ``L_S``) whose
expansion perfectly matches the tail of ``T_i`` ending at ``u``.  The
set is ordered by decreasing total match count ``n_m`` — the greedy
criterion the paper uses because more matches tend to mean more detected
faults.

The *full-length promotion rule* (end of Section 4.1): the longest
subsequences match the most history right before the detection time, so
if no row ``j`` of the ``A_i`` table consists entirely of length-``L_S``
subsequences, the length-``L_S`` member of each ``A_i`` is moved to the
front, making ``w_0`` the all-full-length assignment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.weight import Weight
from repro.core.weight_set import WeightSet
from repro.tgen.sequence import TestSequence


def candidate_sets(
    sequence: TestSequence,
    u: int,
    weights: WeightSet,
    max_length: int,
    sort_by_matches: bool = True,
) -> List[List[Tuple[Weight, int]]]:
    """Build the ordered candidate sets ``A_i`` for every input.

    Parameters
    ----------
    sequence:
        The deterministic test sequence ``T``.
    u:
        The detection time the assignment targets.
    weights:
        The current weight set ``S``.
    max_length:
        ``L_S``: only weights of length at most this participate.
    sort_by_matches:
        Sort each ``A_i`` by decreasing ``n_m`` (the paper's rule).
        Disabling this is an ablation switch: candidates stay in ``S``
        insertion order.

    Returns
    -------
    One list per input ``i`` of ``(weight, n_m)`` pairs.  Ties in
    ``n_m`` break toward shorter subsequences (the paper notes shorter
    subsequences are preferable for hardware), then lexicographically
    for determinism.
    """
    pool = weights.up_to_length(max_length)
    result: List[List[Tuple[Weight, int]]] = []
    for i in range(sequence.width):
        t_i = sequence.restrict(i)
        matched = [
            (w, w.match_count(t_i)) for w in pool if w.matches_tail(t_i, u)
        ]
        if sort_by_matches:
            matched.sort(key=lambda pair: (-pair[1], pair[0].length, pair[0].bits))
        result.append(matched)
    return result


def promote_full_length(
    candidates: List[List[Tuple[Weight, int]]], full_length: int
) -> List[List[Tuple[Weight, int]]]:
    """Apply the full-length promotion rule of Section 4.1.

    If some row ``j`` already yields an all-length-``full_length``
    assignment, the sets are returned unchanged.  Otherwise each
    ``A_i``'s length-``full_length`` member (unique when present — the
    mined tail reproducer) is moved to the front.  Inputs lacking such a
    member keep their order.
    """
    if not candidates or any(not a_i for a_i in candidates):
        return candidates
    depth = min(len(a_i) for a_i in candidates)
    for j in range(depth):
        if all(a_i[j][0].length == full_length for a_i in candidates):
            return candidates
    promoted: List[List[Tuple[Weight, int]]] = []
    for a_i in candidates:
        index = next(
            (k for k, (w, _n) in enumerate(a_i) if w.length == full_length), None
        )
        if index is None or index == 0:
            promoted.append(list(a_i))
        else:
            reordered = [a_i[index]] + a_i[:index] + a_i[index + 1 :]
            promoted.append(reordered)
    return promoted


def assignment_row(
    candidates: Sequence[Sequence[Tuple[Weight, int]]], j: int
) -> List[Weight]:
    """Row ``j`` of the candidate table: ``w_j = {α_{i,j}}``.

    When ``A_i`` is shorter than ``j + 1``, its last (least-matching)
    entry is reused — the paper increments ``j`` uniformly across
    inputs, and exhausted inputs have no further candidates to offer.
    """
    row = []
    for a_i in candidates:
        if not a_i:
            raise ValueError("an input has an empty candidate set")
        row.append(a_i[min(j, len(a_i) - 1)][0])
    return row


def max_rows(candidates: Sequence[Sequence[Tuple[Weight, int]]]) -> int:
    """Number of distinct rows the candidate table offers."""
    return max((len(a_i) for a_i in candidates), default=0)
