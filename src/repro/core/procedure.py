"""The overall weight-assignment selection procedure (Section 4.2).

Driven by a deterministic test sequence ``T`` and the detection times it
induces, the procedure builds the set ``Ω`` of weight assignments whose
weighted sequences jointly detect every fault ``T`` detects:

1. ``F`` ← faults detected by ``T``; record ``u_det(f)`` for each.
2. While ``F`` has undetected faults: pick the **largest** remaining
   detection time ``u`` (harder faults first — their sequences tend to
   detect many others).
3. For growing subsequence lengths ``L_S``: extend ``S`` by mining the
   length-``L_S`` tail reproducers at ``u``; build the candidate sets
   ``A_i``; enumerate assignment rows ``w_j`` (each must contain at
   least one length-``L_S`` subsequence); generate ``T_G`` of length
   ``L_G`` for each, screen it against a fault sample (the paper's
   simulation-effort shortcut), fully simulate survivors, and drop the
   faults detected, storing useful assignments in ``Ω``.
4. ``L_S = u + 1`` reproduces ``T`` exactly through time ``u``, so the
   loop over ``L_S`` always terminates with every fault of detection
   time ``u`` detected (``L_G >= len(T)`` is enforced).

Deviations from the paper, both configurable:

* ``ls_schedule`` — the paper steps ``L_S`` by 1.  The default here is
  ``"auto"``: dense (1..4), then geometric with ratio 1.5, then
  ``u + 1`` — the same guarantees with far fewer fault simulations
  (this matters in pure Python; the authors had a compiled simulator).
  Use ``"dense"`` for the paper-exact schedule.
* An assignment that was *fully simulated* before is never re-simulated
  (detections against a shrunken fault set are a subset of what it
  detected before, so re-simulation cannot help).  Assignments that
  were only screened out may be retried at later iterations, which
  keeps the termination guarantee intact.

Parallelism (``runtime`` argument): candidate rows are screened in
*speculative batches* on the runtime's worker pool.  A batch's verdicts
are all computed against the procedure state at batch start; rows are
then consumed strictly in order, and the moment one row's full
simulation detects faults (i.e. mutates ``remaining`` / ``Ω``) the rest
of the batch is discarded and re-gathered under the new state.  A
negative screen leaves the state untouched, so its verdict is exactly
the one the serial run would have computed — ``Ω``, every
:class:`OmegaEntry` and every :class:`ProcedureStats` counter are
bit-identical to the serial run for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.core.candidates import (
    assignment_row,
    candidate_sets,
    max_rows,
    promote_full_length,
)
from repro.core.weight import RandomWeight, Weight, mine_weight
from repro.core.weight_set import WeightSet
from repro.errors import ProcedureError
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.collapse import collapse_faults
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator
from repro.tgen.sequence import TestSequence
from repro.trace import trace_event, traced
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class ProcedureConfig:
    """Tunable knobs of the selection procedure.

    Attributes
    ----------
    l_g:
        Length of every weighted sequence ``T_G`` (the paper uses 2000).
        Raised to ``len(T)`` automatically when shorter — required for
        the termination guarantee.
    sample_size:
        Fault-sample size for the screening shortcut (Section 4.2).
    ls_schedule:
        ``"auto"`` (default, dense-then-geometric) or ``"dense"``
        (paper-exact ``L_S`` = 1, 2, 3, ...).
    sort_by_matches:
        Sort candidate sets by ``n_m`` (Section 4.1).  Ablation switch.
    promote:
        Apply the full-length promotion rule (Section 4.1).  Ablation
        switch.
    allow_random_weight:
        Offer the pseudo-random weight as an additional candidate for
        every input (the paper's future-work extension, Section 6).
    max_rows_per_length:
        Optional cap on assignment rows tried per ``(u, L_S)`` pair.
    seed:
        Seed for pseudo-random weights (unused otherwise).
    """

    l_g: int = 2000
    sample_size: int = 32
    ls_schedule: str = "auto"
    sort_by_matches: bool = True
    promote: bool = True
    allow_random_weight: bool = False
    max_rows_per_length: Optional[int] = None
    seed: int = 1


@dataclass(frozen=True)
class OmegaEntry:
    """One useful weight assignment, with provenance.

    Attributes
    ----------
    assignment:
        The weight assignment stored in ``Ω``.
    detected:
        Faults its weighted sequence newly detected when generated.
    u / l_s / row:
        The detection time, subsequence length, and candidate row the
        assignment was constructed from.
    """

    assignment: WeightAssignment
    detected: Tuple[Fault, ...]
    u: int
    l_s: int
    row: int


@dataclass
class ProcedureStats:
    """Simulation-effort counters."""

    assignments_tried: int = 0
    sample_screens: int = 0
    sample_skips: int = 0
    full_simulations: int = 0
    duplicate_skips: int = 0


@dataclass
class ProcedureResult:
    """Everything the procedure produced.

    Attributes
    ----------
    omega:
        The useful weight assignments, in generation order.
    weight_set:
        The final weight set ``S``.
    target_faults:
        ``F``: the faults the deterministic sequence detects.
    detection_time:
        ``u_det`` over ``target_faults``.
    l_g:
        The weighted-sequence length actually used.
    stats:
        Simulation-effort counters.
    rng_seed:
        Seed used for pseudo-random weights (reproducing ``T_G`` for an
        assignment with a random weight requires the same seed and
        assignment index).
    """

    omega: List[OmegaEntry]
    weight_set: WeightSet
    target_faults: Tuple[Fault, ...]
    detection_time: Dict[Fault, int]
    l_g: int
    stats: ProcedureStats = field(default_factory=ProcedureStats)
    rng_seed: int = 1

    @property
    def assignments(self) -> List[WeightAssignment]:
        """The assignments of ``Ω`` in generation order."""
        return [entry.assignment for entry in self.omega]

    @property
    def n_subsequences(self) -> int:
        """Distinct deterministic subsequences used across ``Ω``."""
        distinct: Set[Weight] = set()
        for entry in self.omega:
            distinct.update(entry.assignment.deterministic_weights())
        return len(distinct)

    @property
    def max_subsequence_length(self) -> int:
        """Longest subsequence used by any assignment in ``Ω``."""
        return max(
            (entry.assignment.max_length for entry in self.omega), default=0
        )

    def generation_rng(self, entry_index: int) -> DeterministicRng:
        """The rng used to expand random weights of assignment ``entry_index``."""
        return DeterministicRng(self.rng_seed).fork(entry_index)


def _ls_lengths(u: int, schedule: str) -> List[int]:
    """The ``L_S`` values visited for detection time ``u``."""
    limit = u + 1
    if schedule == "dense":
        return list(range(1, limit + 1))
    if schedule != "auto":
        raise ProcedureError(f"unknown ls_schedule {schedule!r}")
    lengths: List[int] = []
    l_s = 1
    while l_s < limit:
        lengths.append(l_s)
        l_s = l_s + 1 if l_s < 4 else max(l_s + 1, int(l_s * 1.5))
    lengths.append(limit)
    return lengths


@dataclass
class _RowCandidate:
    """One gathered candidate row awaiting (speculative) screening.

    ``t_g`` is None for rows that were already fully simulated at
    gather time — they are carried through so the consume loop counts
    them exactly as the serial run does.
    """

    row: int
    assignment: WeightAssignment
    t_g: Optional[TestSequence]


def select_weight_assignments(
    circuit: Circuit,
    sequence: TestSequence,
    faults: Sequence[Fault] | None = None,
    config: ProcedureConfig | None = None,
    compiled: CompiledCircuit | None = None,
    simulator=None,
    runtime=None,
    sim_backend: Optional[str] = None,
) -> ProcedureResult:
    """Run the paper's overall procedure (Section 4.2).

    Parameters
    ----------
    circuit:
        The circuit under test.
    sequence:
        The deterministic test sequence ``T``.
    faults:
        Fault universe; defaults to the collapsed stuck-at list.  Only
        the faults ``T`` detects become targets.
    config:
        Procedure knobs; defaults to :class:`ProcedureConfig`.
    compiled:
        Optional pre-compiled circuit to reuse.
    simulator:
        Fault simulator to grade sequences with; defaults to the
        stuck-at :class:`FaultSimulator`.  Any object with compatible
        ``run`` / ``detects_any`` works — passing a
        :class:`~repro.sim.transition.TransitionFaultSimulator`
        retargets the whole procedure at delay faults (the follow-up
        the paper's [11]/[15] discussion suggests).  The coverage
        guarantee holds for any such simulator whose detections depend
        only on the applied stimulus prefix.
    runtime:
        Optional :class:`~repro.runtime.context.RuntimeContext`.  Its
        cache and worker pool accelerate the screening/simulation work;
        the result is identical with or without it (see the module
        docstring for the speculative-batch rule).
    sim_backend:
        Fault-simulation backend for the default simulator
        (``"auto"``/``"python"``/``"vector"``; ignored when
        ``simulator`` is given).  Results are backend-independent.

    Returns
    -------
    A :class:`ProcedureResult` whose ``omega`` detects every target
    fault (guaranteed by construction).
    """
    cfg = config or ProcedureConfig()
    if not len(sequence):
        raise ProcedureError("the deterministic test sequence is empty")
    if sequence.width != len(circuit.inputs):
        raise ProcedureError(
            f"sequence width {sequence.width} != circuit inputs {len(circuit.inputs)}"
        )
    comp = compiled or compile_circuit(circuit)
    sim = (
        simulator
        if simulator is not None
        else FaultSimulator(circuit, comp, runtime=runtime, backend=sim_backend)
    )
    if faults is None:
        faults = collapse_faults(circuit)
    # Speculative screening batches pay off with pool workers (batch
    # screening is pool-aware) and with the serial vector backend
    # (several candidate sequences share one multi-block kernel pass).
    batch_size = 1
    if type(sim) is FaultSimulator:
        if runtime is not None and runtime.executor.jobs > 1:
            batch_size = runtime.executor.jobs * 2
        elif getattr(sim, "_use_vector", False):
            batch_size = 8

    l_g = max(cfg.l_g, len(sequence))
    with traced(runtime, "initial_simulation", faults=len(faults)):
        detection_time = sim.run(
            sequence.patterns, list(faults)
        ).detection_time
    targets: Tuple[Fault, ...] = tuple(sorted(detection_time))
    remaining: Set[Fault] = set(targets)

    weight_set = WeightSet()
    omega: List[OmegaEntry] = []
    stats = ProcedureStats()
    fully_simulated: Set[WeightAssignment] = set()
    rng_root = DeterministicRng(cfg.seed)
    random_candidate = (RandomWeight(), len(sequence) // 2)

    while remaining:
        u = max(detection_time[f] for f in remaining)
        at_u = {f for f in remaining if detection_time[f] == u}

        with traced(runtime, "target_time", u=u, pending=len(remaining)):
            for l_s in _ls_lengths(u, cfg.ls_schedule):
                if not at_u:
                    break
                with traced(runtime, "mine_candidates", u=u, l_s=l_s):
                    weight_set.extend_from(sequence, u, l_s)
                    cands = candidate_sets(
                        sequence,
                        u,
                        weight_set,
                        l_s,
                        sort_by_matches=cfg.sort_by_matches,
                    )
                    if cfg.promote:
                        cands = promote_full_length(cands, l_s)
                    if cfg.allow_random_weight:
                        cands = [
                            list(a_i) + [random_candidate] for a_i in cands
                        ]

                    row_limit = max_rows(cands)
                    if cfg.max_rows_per_length is not None:
                        row_limit = min(row_limit, cfg.max_rows_per_length)

                with traced(
                    runtime, "screen_rows", u=u, l_s=l_s, rows=row_limit
                ):
                    j = 0
                    while j < row_limit and at_u:
                        # Gather the next batch of candidate rows.  Row
                        # filters here are either pure (length rule) or
                        # speculative (the fully-simulated check is re-run
                        # at consume time); T_G generation uses the current
                        # Ω size for the random weight's rng fork — valid
                        # for every row up to and including the first state
                        # change, after which the batch is discarded and
                        # re-gathered anyway.
                        batch: List[_RowCandidate] = []
                        while j < row_limit and len(batch) < batch_size:
                            row = assignment_row(cands, j)
                            j += 1
                            if not any(
                                (not w.is_random) and w.length == l_s
                                for w in row
                            ):
                                continue
                            assignment = WeightAssignment(row)
                            if assignment in fully_simulated:
                                batch.append(
                                    _RowCandidate(j - 1, assignment, None)
                                )
                                continue
                            rng = (
                                rng_root.fork(len(omega))
                                if assignment.has_random
                                else None
                            )
                            batch.append(
                                _RowCandidate(
                                    j - 1,
                                    assignment,
                                    assignment.generate(l_g, rng),
                                )
                            )
                        if not batch:
                            continue

                        # Screening shortcut: a sample including the
                        # target fault.
                        target = max(at_u)  # deterministic pick among ties
                        sample = _fault_sample(
                            target, remaining, cfg.sample_size
                        )
                        to_screen = [c for c in batch if c.t_g is not None]
                        if batch_size > 1 and len(to_screen) > 1:
                            verdicts = sim.detects_any_batch(
                                [c.t_g.patterns for c in to_screen], sample
                            )
                        else:
                            verdicts = [
                                sim.detects_any(c.t_g.patterns, sample)
                                for c in to_screen
                            ]
                        verdict_of = dict(
                            zip((id(c) for c in to_screen), verdicts)
                        )

                        # Consume strictly in row order — serial semantics.
                        for pos, cand in enumerate(batch):
                            stats.assignments_tried += 1
                            if cand.assignment in fully_simulated:
                                stats.duplicate_skips += 1
                                continue
                            stats.sample_screens += 1
                            if not verdict_of[id(cand)]:
                                stats.sample_skips += 1
                                continue

                            stats.full_simulations += 1
                            fully_simulated.add(cand.assignment)
                            result = sim.run(
                                cand.t_g.patterns, sorted(remaining)
                            )
                            if result.detection_time:
                                detected = tuple(
                                    sorted(result.detection_time)
                                )
                                omega.append(
                                    OmegaEntry(
                                        assignment=cand.assignment,
                                        detected=detected,
                                        u=u,
                                        l_s=l_s,
                                        row=cand.row,
                                    )
                                )
                                trace_event(
                                    runtime,
                                    "omega",
                                    u=u,
                                    l_s=l_s,
                                    row=cand.row,
                                    detected=len(detected),
                                )
                                remaining.difference_update(detected)
                                at_u.difference_update(detected)
                                # The state changed: every later
                                # speculative verdict is stale.  Rewind
                                # and re-gather.
                                discarded = len(batch) - pos - 1
                                if discarded and runtime is not None:
                                    runtime.stats.speculative_discards += (
                                        discarded
                                    )
                                j = cand.row + 1
                                break

                if at_u and l_s == u + 1:
                    # Safety net for ablation configurations (promotion
                    # off, row caps): the assignment of the mined
                    # length-(u+1) weights reproduces T exactly through
                    # time u, so it is guaranteed to detect everything
                    # still pending at u.  With the paper's default
                    # configuration the promoted row 0 is this assignment
                    # and this branch never fires.
                    guarantee = WeightAssignment(
                        [
                            mine_weight(sequence.restrict(i), u, u + 1)
                            for i in range(sequence.width)
                        ]
                    )
                    stats.assignments_tried += 1
                    if guarantee not in fully_simulated:
                        t_g = guarantee.generate(l_g)
                        stats.full_simulations += 1
                        fully_simulated.add(guarantee)
                        result = sim.run(t_g.patterns, sorted(remaining))
                        if result.detection_time:
                            detected = tuple(sorted(result.detection_time))
                            omega.append(
                                OmegaEntry(
                                    assignment=guarantee,
                                    detected=detected,
                                    u=u,
                                    l_s=u + 1,
                                    row=-1,
                                )
                            )
                            trace_event(
                                runtime,
                                "omega",
                                u=u,
                                l_s=u + 1,
                                row=-1,
                                detected=len(detected),
                            )
                            remaining.difference_update(detected)
                            at_u.difference_update(detected)
                    if at_u:
                        raise ProcedureError(
                            f"faults at detection time {u} survived the "
                            f"exact replay of T[0..{u}]; simulator "
                            "inconsistency"
                        )

    return ProcedureResult(
        omega=omega,
        weight_set=weight_set,
        target_faults=targets,
        detection_time=detection_time,
        l_g=l_g,
        stats=stats,
        rng_seed=cfg.seed,
    )


def _fault_sample(
    target: Fault, remaining: Set[Fault], sample_size: int
) -> List[Fault]:
    """The screening sample: the target fault plus an evenly spaced
    selection of the other remaining faults (deterministic)."""
    others = sorted(remaining - {target})
    if len(others) > sample_size - 1 > 0:
        stride = len(others) / (sample_size - 1)
        others = [others[int(k * stride)] for k in range(sample_size - 1)]
    return [target] + others
