"""Table-6-style reporting (Section 5).

For each circuit the paper reports: the given sequence's length and
fault count, then — after reverse-order simulation — the number of
weight assignments (``seq``), the number of subsequences defining them
(``subs``), the longest subsequence (``len``), and the FSM bank size
(``num`` FSMs / total ``out`` outputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.core.postprocess import ReverseOrderResult
from repro.core.procedure import ProcedureResult
from repro.core.weight import Weight
from repro.hw.fsm import fsm_summary
from repro.tgen.sequence import TestSequence
from repro.util.tables import format_table


@dataclass(frozen=True)
class Table6Row:
    """One row of the paper's Table 6.

    Attributes
    ----------
    circuit:
        Circuit name.
    given_len / given_det:
        Length of the deterministic sequence ``T`` and the number of
        faults it detects (the ``given seq`` columns).
    n_sequences:
        Weight assignments kept after reverse-order simulation
        (``seq``).
    n_subsequences:
        Distinct subsequences defining the kept assignments (``subs``).
    max_length:
        Longest of those subsequences (``len``).
    n_fsms / n_fsm_outputs:
        FSM bank size for the kept assignments (``num`` / ``out``).
    """

    circuit: str
    given_len: int
    given_det: int
    n_sequences: int
    n_subsequences: int
    max_length: int
    n_fsms: int
    n_fsm_outputs: int


def build_table6_row(
    circuit_name: str,
    sequence: TestSequence,
    procedure: ProcedureResult,
    reverse_order: ReverseOrderResult,
) -> Table6Row:
    """Assemble a :class:`Table6Row` from a completed flow."""
    distinct: Set[Weight] = set()
    for assignment in reverse_order.kept:
        distinct.update(assignment.deterministic_weights())
    summary = fsm_summary(distinct)
    return Table6Row(
        circuit=circuit_name,
        given_len=len(sequence),
        given_det=len(procedure.target_faults),
        n_sequences=reverse_order.n_kept,
        n_subsequences=len(distinct),
        max_length=max((w.length for w in distinct), default=0),
        n_fsms=summary.n_fsms,
        n_fsm_outputs=summary.n_outputs,
    )


def format_table6(rows: Sequence[Table6Row]) -> str:
    """Render rows in the paper's Table 6 layout."""
    headers = ["circuit", "len", "det", "seq", "subs", "len", "num", "out"]
    body: List[List[object]] = [
        [
            r.circuit,
            r.given_len,
            r.given_det,
            r.n_sequences,
            r.n_subsequences,
            r.max_length,
            r.n_fsms,
            r.n_fsm_outputs,
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 6: Experimental results")
