"""Time-frame expansion of a sequential circuit for ATPG.

The sequential circuit is unrolled into ``n_frames`` combinational
copies.  Frame ``f``'s flip-flop outputs are buffers of frame
``f - 1``'s next-state nets; frame 0's flip-flop outputs are
*unassignable X sources* — the unknown power-up state, exactly
matching the fault simulator's no-reset semantics (so any test PODEM
finds on this model is valid from any actual power-up state).

A single stuck-at fault in the sequential circuit becomes a replicated
fault site in every frame (the physical defect is present in all time
frames); the composite simulator of :mod:`repro.atpg.dualsim` forces
each site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.sim.compile import CompiledCircuit, OP_BUF
from repro.sim.faults import Fault
from repro.atpg.dualsim import DualSimulator, PAIR_0, PAIR_1, Pair

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.analysis.scoap import ScoapMeasures


@dataclass
class UnrolledModel:
    """The unrolled combinational model PODEM works on.

    Net indexing: net ``i`` of frame ``f`` has index
    ``f * comp.n_nets + i``.

    Attributes
    ----------
    comp:
        The compiled sequential circuit this was unrolled from.
    n_frames:
        Number of time frames.
    ops:
        All gates of all frames, topologically ordered across frames.
    driver:
        out index → ``(opcode, fanins)`` for backtrace.
    assignable:
        Primary-input net indices PODEM may assign (all frames).
    fixed:
        Net index → constant composite value (CONST0/CONST1 nets).
    unassignable:
        Frame-0 flip-flop outputs: X sources PODEM must not touch.
    observe:
        Primary-output indices of every frame (detection points).
    stem_sites / pin_sites:
        Fault forcing locations for the composite simulator.
    fanouts:
        Net index → sink op outputs (for the X-path check).
    po_distance:
        Net index → edge distance to the nearest observe point
        (frontier-selection heuristic; unreachable nets are absent).
    reaches_assignable:
        Nets with at least one assignable primary input in their fanin
        cone (backtrace avoids cones that are pure X sources).
    controllability:
        Optional SCOAP guidance: net index → (CC0, CC1) of the
        underlying net, replicated per frame.  When present, backtrace
        prefers the easiest-to-justify X input instead of the first.
    """

    comp: CompiledCircuit
    n_frames: int
    ops: Tuple[Tuple[int, int, Tuple[int, ...]], ...]
    driver: Dict[int, Tuple[int, Tuple[int, ...]]]
    assignable: Set[int]
    fixed: Dict[int, Pair]
    unassignable: Set[int]
    observe: Tuple[int, ...]
    stem_sites: Dict[int, int]
    pin_sites: Dict[Tuple[int, int], int]
    fanouts: Dict[int, List[int]] = field(default_factory=dict)
    po_distance: Dict[int, int] = field(default_factory=dict)
    reaches_assignable: Set[int] = field(default_factory=set)
    controllability: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def n_nets(self) -> int:
        """Total nets across all frames."""
        return self.n_frames * self.comp.n_nets

    def frame_and_net(self, idx: int) -> Tuple[int, str]:
        """Map a model index back to (frame, original net name)."""
        frame, net = divmod(idx, self.comp.n_nets)
        return frame, self.comp.names[net]

    def pi_of_frame(self, frame: int) -> Tuple[int, ...]:
        """The assignable PI indices of one frame, in port order."""
        offset = frame * self.comp.n_nets
        return tuple(offset + i for i in self.comp.pi_indices)

    def simulator(self) -> DualSimulator:
        """A composite simulator over this model."""
        return DualSimulator(self.n_nets, self.ops, self.stem_sites, self.pin_sites)


def unroll(
    comp: CompiledCircuit,
    fault: Fault,
    n_frames: int,
    scoap: "ScoapMeasures | None" = None,
) -> UnrolledModel:
    """Unroll ``comp`` for ``n_frames`` frames with ``fault`` active in
    every frame.

    ``scoap`` (see :func:`repro.analysis.compute_scoap`) optionally
    attaches controllability guidance for PODEM's backtrace.
    """
    if n_frames < 1:
        raise ValueError(f"need at least one frame, got {n_frames}")
    n = comp.n_nets
    circuit = comp.circuit

    ops: List[Tuple[int, int, Tuple[int, ...]]] = []
    for frame in range(n_frames):
        offset = frame * n
        if frame > 0:
            prev = (frame - 1) * n
            for ff_idx, d_idx in zip(comp.ff_indices, comp.ff_next_indices):
                ops.append((OP_BUF, offset + ff_idx, (prev + d_idx,)))
        for opcode, out, fanins in comp.ops:
            ops.append(
                (opcode, offset + out, tuple(offset + f for f in fanins))
            )

    assignable: Set[int] = set()
    fixed: Dict[int, Pair] = {}
    unassignable: Set[int] = set(comp.ff_indices)  # frame 0 only
    observe: List[int] = []
    for frame in range(n_frames):
        offset = frame * n
        assignable.update(offset + i for i in comp.pi_indices)
        observe.extend(offset + i for i in comp.po_indices)
        for idx in comp.const0_indices:
            fixed[offset + idx] = PAIR_0
        for idx in comp.const1_indices:
            fixed[offset + idx] = PAIR_1

    stem_sites: Dict[int, int] = {}
    pin_sites: Dict[Tuple[int, int], int] = {}
    flop_pos = {name: i for i, name in enumerate(circuit.flops)}
    fault_net_idx = comp.index[fault.net]
    for frame in range(n_frames):
        offset = frame * n
        if not fault.is_branch:
            stem_sites[offset + fault_net_idx] = fault.stuck
        elif fault.gate in flop_pos:
            # D-pin branch fault: forces the state buffer of the NEXT
            # frame (the sampled value), mirroring the fault simulator.
            if frame > 0:
                ff_idx = comp.index[fault.gate]
                pin_sites[(offset + ff_idx, 0)] = fault.stuck
        else:
            gate_idx = comp.index[fault.gate]
            pin_sites[(offset + gate_idx, fault.pin)] = fault.stuck

    model = UnrolledModel(
        comp=comp,
        n_frames=n_frames,
        ops=tuple(ops),
        driver={out: (opcode, fanins) for opcode, out, fanins in ops},
        assignable=assignable,
        fixed=fixed,
        unassignable=unassignable,
        observe=tuple(observe),
        stem_sites=stem_sites,
        pin_sites=pin_sites,
    )
    if scoap is not None:
        guidance: Dict[int, Tuple[int, int]] = {}
        for name, idx in comp.index.items():
            pair = (scoap.cc0[name], scoap.cc1[name])
            for frame in range(n_frames):
                guidance[frame * n + idx] = pair
        model.controllability.update(guidance)
    _annotate(model)
    return model


def _annotate(model: UnrolledModel) -> None:
    """Compute fanouts, PO distances and assignable-reachability."""
    fanouts: Dict[int, List[int]] = {}
    for _opcode, out, fanins in model.ops:
        for f in fanins:
            fanouts.setdefault(f, []).append(out)
    model.fanouts = fanouts

    # Reverse BFS from observe points.
    distance: Dict[int, int] = {idx: 0 for idx in model.observe}
    frontier = list(model.observe)
    while frontier:
        next_frontier: List[int] = []
        for idx in frontier:
            d = distance[idx]
            entry = model.driver.get(idx)
            if entry is None:
                continue
            for f in entry[1]:
                if f not in distance or distance[f] > d + 1:
                    distance[f] = d + 1
                    next_frontier.append(f)
        frontier = next_frontier
    model.po_distance = distance

    # Forward reachability from assignable PIs.
    reaches: Set[int] = set(model.assignable)
    for opcode, out, fanins in model.ops:
        if any(f in reaches for f in fanins):
            reaches.add(out)
    model.reaches_assignable = reaches
