"""ATPG drivers: per-fault generation and whole-sequence assembly.

``deterministic_atpg`` targets each fault with PODEM at growing frame
counts and concatenates the resulting subsequences into one test
sequence, dropping collaterally detected faults along the way (each
PODEM test is valid from any circuit state — the unrolled model starts
from an unknown state — so concatenation in any order is sound).

``hybrid_test_sequence`` is the STRATEGATE-class substitute the flows
use when asked for maximum coverage: a fast random-walk phase first,
then deterministic targeting of the leftovers.

Every PODEM test is re-verified with the bit-parallel fault simulator
before acceptance; a test that fails verification (impossible unless
the two engines disagree) raises, so inconsistencies cannot silently
skew experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.atpg.podem import podem
from repro.atpg.unroll import unroll
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.collapse import collapse_faults
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator
from repro.sim.values import V0, Value
from repro.tgen.random_tgen import GeneratedTest, generate_test_sequence
from repro.tgen.sequence import TestSequence


@dataclass(frozen=True)
class AtpgConfig:
    """Deterministic-phase knobs.

    Attributes
    ----------
    frame_schedule:
        Unrolling depths tried per fault, in order.
    backtrack_limit:
        PODEM backtrack budget per (fault, depth) attempt.
    x_fill:
        Value for unassigned PIs in extracted tests (0 keeps sequences
        deterministic; the assigned bits alone already guarantee
        detection).
    use_scoap_guidance:
        Attach SCOAP controllability to the unrolled models so PODEM's
        backtrace picks the easiest-to-justify inputs.
    """

    frame_schedule: Tuple[int, ...] = (2, 4, 8)
    backtrack_limit: int = 300
    x_fill: Value = V0
    use_scoap_guidance: bool = True


@dataclass
class AtpgResult:
    """Outcome of the deterministic phase.

    Attributes
    ----------
    sequence:
        Concatenation of all accepted per-fault subsequences.
    detected:
        Target faults the final sequence detects (re-simulated).
    aborted:
        Faults PODEM gave up on (backtrack limit or frame limit).
    exhausted:
        Faults whose decision tree was fully exhausted at the deepest
        unrolling tried (untestable *at that depth*; possibly testable
        with more frames).
    n_podem_runs:
        Total PODEM invocations.
    """

    sequence: TestSequence
    detected: Tuple[Fault, ...]
    aborted: Tuple[Fault, ...]
    exhausted: Tuple[Fault, ...]
    n_podem_runs: int


def generate_for_fault(
    circuit: Circuit,
    fault: Fault,
    config: AtpgConfig | None = None,
    compiled: CompiledCircuit | None = None,
) -> Optional[TestSequence]:
    """Generate a test subsequence detecting ``fault``, or None.

    Tries each unrolling depth in the schedule; the first PODEM success
    is extracted (frame-by-frame PI patterns, X-filled) and verified
    against the fault simulator.
    """
    cfg = config or AtpgConfig()
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp)
    scoap = _guidance(circuit, cfg)
    for n_frames in cfg.frame_schedule:
        model = unroll(comp, fault, n_frames, scoap)
        result = podem(model, cfg.backtrack_limit)
        if not result.success:
            continue
        patterns: List[Tuple[Value, ...]] = []
        for frame in range(n_frames):
            row = tuple(
                result.assignments.get(idx, cfg.x_fill)
                for idx in model.pi_of_frame(frame)
            )
            patterns.append(row)
        sequence = TestSequence(patterns)
        check = sim.run(sequence.patterns, [fault])
        if fault not in check.detection_time:
            raise ReproError(
                f"PODEM test for {fault} fails fault-simulation "
                "verification; ATPG/simulator disagreement"
            )
        return sequence
    return None


def deterministic_atpg(
    circuit: Circuit,
    faults: Sequence[Fault] | None = None,
    config: AtpgConfig | None = None,
    compiled: CompiledCircuit | None = None,
) -> AtpgResult:
    """Target every fault of ``faults`` deterministically."""
    cfg = config or AtpgConfig()
    comp = compiled or compile_circuit(circuit)
    if faults is None:
        faults = collapse_faults(circuit)
    sim = FaultSimulator(circuit, comp)

    pending = list(faults)
    accepted: List[Tuple[Value, ...]] = []
    aborted: List[Fault] = []
    exhausted: List[Fault] = []
    n_runs = 0
    scoap = _guidance(circuit, cfg)

    while pending:
        fault = pending.pop(0)
        n_runs += 1
        subsequence = None
        was_aborted = False
        for n_frames in cfg.frame_schedule:
            model = unroll(comp, fault, n_frames, scoap)
            result = podem(model, cfg.backtrack_limit)
            if result.success:
                rows = [
                    tuple(
                        result.assignments.get(idx, cfg.x_fill)
                        for idx in model.pi_of_frame(frame)
                    )
                    for frame in range(n_frames)
                ]
                subsequence = TestSequence(rows)
                break
            was_aborted = was_aborted or result.aborted
        if subsequence is None:
            (aborted if was_aborted else exhausted).append(fault)
            continue
        check = sim.run(subsequence.patterns, [fault] + pending)
        if fault not in check.detection_time:
            raise ReproError(
                f"PODEM test for {fault} fails fault-simulation "
                "verification; ATPG/simulator disagreement"
            )
        accepted.extend(subsequence.patterns)
        # Drop collateral detections (the subsequence is state-agnostic,
        # so what it detects standalone it detects in concatenation).
        detected_now = set(check.detection_time)
        pending = [f for f in pending if f not in detected_now]

    sequence = TestSequence(accepted)
    final = sim.run(sequence.patterns, list(faults)) if accepted else None
    detected = tuple(sorted(final.detection_time)) if final else ()
    return AtpgResult(
        sequence=sequence,
        detected=detected,
        aborted=tuple(aborted),
        exhausted=tuple(exhausted),
        n_podem_runs=n_runs,
    )


def _guidance(circuit: Circuit, cfg: AtpgConfig):
    """SCOAP measures for backtrace guidance, when enabled."""
    if not cfg.use_scoap_guidance:
        return None
    from repro.analysis.scoap import compute_scoap

    return compute_scoap(circuit)


def hybrid_test_sequence(
    circuit: Circuit,
    faults: Sequence[Fault] | None = None,
    seed: int = 1,
    random_max_len: int = 2000,
    atpg_config: AtpgConfig | None = None,
    compiled: CompiledCircuit | None = None,
    sim_backend=None,
) -> GeneratedTest:
    """Random walk first, deterministic ATPG on the leftovers.

    The STRATEGATE-class substitute: simulation-based search covers the
    random-testable bulk cheaply; PODEM mops up targetable stragglers.
    Returns the same :class:`GeneratedTest` shape the random generator
    does, so it drops into every flow unchanged.  ``sim_backend``
    selects the fault-simulation backend for the random phase and the
    final grading run (results are backend-independent).
    """
    comp = compiled or compile_circuit(circuit)
    if faults is None:
        faults = collapse_faults(circuit)
    random_phase = generate_test_sequence(
        circuit, faults, seed=seed, max_len=random_max_len, compiled=comp,
        sim_backend=sim_backend,
    )
    if not random_phase.undetected:
        return random_phase

    det_phase = deterministic_atpg(
        circuit, list(random_phase.undetected), atpg_config, comp
    )
    combined = random_phase.sequence.concat(det_phase.sequence)
    final = FaultSimulator(circuit, comp, backend=sim_backend).run(
        combined.patterns, list(faults)
    )
    return GeneratedTest(
        sequence=combined,
        detected=tuple(sorted(final.detection_time)),
        undetected=tuple(sorted(final.undetected)),
    )
