"""Deterministic sequential ATPG (time-frame expansion + PODEM).

The paper's input is a deterministic test sequence from STRATEGATE
[24] / SEQCOM [25].  The random-walk generator in :mod:`repro.tgen`
covers the easily random-testable faults; this package adds the
deterministic complement — a structural test generator that targets
specific faults:

* :mod:`repro.atpg.dualsim` — 9-valued (good, faulty) pair simulation,
  the composite D-calculus PODEM reasons over.
* :mod:`repro.atpg.unroll` — time-frame expansion: the sequential
  circuit unrolled into ``k`` combinational frames with the fault
  active in every frame and the frame-0 state unassignable (unknown
  power-up state, matching the fault simulator's semantics).
* :mod:`repro.atpg.podem` — PODEM over the unrolled model: objective
  selection (excitation, then D-frontier propagation), backtrace to an
  assignable primary input, decision stack with backtracking, X-path
  pruning.
* :mod:`repro.atpg.driver` — per-fault generation with growing frame
  counts, sequence concatenation with fault dropping, and the hybrid
  random-then-deterministic flow.

Every generated subsequence is re-verified with the bit-parallel fault
simulator before it is accepted, so ATPG bugs cannot corrupt results.
"""

from repro.atpg.podem import PodemResult, podem
from repro.atpg.unroll import UnrolledModel, unroll
from repro.atpg.driver import AtpgConfig, AtpgResult, deterministic_atpg, hybrid_test_sequence

__all__ = [
    "PodemResult",
    "podem",
    "UnrolledModel",
    "unroll",
    "AtpgConfig",
    "AtpgResult",
    "deterministic_atpg",
    "hybrid_test_sequence",
]
