"""Composite good/faulty simulation for ATPG.

Each net carries a pair ``(good, faulty)`` of ternary values — a
superset of Roth's 5-valued D-calculus (``D`` is ``(1, 0)``, ``D̄`` is
``(0, 1)``; partially-known pairs like ``(1, X)`` are represented
exactly instead of being collapsed to X).  Forward simulation evaluates
both machines with the standard ternary operators and forces the
faulty value at fault sites.

The detection criterion is identical to the fault simulator's: some
primary output with binary good value and complementary binary faulty
value.  PODEM calling this simulation is therefore consistent with the
simulator that later re-verifies its tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)
from repro.sim.values import V0, V1, VX, Value, and_reduce, invert, or_reduce, xor_reduce

#: A composite value: (good machine value, faulty machine value).
Pair = Tuple[Value, Value]

PAIR_X: Pair = (VX, VX)
PAIR_0: Pair = (V0, V0)
PAIR_1: Pair = (V1, V1)
PAIR_D: Pair = (V1, V0)
PAIR_DBAR: Pair = (V0, V1)


def is_discrepant(pair: Pair) -> bool:
    """Binary good value with complementary binary faulty value
    (``D`` or ``D̄``)."""
    good, faulty = pair
    return good in (V0, V1) and faulty in (V0, V1) and good != faulty


def eval_gate_pair(opcode: int, inputs: Sequence[Pair]) -> Pair:
    """Evaluate one gate on composite values (both machines)."""
    goods = [p[0] for p in inputs]
    faults = [p[1] for p in inputs]
    if opcode == OP_AND:
        return (and_reduce(goods), and_reduce(faults))
    if opcode == OP_NAND:
        return (invert(and_reduce(goods)), invert(and_reduce(faults)))
    if opcode == OP_OR:
        return (or_reduce(goods), or_reduce(faults))
    if opcode == OP_NOR:
        return (invert(or_reduce(goods)), invert(or_reduce(faults)))
    if opcode == OP_XOR:
        return (xor_reduce(goods), xor_reduce(faults))
    if opcode == OP_XNOR:
        return (invert(xor_reduce(goods)), invert(xor_reduce(faults)))
    if opcode == OP_NOT:
        return (invert(goods[0]), invert(faults[0]))
    if opcode == OP_BUF:
        return (goods[0], faults[0])
    raise ValueError(f"unknown opcode {opcode}")


def apply_fault_site(pair: Pair, stuck: int) -> Pair:
    """Force the faulty machine's value at a stuck-at fault site."""
    return (pair[0], V0 if stuck == 0 else V1)


class DualSimulator:
    """Forward composite simulation of an unrolled (combinational) model.

    The model is described by:

    * ``n_nets`` — dense net count,
    * ``ops`` — ``(opcode, out, fanins)`` in topological order,
    * ``stem_sites`` — net index → stuck value (faulty machine forced
      after the net is computed or loaded),
    * ``pin_sites`` — (gate out index, pin) → stuck value (faulty
      machine forced on that pin's view of its driver).
    """

    def __init__(
        self,
        n_nets: int,
        ops: Sequence[Tuple[int, int, Tuple[int, ...]]],
        stem_sites: Dict[int, int],
        pin_sites: Dict[Tuple[int, int], int],
    ) -> None:
        self.n_nets = n_nets
        self.ops = ops
        self.stem_sites = stem_sites
        self.pin_sites = pin_sites
        self._op_outputs = {out for _opcode, out, _fanins in ops}

    def run(self, source_values: Dict[int, Pair]) -> List[Pair]:
        """Simulate from the given source assignments.

        ``source_values`` maps source-net indices to composite values;
        unlisted sources are X.  Returns the value of every net.
        """
        values: List[Pair] = [PAIR_X] * self.n_nets
        for idx, pair in source_values.items():
            if idx in self.stem_sites:
                pair = apply_fault_site(pair, self.stem_sites[idx])
            values[idx] = pair
        # Sources with fault sites but no assignment still force the
        # faulty machine (a stuck X-source has a known faulty value).
        for idx, stuck in self.stem_sites.items():
            if idx not in source_values and idx not in self._op_outputs:
                values[idx] = apply_fault_site(values[idx], stuck)

        for opcode, out, fanins in self.ops:
            pins = []
            for pin, f in enumerate(fanins):
                pair = values[f]
                stuck = self.pin_sites.get((out, pin))
                if stuck is not None:
                    pair = apply_fault_site(pair, stuck)
                pins.append(pair)
            pair = eval_gate_pair(opcode, pins)
            stuck = self.stem_sites.get(out)
            if stuck is not None:
                pair = apply_fault_site(pair, stuck)
            values[out] = pair
        return values
