"""PODEM over the unrolled time-frame model.

Classic PODEM structure (Goel): all decisions are made on assignable
primary inputs; internal objectives (fault excitation, then D-frontier
propagation) are *backtraced* to a PI through X-valued nets, the model
is re-simulated, and failures backtrack through the PI decision stack.
An X-path check prunes branches whose fault effects can no longer
reach any observation point.

Completeness caveats (standard for practical ATPGs): internal XOR
backtrace picks one polarity, side-input choices are heuristic, and a
backtrack limit aborts hard faults — an aborted fault is *not* proven
untestable, just skipped.  Exhausting the decision tree at a given
frame count only proves untestability *for that unrolling depth*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.atpg.dualsim import Pair, is_discrepant
from repro.atpg.unroll import UnrolledModel
from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)
from repro.sim.values import V0, V1, VX, Value


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one PODEM run.

    Attributes
    ----------
    success:
        A test was found.
    assignments:
        PI index → binary value (unassigned PIs are don't-cares).
    backtracks:
        Decision reversals performed.
    aborted:
        True when the backtrack limit stopped the search (the fault may
        still be testable); False on success or a full exhaust.
    """

    success: bool
    assignments: Dict[int, Value]
    backtracks: int
    aborted: bool


def podem(model: UnrolledModel, backtrack_limit: int = 500) -> PodemResult:
    """Search for a test on ``model``; see module docstring."""
    sim = model.simulator()
    decisions: List[List[int]] = []  # [pi, value, tried_both]
    backtracks = 0

    while True:
        sources: Dict[int, Pair] = dict(model.fixed)
        for pi, value, _tried in decisions:
            sources[pi] = (value, value)
        values = sim.run(sources)

        if any(is_discrepant(values[o]) for o in model.observe):
            return PodemResult(
                success=True,
                assignments={pi: value for pi, value, _t in decisions},
                backtracks=backtracks,
                aborted=False,
            )

        target: Optional[Tuple[int, Value]] = None
        excited = _fault_excited(model, values)
        if not excited or _has_x_path(model, values):
            for objective in _objectives(model, values, excited):
                target = _backtrace(model, values, *objective)
                if target is not None:
                    break

        if target is not None:
            decisions.append([target[0], target[1], False])
            continue

        # Backtrack.
        backtracks += 1
        if backtracks > backtrack_limit:
            return PodemResult(False, {}, backtracks, aborted=True)
        while decisions and decisions[-1][2]:
            decisions.pop()
        if not decisions:
            return PodemResult(False, {}, backtracks, aborted=False)
        decisions[-1][1] ^= 1
        decisions[-1][2] = True


# ----------------------------------------------------------------------
# Fault excitation
# ----------------------------------------------------------------------


def _site_views(model: UnrolledModel, values: List[Pair]):
    """Yield (site_driver_index, stuck, pair) for every fault site."""
    for idx, stuck in model.stem_sites.items():
        yield idx, stuck, values[idx]
    for (out, pin), stuck in model.pin_sites.items():
        driver = model.driver[out][1][pin]
        pair = values[driver]
        yield driver, stuck, (pair[0], V0 if stuck == 0 else V1)


def _fault_excited(model: UnrolledModel, values: List[Pair]) -> bool:
    return any(is_discrepant(pair) for _i, _s, pair in _site_views(model, values))


# ----------------------------------------------------------------------
# Objective selection
# ----------------------------------------------------------------------

_CONTROLLING = {OP_AND: 0, OP_NAND: 0, OP_OR: 1, OP_NOR: 1}


def _objectives(model: UnrolledModel, values: List[Pair], excited: bool):
    """Yield candidate (net, value) goals in priority order.

    Excitation phase: one candidate per unexcited fault site, later
    frames first (their justification cones contain more assignable
    inputs).  Propagation phase: one candidate per D-frontier gate,
    nearest observation point first.  Yielding *all* candidates matters:
    a failed backtrace on one site/gate must not end the search.
    """
    if not excited:
        sites = [
            (idx, stuck)
            for idx, stuck, pair in _site_views(model, values)
            if pair[0] == VX
        ]
        sites.sort(key=lambda s: -s[0])  # later frames have larger indices
        for idx, stuck in sites:
            yield (idx, V1 - stuck)
        return

    # D-frontier: gates with a discrepant input view and an output that
    # is still undetermined; prefer gates closest to an observe point.
    frontier: List[Tuple[int, int, Value]] = []  # (distance, net, v)
    for opcode, out, fanins in model.ops:
        out_pair = values[out]
        if is_discrepant(out_pair):
            continue
        if out_pair[0] in (V0, V1) and out_pair[1] in (V0, V1):
            continue  # blocked: both machines determined and equal
        has_d = False
        for pin, f in enumerate(fanins):
            pair = values[f]
            stuck = model.pin_sites.get((out, pin))
            if stuck is not None:
                pair = (pair[0], V0 if stuck == 0 else V1)
            if is_discrepant(pair):
                has_d = True
                break
        if not has_d:
            continue
        for side_net, side_value in _side_inputs(opcode, fanins, values):
            distance = model.po_distance.get(out, 1_000_000)
            frontier.append((distance, side_net, side_value))
    frontier.sort(key=lambda entry: entry[0])
    for _distance, net, value in frontier:
        yield (net, value)


def _side_inputs(opcode: int, fanins: Tuple[int, ...], values: List[Pair]):
    """X-valued side inputs with the value each needs (non-controlling)."""
    for f in fanins:
        if values[f][0] == VX:
            if opcode in _CONTROLLING:
                yield (f, 1 - _CONTROLLING[opcode])
            elif opcode in (OP_XOR, OP_XNOR):
                yield (f, V0)


# ----------------------------------------------------------------------
# X-path check
# ----------------------------------------------------------------------


def _has_x_path(model: UnrolledModel, values: List[Pair]) -> bool:
    """Can any existing fault effect still reach an observation point?

    BFS from discrepant nets through fanout, passing only nets whose
    value is not fully determined-and-equal (those block propagation).
    """
    observe = set(model.observe)
    frontier = [
        idx for idx in range(len(values)) if is_discrepant(values[idx])
    ]
    # Branch-fault discrepancies live in a pin *view*, not in any net
    # value: seed the sink gate's output when its view is discrepant
    # and the output can still change.
    for (out, pin), stuck in model.pin_sites.items():
        driver = model.driver[out][1][pin]
        good = values[driver][0]
        if good in (V0, V1) and good != stuck:
            pair = values[out]
            if not (
                pair[0] in (V0, V1)
                and pair[1] in (V0, V1)
                and pair[0] == pair[1]
            ):
                frontier.append(out)
    seen: Set[int] = set(frontier)
    while frontier:
        idx = frontier.pop()
        if idx in observe:
            return True
        for out in model.fanouts.get(idx, ()):
            if out in seen:
                continue
            pair = values[out]
            if (
                pair[0] in (V0, V1)
                and pair[1] in (V0, V1)
                and pair[0] == pair[1]
            ):
                continue  # blocked
            seen.add(out)
            frontier.append(out)
    return False


# ----------------------------------------------------------------------
# Backtrace
# ----------------------------------------------------------------------


def _backtrace(
    model: UnrolledModel, values: List[Pair], net: int, value: Value
) -> Optional[Tuple[int, Value]]:
    """Walk the objective back to an assignable PI through X nets."""
    for _guard in range(4 * len(values) + 16):
        if net in model.assignable:
            return (net, value)
        if values[net][0] != VX:
            return None  # objective net already determined: conflict
        entry = model.driver.get(net)
        if entry is None:
            return None  # unassignable X source (frame-0 state)
        opcode, fanins = entry
        if opcode == OP_NOT:
            net, value = fanins[0], 1 - value
            continue
        if opcode == OP_BUF:
            net = fanins[0]
            continue
        pool = [f for f in fanins if values[f][0] == VX]
        preferred = [f for f in pool if f in model.reaches_assignable]
        pool = preferred or pool
        if not pool:
            return None
        if opcode in (OP_XOR, OP_XNOR):
            net, value = _easiest(model, pool, V0), V0
            continue
        controlling = _CONTROLLING[opcode]
        inverted = opcode in (OP_NAND, OP_NOR)
        inner = value ^ (1 if inverted else 0)
        value = controlling if inner == controlling else 1 - controlling
        net = _easiest(model, pool, value)
    return None  # pragma: no cover — guard against malformed models


def _easiest(model: UnrolledModel, pool: List[int], value: Value) -> int:
    """The pool net cheapest to justify to ``value``.

    Uses SCOAP controllability when the model carries guidance,
    otherwise falls back to the first candidate (deterministic).
    """
    if not model.controllability:
        return pool[0]

    def cost(idx: int) -> int:
        cc = model.controllability.get(idx)
        if cc is None:
            return 1 << 30
        return cc[1] if value == V1 else cc[0]

    return min(pool, key=cost)
