"""Scan-chain insertion.

Every selected flip-flop becomes a mux-D scan cell::

    D' = scan_en ? previous_cell_Q : D

The first cell's scan input is the new primary input ``scan_in``; the
last cell's output is exported as the new primary output ``scan_out``.
Chain order follows the circuit's flop declaration order (a real tool
would order by layout; order only permutes the shift vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError


@dataclass(frozen=True)
class ScanDesign:
    """A circuit with an inserted scan chain.

    Attributes
    ----------
    circuit:
        The scan-inserted netlist.  Ports: original PIs then
        ``scan_in`` and ``scan_en``; original POs then ``scan_out``.
    chain:
        Flip-flop output nets in shift order (``scan_in`` feeds
        ``chain[0]``; ``chain[-1]`` drives ``scan_out``).
    scan_in / scan_en / scan_out:
        The added port names.
    """

    circuit: Circuit
    chain: Tuple[str, ...]
    scan_in: str
    scan_en: str
    scan_out: str

    @property
    def chain_length(self) -> int:
        """Cells on the chain."""
        return len(self.chain)


@dataclass(frozen=True)
class ScanCost:
    """Hardware cost of scan insertion.

    Attributes
    ----------
    extra_gates:
        Mux gates added (3 per cell plus one shared inverter).
    extra_ports:
        Added pins (scan_in, scan_en, scan_out).
    cells:
        Scan cells inserted.
    """

    extra_gates: int
    extra_ports: int
    cells: int


def insert_scan(
    circuit: Circuit,
    scan_in: str = "scan_in",
    scan_en: str = "scan_en",
    scan_out: str = "scan_out",
) -> ScanDesign:
    """Insert a full scan chain into ``circuit``."""
    for name in (scan_in, scan_en, scan_out):
        if name in circuit:
            raise NetlistError(f"net {name!r} already exists")
    if not circuit.flops:
        raise NetlistError("circuit has no flip-flops to scan")

    chain: List[str] = list(circuit.flops)
    gates: List[Gate] = []
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.DFF:
            position = chain.index(net)
            shift_source = scan_in if position == 0 else chain[position - 1]
            d_net = gate.fanins[0]
            gates.append(
                Gate(f"{net}_shift", GateType.AND, (scan_en, shift_source))
            )
            gates.append(
                Gate(f"{net}_func", GateType.AND, (f"{scan_en}_n", d_net))
            )
            gates.append(
                Gate(f"{net}_scanmux", GateType.OR, (f"{net}_shift", f"{net}_func"))
            )
            gates.append(Gate(net, GateType.DFF, (f"{net}_scanmux",)))
        else:
            gates.append(gate)
    gates.append(Gate(scan_in, GateType.INPUT, ()))
    gates.append(Gate(scan_en, GateType.INPUT, ()))
    gates.append(Gate(f"{scan_en}_n", GateType.NOT, (scan_en,)))
    gates.append(Gate(scan_out, GateType.BUF, (chain[-1],)))

    scanned = Circuit(
        f"{circuit.name}_scan",
        gates,
        list(circuit.outputs) + [scan_out],
    )
    return ScanDesign(
        circuit=scanned,
        chain=tuple(chain),
        scan_in=scan_in,
        scan_en=scan_en,
        scan_out=scan_out,
    )


def scan_cost(original: Circuit, design: ScanDesign) -> ScanCost:
    """Cost delta of scan insertion."""
    return ScanCost(
        extra_gates=(
            design.circuit.num_gates(combinational_only=True)
            - original.num_gates(combinational_only=True)
        ),
        extra_ports=(
            len(design.circuit.inputs)
            - len(original.inputs)
            + len(design.circuit.outputs)
            - len(original.outputs)
        ),
        cells=design.chain_length,
    )
