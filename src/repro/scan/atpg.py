"""Combinational ATPG for scan designs.

With full scan, every flip-flop is directly loadable and observable,
so test generation reduces to the *scan-equivalent combinational
model*: flip-flop outputs become pseudo primary inputs, next-state
nets become pseudo primary outputs, and the ordinary 1-frame PODEM
engine does the rest.

Detection claims are verified twice: combinationally (the capture
pattern re-simulated against the fault) and sequentially (the whole
expanded scan session fault-simulated on the scan-inserted netlist,
where pseudo-PO detections surface through ``scan_out`` during
shift-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.atpg.podem import podem
from repro.atpg.unroll import unroll
from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.scan.insert import ScanDesign, insert_scan
from repro.scan.session import ScanTest, expand_scan_session
from repro.sim.compile import compile_circuit
from repro.sim.collapse import collapse_faults
from repro.sim.faults import Fault, validate_fault
from repro.sim.faultsim import FaultSimulator
from repro.sim.values import V0
from repro.tgen.sequence import TestSequence


@dataclass
class ScanAtpgResult:
    """Outcome of scan ATPG.

    Attributes
    ----------
    tests:
        The generated scan tests, in generation order.
    detected:
        Faults the tests detect on the combinational model.
    untestable:
        Faults proven combinationally untestable (full exhaust) —
        with full scan this is a *proof* of (scan-mode) untestability.
    aborted:
        Faults abandoned at the backtrack limit.
    unsupported:
        Faults that do not exist on the combinational model (branch
        faults into flip-flop D pins).
    session:
        The expanded flat stimulus for the scan circuit.
    design:
        The scan-inserted design the session drives.
    session_detected:
        Faults (valid on the scan netlist) the expanded session
        detects end to end — the cross-check.
    """

    tests: List[ScanTest]
    detected: Tuple[Fault, ...]
    untestable: Tuple[Fault, ...]
    aborted: Tuple[Fault, ...]
    unsupported: Tuple[Fault, ...]
    session: TestSequence
    design: ScanDesign
    session_detected: Tuple[Fault, ...]

    @property
    def coverage(self) -> float:
        """Combinational-model coverage over the supported faults."""
        total = (
            len(self.detected) + len(self.untestable) + len(self.aborted)
        )
        return len(self.detected) / total if total else 1.0

    @property
    def session_cycles(self) -> int:
        """Test application time in clock cycles."""
        return len(self.session)


def scan_equivalent_model(circuit: Circuit) -> Tuple[Circuit, Dict[str, str]]:
    """The combinational model: flops → pseudo-PIs, D nets → pseudo-POs.

    Returns the model and a map from flop name to its pseudo-PO net
    (the flop's next-state net).
    """
    gates: List[Gate] = []
    pseudo_po: Dict[str, str] = {}
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.DFF:
            gates.append(Gate(net, GateType.INPUT, ()))
            pseudo_po[net] = gate.fanins[0]
        else:
            gates.append(gate)
    outputs = list(circuit.outputs)
    for d_net in pseudo_po.values():
        if d_net not in outputs:
            outputs.append(d_net)
    model = Circuit(f"{circuit.name}_comb", gates, outputs)
    return model, pseudo_po


def scan_atpg(
    circuit: Circuit,
    faults: Sequence[Fault] | None = None,
    backtrack_limit: int = 300,
) -> ScanAtpgResult:
    """Generate and verify scan tests for ``faults`` on ``circuit``."""
    if faults is None:
        faults = collapse_faults(circuit)
    model, _pseudo_po = scan_equivalent_model(circuit)
    comp = compile_circuit(model)
    sim = FaultSimulator(model, comp)

    supported: List[Fault] = []
    unsupported: List[Fault] = []
    for fault in faults:
        try:
            validate_fault(model, fault)
            supported.append(fault)
        except Exception:
            unsupported.append(fault)

    def model_row(test: ScanTest) -> Tuple[int, ...]:
        """One capture-cycle input row in the model's own PI order."""
        values = dict(zip(circuit.inputs, test.pattern))
        values.update(zip(circuit.flops, test.state))
        return tuple(values[name] for name in model.inputs)

    tests: List[ScanTest] = []
    untestable: List[Fault] = []
    aborted: List[Fault] = []
    pending = list(supported)
    while pending:
        fault = pending.pop(0)
        unrolled = unroll(comp, fault, 1)
        result = podem(unrolled, backtrack_limit)
        if not result.success:
            (aborted if result.aborted else untestable).append(fault)
            continue
        assignment = {
            comp.names[idx]: value for idx, value in result.assignments.items()
        }
        pattern = tuple(
            assignment.get(name, V0) for name in circuit.inputs
        )
        # State vector in chain order (== circuit.flops order).
        state = tuple(
            assignment.get(name, V0) for name in circuit.flops
        )
        test = ScanTest(state=state, pattern=pattern)

        # Combinational verification + collateral dropping.
        check = sim.run([model_row(test)], [fault] + pending)
        if fault not in check.detection_time:
            raise ReproError(
                f"scan test for {fault} fails combinational verification"
            )
        tests.append(test)
        detected_now = set(check.detection_time)
        pending = [f for f in pending if f not in detected_now]

    detected = tuple(
        sorted(set(supported) - set(untestable) - set(aborted))
    )

    # End-to-end verification on the scan-inserted netlist.
    design = insert_scan(circuit)
    session = expand_scan_session(design, tests) if tests else TestSequence([])
    scan_valid: List[Fault] = []
    for fault in faults:
        try:
            validate_fault(design.circuit, fault)
            scan_valid.append(fault)
        except Exception:
            continue
    session_detected: Tuple[Fault, ...] = ()
    if tests and scan_valid:
        scan_sim = FaultSimulator(design.circuit)
        session_detected = tuple(
            sorted(scan_sim.run(session.patterns, scan_valid).detection_time)
        )

    return ScanAtpgResult(
        tests=tests,
        detected=detected,
        untestable=tuple(untestable),
        aborted=tuple(aborted),
        unsupported=tuple(unsupported),
        session=session,
        design=design,
        session_detected=session_detected,
    )
