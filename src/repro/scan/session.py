"""Scan test sessions: expansion into flat stimuli.

A *scan test* is a state vector to load plus a primary-input pattern
to apply.  Application protocol (standard mux-D scan):

1. **shift** — ``scan_en = 1`` for ``n`` cycles (``n`` = chain length),
   feeding the state vector serially on ``scan_in``; primary inputs are
   held at 0 during shifting.
2. **capture** — ``scan_en = 0`` for one cycle with the test's primary
   inputs applied; the combinational responses are observed at the POs
   and the next state is captured into the cells.
3. The next test's shift-in simultaneously shifts the captured state
   *out* through ``scan_out``, where the fault simulator observes it
   (``scan_out`` is a primary output of the scan design).

After the last test, a final flush shift exposes the last captured
state.  The expansion is graded by the ordinary sequential fault
simulator — no scan-specific detection logic is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.scan.insert import ScanDesign
from repro.sim.values import V0, V1, Value
from repro.tgen.sequence import TestSequence


@dataclass(frozen=True)
class ScanTest:
    """One scan test.

    Attributes
    ----------
    state:
        Value per chain cell, in chain order (``state[k]`` ends up in
        ``chain[k]`` after shifting).
    pattern:
        Primary-input values for the capture cycle (original PI order).
    """

    state: Tuple[int, ...]
    pattern: Tuple[int, ...]


def expand_scan_session(
    design: ScanDesign, tests: Sequence[ScanTest]
) -> TestSequence:
    """Expand ``tests`` into a flat stimulus for ``design.circuit``.

    Input column order matches the scan circuit's ports: original PIs,
    then ``scan_in``, then ``scan_en``.
    """
    n_pi = len(design.circuit.inputs) - 2  # minus scan_in, scan_en
    n = design.chain_length
    rows: List[Tuple[Value, ...]] = []
    for test in tests:
        if len(test.state) != n:
            raise SimulationError(
                f"state vector of {len(test.state)} for a {n}-cell chain"
            )
        if len(test.pattern) != n_pi:
            raise SimulationError(
                f"pattern of {len(test.pattern)} for {n_pi} primary inputs"
            )
        # Shift in: chain[k] must hold state[k] after n shift cycles.
        # chain[0] is fed directly from scan_in, so the value destined
        # for the *last* cell enters first.
        for cycle in range(n):
            bit = test.state[n - 1 - cycle]
            rows.append(tuple([V0] * n_pi) + (bit, V1))
        # Capture cycle.
        rows.append(tuple(test.pattern) + (V0, V0))
    # Flush: shift the final captured state out.
    for _ in range(n):
        rows.append(tuple([V0] * n_pi) + (V0, V1))
    return TestSequence(rows)


def capture_cycle_indices(design: ScanDesign, n_tests: int) -> List[int]:
    """Time units of the capture cycles within an expanded session."""
    n = design.chain_length
    return [k * (n + 1) + n for k in range(n_tests)]
