"""Scan-design DFT substrate (the [20]-class alternative).

The paper's method deliberately avoids touching the flip-flops; the
canonical opposite is *full scan*: every flip-flop becomes a scan cell
on a shift chain, turning sequential test generation into combinational
test generation at the cost of per-test shift cycles and per-flop mux
hardware.  Implementing it makes the paper's central tradeoff —
hardware + routing overhead vs. test application time and coverage —
measurable on the same circuits with the same fault simulator.

* :mod:`repro.scan.insert` — scan-chain insertion (mux-D scan cells).
* :mod:`repro.scan.session` — expansion of scan tests into a flat
  stimulus (shift-in / capture / overlapped shift-out) that the
  ordinary sequential fault simulator grades.
* :mod:`repro.scan.atpg` — combinational ATPG on the scan-equivalent
  model (state bits as pseudo-inputs, next-state functions as
  pseudo-outputs) using the same PODEM engine.
"""

from repro.scan.insert import ScanDesign, insert_scan, scan_cost
from repro.scan.session import ScanTest, expand_scan_session
from repro.scan.atpg import ScanAtpgResult, scan_atpg

__all__ = [
    "ScanDesign",
    "insert_scan",
    "scan_cost",
    "ScanTest",
    "expand_scan_session",
    "ScanAtpgResult",
    "scan_atpg",
]
