"""Retry/timeout policy for the fault-tolerant executor.

A :class:`RetryPolicy` bundles every knob the hardened
:class:`~repro.runtime.executor.ProcessExecutor` consults when a worker
crashes, hangs past its deadline, or returns a corrupted payload:

* ``task_timeout`` — how long to wait for one task's result before the
  worker is declared hung, the pool retired and the task retried;
* ``retries`` — how many times a failing task is re-dispatched to the
  pool before it is replayed serially in the parent process (the
  replay runs the very same worker function, so the result is
  identical by construction);
* ``backoff_s`` / ``backoff_cap_s`` — exponential backoff between
  retry rounds;
* ``max_pool_rebuilds`` — after this many pool failures the executor
  degrades gracefully to serial in-process execution for the rest of
  its life.

None of these knobs can change a result — only how (and how fast) it
is obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ResilienceError


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for the process-pool executor.

    Attributes
    ----------
    task_timeout:
        Seconds to wait for one task before treating its worker as
        hung (``None``, the default, waits forever).
    retries:
        Pool re-dispatch attempts per failed task before the task is
        replayed serially in the parent process.
    backoff_s:
        Base delay between retry rounds; round ``k`` sleeps
        ``backoff_s * 2**(k-1)`` seconds, capped at ``backoff_cap_s``.
        ``0`` disables backoff (what the tests use).
    backoff_cap_s:
        Upper bound for one backoff sleep.
    max_pool_rebuilds:
        Pool failures (crash or hang) tolerated before the executor
        degrades to serial execution for all remaining work.
    """

    task_timeout: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.1
    backoff_cap_s: float = 2.0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ResilienceError(
                f"task_timeout must be positive, got {self.task_timeout!r}"
            )
        if self.retries < 0:
            raise ResilienceError(
                f"retries must be >= 0, got {self.retries!r}"
            )
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ResilienceError("backoff seconds must be >= 0")
        if self.max_pool_rebuilds < 1:
            raise ResilienceError(
                f"max_pool_rebuilds must be >= 1, got "
                f"{self.max_pool_rebuilds!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry round ``attempt`` (1-based)."""
        if self.backoff_s <= 0:
            return 0.0
        return min(
            self.backoff_s * (2 ** max(attempt - 1, 0)), self.backoff_cap_s
        )
