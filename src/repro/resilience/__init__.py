"""repro.resilience — fault tolerance for the runtime layer.

Long sweeps must survive the real world: worker processes crash, hang,
or return garbage; cache entries get truncated; schedulers send
SIGTERM mid-run.  This package provides the pieces the runtime layer
composes into a fault-tolerant whole:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: per-task
  timeouts, bounded retries with exponential backoff, and the
  pool-failure budget after which the executor degrades to serial
  execution.  Retried and serially-replayed tasks run the very same
  worker functions, so results stay bit-identical by construction.
* :mod:`repro.resilience.chaos` — :class:`ChaosSpec`: deterministic,
  seeded fault injection (worker crash / hang / corrupted payload,
  cache vandalism) so every recovery path is exercised in tests
  rather than trusted on faith.
* :mod:`repro.resilience.journal` — :class:`CheckpointJournal`:
  atomic per-circuit result checkpoints under the cache dir, powering
  ``repro table6 --resume``.
* :mod:`repro.resilience.shards` — :class:`ShardedJournal`:
  per-writer journal shards (one supervisor, N job workers) merged
  deterministically by record version on restart; chaos can tear
  individual shard writes to prove the recovery path.
* :mod:`repro.resilience.signals` — :func:`handle_termination`:
  SIGINT/SIGTERM → :class:`~repro.errors.SweepInterrupted`, for an
  orderly stop with a valid journal left behind.
"""

from repro.resilience.chaos import (
    CORRUPT_PAYLOAD,
    ChaosSpec,
    chaos_call,
    task_digest,
)
from repro.resilience.journal import (
    JOURNAL_FORMAT,
    CheckpointJournal,
    CheckpointWarning,
    flow_journal_key,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.shards import ShardedJournal
from repro.resilience.signals import handle_termination

__all__ = [
    "CORRUPT_PAYLOAD",
    "ChaosSpec",
    "CheckpointJournal",
    "CheckpointWarning",
    "JOURNAL_FORMAT",
    "RetryPolicy",
    "ShardedJournal",
    "chaos_call",
    "flow_journal_key",
    "handle_termination",
    "task_digest",
]
