"""Atomic per-circuit checkpoint journal.

Long multi-circuit sweeps (``repro table6``, the benchmark harness)
journal each circuit's finished result to disk the moment it
completes, so an interrupted run — crash, SIGTERM, power loss — can be
resumed with ``--resume`` and skip everything already done.

Design rules mirror the artifact cache's:

* **Atomic.**  Every record rewrites the whole journal to a temporary
  file and ``os.replace``-s it into place; a reader (or a resumed run)
  can never observe a torn journal.
* **Versioned, never trusted.**  The journal carries a format version;
  an unreadable, unparseable or version-mismatched journal is treated
  as empty (with a warning) — resumption then simply recomputes.
* **Merged, not clobbered.**  A record re-reads the on-disk journal
  and merges before writing, so concurrent sweeps over different
  circuits sharing one cache dir do not erase each other's progress.

The journal lives under the cache root (``<cache>/checkpoints/``), out
of reach of the artifact cache's LRU eviction.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.metrics import RuntimeStats
    from repro.trace.span import Tracer

JOURNAL_FORMAT = 1
"""Version of the journal layout.  Journals written under a different
version are ignored (recomputation is always safe)."""


class CheckpointWarning(UserWarning):
    """An existing checkpoint journal was unusable and is ignored."""


def flow_journal_key(circuit_name: str, config: Mapping[str, object]) -> str:
    """The journal key for one (circuit, flow configuration) pair.

    ``config`` is the flow configuration as a mapping (e.g.
    ``dataclasses.asdict(FlowConfig(...))``); any change to it changes
    the key, so resumed sweeps never mix results across configurations.
    """
    from repro.runtime.keys import config_fingerprint

    return f"flow:{circuit_name}:{config_fingerprint(dict(config))[:32]}"


class CheckpointJournal:
    """Key → JSON-payload journal with atomic whole-file rewrites.

    Parameters
    ----------
    path:
        The journal file (parent directories are created on first
        record).
    stats:
        Optional :class:`~repro.runtime.metrics.RuntimeStats` to count
        ``journal_records`` into.
    tracer:
        Optional :class:`~repro.trace.span.Tracer`; successful
        checkpoint writes then fire a ``checkpoint`` trace event.
    """

    def __init__(
        self,
        path: str | Path,
        stats: Optional["RuntimeStats"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.path = Path(path)
        self.stats = stats
        self.tracer = tracer
        self._entries: Optional[Dict[str, dict]] = None

    # -- disk ---------------------------------------------------------------

    def _load(self) -> Dict[str, dict]:
        """The on-disk entries; an unusable journal is empty."""
        try:
            body = json.loads(self.path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError):
            warnings.warn(
                f"checkpoint journal {self.path} is unreadable or corrupt; "
                "ignoring it (completed work will be recomputed)",
                CheckpointWarning,
                stacklevel=3,
            )
            return {}
        if (
            not isinstance(body, dict)
            or body.get("format") != JOURNAL_FORMAT
            or not isinstance(body.get("entries"), dict)
        ):
            warnings.warn(
                f"checkpoint journal {self.path} has an unknown format; "
                "ignoring it (completed work will be recomputed)",
                CheckpointWarning,
                stacklevel=3,
            )
            return {}
        return {
            key: payload
            for key, payload in body["entries"].items()
            if isinstance(key, str) and isinstance(payload, dict)
        }

    def _write(self, entries: Dict[str, dict]) -> bool:
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        body = json.dumps({"format": JOURNAL_FORMAT, "entries": entries})
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(body)
            os.replace(tmp, self.path)
        except OSError:
            # An unusable journal location never fails the sweep; the
            # result is still in hand, only the checkpoint is skipped.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            warnings.warn(
                f"could not write checkpoint journal {self.path}; "
                "this run will not be resumable",
                CheckpointWarning,
                stacklevel=3,
            )
            return False
        return True

    # -- API ----------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The payload checkpointed under ``key``, or None."""
        if self._entries is None:
            self._entries = self._load()
        return self._entries.get(key)

    def record(self, key: str, payload: dict) -> None:
        """Checkpoint ``payload`` under ``key`` (atomic, merged)."""
        merged = self._load()
        if self._entries:
            merged.update(self._entries)
        merged[key] = payload
        self._entries = merged
        if self._write(merged):
            if self.stats is not None:
                self.stats.journal_records += 1
            if self.tracer is not None:
                self.tracer.event("checkpoint", key=key)

    def record_many(self, entries: Mapping[str, dict]) -> None:
        """Checkpoint every ``entries`` item in one atomic rewrite.

        Used by journal-shard compaction on restart: the merged state
        lands in a single ``os.replace`` so a crash mid-compaction can
        never leave a half-merged journal.
        """
        merged = self._load()
        if self._entries:
            merged.update(self._entries)
        merged.update({k: dict(v) for k, v in entries.items()})
        self._entries = merged
        if self._write(merged):
            if self.stats is not None:
                self.stats.journal_records += len(entries)
            if self.tracer is not None:
                for key in sorted(entries):
                    self.tracer.event("checkpoint", key=key)

    def keys(self) -> List[str]:
        """Checkpointed keys, sorted."""
        if self._entries is None:
            self._entries = self._load()
        return sorted(self._entries)

    def clear(self) -> int:
        """Drop every checkpoint; returns the number removed."""
        removed = len(self.keys())
        self._entries = {}
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            pass
        return removed

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"CheckpointJournal({self.path})"
