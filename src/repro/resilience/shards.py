"""Per-writer journal shards with deterministic merge.

One durable journal written by many concurrent owners is a lock or a
corruption waiting to happen.  The serve layer instead gives every
writer (one supervisor, N job workers) its **own**
:class:`~repro.resilience.journal.CheckpointJournal` shard under a
shared directory — each shard keeps the single-writer atomicity the
checkpoint journal already proves — and merges the shards
**deterministically** when a restarted service rebuilds its state:

* every record carries a monotonically increasing ``version`` stamped
  by the writer that owned the job at that moment;
* the merge keeps, per key, the record with the highest
  ``(version, shard-name)`` pair — version decides, the shard name is
  a pure tie-break so the merge is a function of the on-disk bytes,
  never of directory-listing order;
* an unreadable or torn shard degrades exactly like a corrupt
  checkpoint journal: it is ignored with a warning and its records
  are recomputed (a lost *transition* is recovered by requeueing; a
  lost *submit ack* cannot happen because acks are journaled by the
  single supervisor shard before the client hears 202).

Chaos's ``journal_tear`` mode injects the failure this layout is
designed around: a shard write is dropped as if the temporary file
tore before the atomic replace, leaving the shard at its previous
(consistent) state.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.resilience.journal import CheckpointJournal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.chaos import ChaosSpec
    from repro.runtime.metrics import RuntimeStats
    from repro.trace.span import Tracer

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".json"


def _record_version(payload: dict) -> int:
    try:
        return int(payload.get("version", 0))
    except (TypeError, ValueError):
        return 0


class ShardedJournal:
    """A family of single-writer journal shards under one directory.

    Parameters
    ----------
    root:
        Directory holding ``shard-<name>.json`` files (created on the
        first record).
    stats / tracer:
        Forwarded to every shard's :class:`CheckpointJournal`.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosSpec`; its
        ``journal_tear`` mode deterministically discards individual
        shard writes (counted in :attr:`tears`).
    """

    def __init__(
        self,
        root: Union[str, Path],
        stats: Optional["RuntimeStats"] = None,
        tracer: Optional["Tracer"] = None,
        chaos: Optional["ChaosSpec"] = None,
    ) -> None:
        self.root = Path(root)
        self.stats = stats
        self.tracer = tracer
        self.chaos = chaos
        self._shards: Dict[str, CheckpointJournal] = {}
        #: Number of writes chaos tore (discarded before persisting).
        self.tears = 0

    # -- shards --------------------------------------------------------------

    def _path(self, name: str) -> Path:
        return self.root / f"{_SHARD_PREFIX}{name}{_SHARD_SUFFIX}"

    def shard(self, name: str) -> CheckpointJournal:
        """The (cached) journal for writer ``name``."""
        journal = self._shards.get(name)
        if journal is None:
            journal = CheckpointJournal(
                self._path(name), stats=self.stats, tracer=self.tracer
            )
            self._shards[name] = journal
        return journal

    def shard_names(self) -> List[str]:
        """Writers with an on-disk shard, sorted."""
        try:
            files = sorted(p.name for p in self.root.iterdir())
        except OSError:
            return []
        return [
            name[len(_SHARD_PREFIX) : -len(_SHARD_SUFFIX)]
            for name in files
            if name.startswith(_SHARD_PREFIX) and name.endswith(_SHARD_SUFFIX)
        ]

    # -- writes --------------------------------------------------------------

    def record(self, shard_name: str, key: str, payload: dict) -> bool:
        """Journal ``payload`` into ``shard_name``'s shard.

        Returns False when chaos tore the write — the shard keeps its
        previous consistent state, exactly as a real torn tmp file
        under the atomic-replace discipline would leave it.
        """
        if self.chaos is not None and self.chaos.decide(
            "journal_tear", shard_name, key, _record_version(payload)
        ):
            self.tears += 1
            return False
        self.shard(shard_name).record(key, payload)
        return True

    # -- merge ---------------------------------------------------------------

    def merged(self) -> Dict[str, dict]:
        """The deterministic union of every on-disk shard.

        Per key, the record with the highest ``(version, shard-name)``
        wins.  Unreadable shards warn (via the underlying journal) and
        contribute nothing.
        """
        best: Dict[str, Tuple[int, str, dict]] = {}
        for name in self.shard_names():
            journal = CheckpointJournal(self._path(name))
            for key in journal.keys():
                payload = journal.get(key)
                if payload is None:
                    continue
                rank = (_record_version(payload), name)
                current = best.get(key)
                if current is None or rank > (current[0], current[1]):
                    best[key] = (rank[0], rank[1], payload)
        return {key: payload for key, (_, _, payload) in best.items()}

    def clear(self) -> int:
        """Delete every shard file; returns the number removed."""
        removed = 0
        for name in self.shard_names():
            try:
                self._path(name).unlink(missing_ok=True)
                removed += 1
            except OSError:
                pass
        self._shards.clear()
        return removed

    def __repr__(self) -> str:
        return f"ShardedJournal({self.root})"
