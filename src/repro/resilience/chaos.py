"""Deterministic fault injection ("chaos") for the runtime and serve layers.

Recovery code that is never exercised is recovery code that does not
work.  A :class:`ChaosSpec` makes workers crash, hang past their
timeout, or return corrupted payloads, and makes the artifact cache
vandalize entries it just wrote — all **deterministically**: every
injection decision is a pure function of the spec's seed and the
identity of the victim (worker-function name, task digest, attempt
number, or cache key).  The same spec against the same workload always
injects the same faults, so every recovery path can be pinned in
tier-1 tests.

Injections never change results.  A crashed/hung/corrupting task is
retried (the decision hash includes the attempt number, so retries
roll fresh dice) and ultimately replayed serially without chaos; a
vandalized cache entry is discarded on read and the artifact
recomputed.

Two families of modes share one spec:

* **Runtime-pool modes** (``crash``/``hang``/``corrupt``/``cache``)
  afflict the executor's task workers and the artifact cache, exactly
  as before.
* **Service modes** afflict the multi-worker campaign service
  (:mod:`repro.serve.supervisor`): ``worker_crash`` hard-exits a job
  worker after it computed but before it reported, ``worker_hang``
  stops its heartbeats before the work, ``worker_stall`` stops them
  after the work but before the result is sent, ``kill_claim``
  SIGKILLs the worker the instant it receives a claim,
  ``lease_expire`` grants an already-expired lease (provoking the
  stale-result fencing race), and ``journal_tear`` discards one
  per-worker journal-shard write as if the tmp file had torn before
  the atomic replace.

Spec syntax (the CLI's ``--chaos``)::

    crash=0.2,hang=0.1,corrupt=0.1,cache=0.3,seed=7,hang_s=2.0
    worker_crash=0.3,kill_claim=0.2,lease_expire=0.2,seed=11

Rates are probabilities in ``[0, 1]``; ``seed`` picks the injection
pattern; ``hang_s`` is how long a hung worker sleeps.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, fields
from typing import Any, Callable, Tuple

from repro.errors import ChaosError

CORRUPT_PAYLOAD = "__repro_chaos_corrupted_payload__"
"""Sentinel a chaos-afflicted worker returns instead of its real
result; it fails the executor's payload validation and triggers the
retry path."""

_RATE_FIELDS = (
    "crash",
    "hang",
    "corrupt",
    "cache",
    "worker_crash",
    "worker_hang",
    "worker_stall",
    "kill_claim",
    "lease_expire",
    "journal_tear",
)
_SERVICE_FIELDS = (
    "worker_crash",
    "worker_hang",
    "worker_stall",
    "kill_claim",
    "lease_expire",
    "journal_tear",
)
_DIGEST_BITS = 48


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded fault-injection configuration.

    Attributes
    ----------
    crash:
        Probability that a worker task hard-exits mid-flight
        (``os._exit``), breaking the process pool.
    hang:
        Probability that a worker task sleeps ``hang_s`` seconds
        before doing its work (exceeding any sane ``task_timeout``).
    corrupt:
        Probability that a worker task returns
        :data:`CORRUPT_PAYLOAD` instead of its real result.
    cache:
        Probability that the artifact cache truncates an entry right
        after writing it.
    worker_crash:
        Probability that a campaign job worker hard-exits after
        computing a job but before reporting the result.
    worker_hang:
        Probability that a campaign job worker stops heartbeating and
        sleeps ``hang_s`` *before* doing the work.
    worker_stall:
        Probability that a campaign job worker does the work, then
        stops heartbeating and stalls before sending the result.
    kill_claim:
        Probability that a campaign job worker SIGKILLs itself the
        instant it receives a claim (the journaled lease is the only
        trace of the claim).
    lease_expire:
        Probability that the supervisor grants a lease already at its
        deadline, so the job is reclaimed while the original worker is
        still computing and that worker's late result is fenced off.
    journal_tear:
        Probability that one per-worker journal-shard write is
        discarded — as if the temporary file tore before the atomic
        replace — leaving the shard at its previous state.
    seed:
        Seed for the injection pattern; same seed → same injections.
    hang_s:
        Sleep duration of a hung worker.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    cache: float = 0.0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    worker_stall: float = 0.0
    kill_claim: float = 0.0
    lease_expire: float = 0.0
    journal_tear: float = 0.0
    seed: int = 0
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(
                    f"chaos rate {name}={rate!r} must be in [0, 1]"
                )
        if self.hang_s <= 0:
            raise ChaosError(f"hang_s must be positive, got {self.hang_s!r}")

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse a ``key=value,...`` spec (the CLI's ``--chaos``)."""
        known = {f.name: f for f in fields(cls)}
        values: dict = {}
        for part in text.replace(";", ",").split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ChaosError(
                    f"chaos spec item {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in known:
                raise ChaosError(
                    f"unknown chaos key {key!r}; expected one of "
                    f"{', '.join(sorted(known))}"
                )
            try:
                values[key] = int(raw) if key == "seed" else float(raw)
            except ValueError as exc:
                raise ChaosError(
                    f"chaos value {raw.strip()!r} for {key!r} is not a number"
                ) from exc
        return cls(**values)

    @property
    def affects_workers(self) -> bool:
        """True when any runtime-pool injection mode is active."""
        return self.crash > 0 or self.hang > 0 or self.corrupt > 0

    @property
    def affects_service(self) -> bool:
        """True when any serve-layer injection mode is active."""
        return any(getattr(self, name) > 0 for name in _SERVICE_FIELDS)

    def roll(self, mode: str, *ingredients: object) -> float:
        """Deterministic pseudo-uniform draw in ``[0, 1)`` for one
        potential injection site."""
        text = "|".join(
            [str(self.seed), mode] + [repr(item) for item in ingredients]
        )
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:6], "big") / float(1 << _DIGEST_BITS)

    def decide(self, mode: str, *ingredients: object) -> bool:
        """Whether to inject fault ``mode`` at this site."""
        rate = float(getattr(self, mode))
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self.roll(mode, *ingredients) < rate


def task_digest(task: object) -> str:
    """Stable digest identifying one task payload.

    ``repr`` over the task tuple (strings, ints, tuples, fault
    dataclasses) is deterministic across processes, so the same task
    draws the same chaos verdict wherever it runs.
    """
    return hashlib.sha256(repr(task).encode("utf-8")).hexdigest()[:16]


def chaos_call(
    payload: Tuple["ChaosSpec", Callable[[Any], Tuple[Any, float]], int, Any],
) -> Tuple[Any, float]:
    """Worker-side wrapper: maybe inject a fault, then run the task.

    The executor submits this instead of the bare worker function when
    a spec with worker-side modes is active.  Serial replays call the
    bare function directly, so exhausted-retry fallbacks always
    succeed.
    """
    spec, fn, attempt, task = payload
    site = (fn.__name__, task_digest(task), attempt)
    if spec.decide("crash", *site):
        # A hard exit, not an exception: the parent sees
        # BrokenProcessPool exactly as it would for a real segfault.
        os._exit(13)
    if spec.decide("hang", *site):
        time.sleep(spec.hang_s)
    result, elapsed = fn(task)
    if spec.decide("corrupt", *site):
        return CORRUPT_PAYLOAD, elapsed
    return result, elapsed
