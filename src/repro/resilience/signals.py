"""Graceful shutdown on SIGINT/SIGTERM.

Sweep-running CLI commands install these handlers so that an operator
interrupt (Ctrl-C) or a scheduler kill (SIGTERM from a batch system)
stops the sweep *between* simulation steps with a
:class:`~repro.errors.SweepInterrupted` — unwinding through the
``with RuntimeContext(...)`` block, shutting worker pools down and
leaving an atomic, valid checkpoint journal behind.  Nothing needs to
be flushed at signal time: the journal is rewritten atomically after
every completed circuit, so the strongest guarantee is already
standing before the signal arrives.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from types import FrameType
from typing import Dict, Iterator, Optional

from repro.errors import SweepInterrupted

_HANDLED = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def handle_termination() -> Iterator[None]:
    """Convert SIGINT/SIGTERM into :class:`SweepInterrupted`.

    Installs handlers on entry and restores the previous ones on exit.
    Outside the main thread (where ``signal.signal`` is unavailable)
    this is a no-op — the default KeyboardInterrupt behaviour applies.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def raise_interrupt(signum: int, frame: Optional[FrameType]) -> None:
        raise SweepInterrupted(signal.Signals(signum).name)

    previous: Dict[int, object] = {}
    try:
        for sig in _HANDLED:
            previous[sig] = signal.getsignal(sig)
            signal.signal(sig, raise_interrupt)
    except (OSError, ValueError):
        # Exotic embedding (no signal support): run unprotected.
        for sig, old in previous.items():
            signal.signal(sig, old)  # type: ignore[arg-type]
        yield
        return
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)  # type: ignore[arg-type]
