"""Instrumentation for the runtime layer.

:class:`RuntimeStats` is a plain counter/timer bag shared by the
executor, the artifact cache and the simulators a
:class:`~repro.runtime.context.RuntimeContext` is wired into.  It
answers the questions the flows care about: how many full fault
simulations actually ran, how many were served from the cache, how
well the worker pool was utilized, and where the wall-clock time went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator


@dataclass
class RuntimeStats:
    """Counters and timers for one runtime context.

    Attributes
    ----------
    jobs:
        Worker count of the executor the stats are attached to.
    full_simulations:
        Whole-sequence fault simulations actually executed.
    full_sim_hits:
        Whole-sequence fault simulations served from the cache.
    screen_simulations:
        Screening (``detects_any``) simulations actually executed.
    screen_hits:
        Screening verdicts served from the cache.
    cache_misses / cache_stores / cache_discards / cache_evictions:
        Cache bookkeeping: lookups that missed, entries written,
        corrupted or version-mismatched entries dropped, entries
        removed by the LRU size cap.
    tasks_dispatched:
        Work units handed to the executor's worker pool.
    speculative_discards:
        Batched screening verdicts thrown away because an earlier row
        of the batch changed the procedure state (the serial-equivalence
        rule; see :mod:`repro.core.procedure`).
    task_retries:
        Tasks re-dispatched to the pool after a crash, hang or
        corrupted payload.
    task_timeouts:
        Tasks whose worker exceeded the per-task timeout and was
        abandoned with its pool.
    worker_crashes:
        ``BrokenProcessPool`` events (a worker process died).
    pool_rebuilds:
        Worker pools retired and rebuilt after a crash or hang.
    serial_fallback_tasks:
        Tasks replayed serially in the parent process — either after
        exhausting their retries or after the executor degraded.
    corrupt_results:
        Worker payloads that failed shape validation and were
        discarded (then retried).
    executor_degradations:
        Times an executor gave up on its pool entirely and fell back
        to serial execution for the rest of its life.
    chaos_injections:
        Cache entries deterministically vandalized by an active
        :class:`~repro.resilience.chaos.ChaosSpec`.
    journal_records / journal_skips:
        Circuits checkpointed to the resume journal, and circuits
        skipped on ``--resume`` because a checkpoint already existed.
    lint_diagnostics / lint_errors:
        Findings recorded by the context's lint gate (total, and the
        error-severity subset); see
        :meth:`~repro.runtime.context.RuntimeContext.lint_circuit`.
    parallel_wall_s / worker_busy_s:
        Wall-clock seconds spent inside executor fan-outs and the
        summed busy seconds of the workers during them.
    timers:
        Named wall-clock timers (flow stages, etc.).
    """

    jobs: int = 1
    full_simulations: int = 0
    full_sim_hits: int = 0
    screen_simulations: int = 0
    screen_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_discards: int = 0
    cache_evictions: int = 0
    tasks_dispatched: int = 0
    speculative_discards: int = 0
    task_retries: int = 0
    task_timeouts: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallback_tasks: int = 0
    corrupt_results: int = 0
    executor_degradations: int = 0
    chaos_injections: int = 0
    journal_records: int = 0
    journal_skips: int = 0
    lint_diagnostics: int = 0
    lint_errors: int = 0
    parallel_wall_s: float = 0.0
    worker_busy_s: float = 0.0
    timers: Dict[str, float] = field(default_factory=dict)

    # -- derived quantities -------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Total lookups served from the cache."""
        return self.full_sim_hits + self.screen_hits

    @property
    def simulations_executed(self) -> int:
        """Total simulations that actually ran (full + screening)."""
        return self.full_simulations + self.screen_simulations

    @property
    def full_sim_skip_rate(self) -> float:
        """Fraction of full fault simulations the cache avoided."""
        total = self.full_simulations + self.full_sim_hits
        if not total:
            return 0.0
        return self.full_sim_hits / total

    def utilization(self) -> float:
        """Worker utilization across all parallel sections (0..1).

        Busy worker-seconds divided by the capacity of the pool over
        the fanned-out wall time.  1.0 means every worker was busy for
        the whole parallel phase.
        """
        capacity = self.parallel_wall_s * max(self.jobs, 1)
        if capacity <= 0.0:
            return 0.0
        return min(self.worker_busy_s / capacity, 1.0)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter and timer in place, keeping ``jobs``.

        In-place matters: the executor, cache and journal of a
        :class:`~repro.runtime.context.RuntimeContext` all hold a
        reference to *this* object, so replacing it would silently
        detach them.  Resetting between jobs lets one long-lived
        context (and its warm worker pool) serve many flows with
        cleanly separated per-job statistics — see
        :meth:`~repro.runtime.context.RuntimeContext.reset_stats`.
        """
        for f in fields(self):
            if f.name == "jobs":
                continue
            if f.name == "timers":
                self.timers.clear()
            else:
                setattr(self, f.name, type(getattr(self, f.name))())

    # -- recording ----------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of a ``with`` block under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = (
                self.timers.get(name, 0.0) + time.perf_counter() - t0
            )

    def record_fanout(self, wall_s: float, busy_s: float, tasks: int) -> None:
        """Record one executor fan-out."""
        self.parallel_wall_s += wall_s
        self.worker_busy_s += busy_s
        self.tasks_dispatched += tasks

    def snapshot(self) -> Dict[str, float]:
        """The current value of every counter, for span delta accounting.

        Configuration (``jobs``) and the named timers are excluded —
        they are not monotonic work counters, so a delta of them means
        nothing.
        """
        out: Dict[str, float] = {}
        for name, value in vars(self).items():
            if name in ("jobs", "timers"):
                continue
            out[name] = float(value)
        return out

    # -- rendering ----------------------------------------------------------

    def format(self) -> str:
        """Human-readable summary (what ``repro flow --stats`` prints)."""
        lines = [
            "runtime stats",
            f"  workers              {self.jobs}",
            f"  full simulations     {self.full_simulations} run, "
            f"{self.full_sim_hits} from cache "
            f"({100.0 * self.full_sim_skip_rate:.0f}% skipped)",
            f"  screening sims       {self.screen_simulations} run, "
            f"{self.screen_hits} from cache",
            f"  cache                {self.cache_stores} stored, "
            f"{self.cache_misses} misses, {self.cache_discards} discarded, "
            f"{self.cache_evictions} evicted",
            f"  pool                 {self.tasks_dispatched} tasks, "
            f"{100.0 * self.utilization():.0f}% utilization, "
            f"{self.speculative_discards} speculative verdicts discarded",
        ]
        recoveries = (
            self.task_retries
            + self.task_timeouts
            + self.worker_crashes
            + self.pool_rebuilds
            + self.serial_fallback_tasks
            + self.corrupt_results
            + self.executor_degradations
            + self.chaos_injections
        )
        if recoveries:
            lines.append(
                f"  resilience           {self.task_retries} retries, "
                f"{self.task_timeouts} timeouts, "
                f"{self.worker_crashes} crashes, "
                f"{self.pool_rebuilds} pool rebuilds, "
                f"{self.serial_fallback_tasks} serial replays, "
                f"{self.corrupt_results} corrupt payloads"
                + (
                    f", {self.chaos_injections} cache chaos injections"
                    if self.chaos_injections
                    else ""
                )
                + (
                    " (degraded to serial)"
                    if self.executor_degradations
                    else ""
                )
            )
        if self.journal_records or self.journal_skips:
            lines.append(
                f"  checkpoints          {self.journal_records} recorded, "
                f"{self.journal_skips} resumed"
            )
        if self.lint_diagnostics:
            lines.append(
                f"  lint                 {self.lint_diagnostics} "
                f"diagnostics ({self.lint_errors} errors)"
            )
        if self.timers:
            lines.append("  timers")
            for name in sorted(self.timers):
                lines.append(f"    {name:<18} {self.timers[name]:.3f}s")
        return "\n".join(lines)
