"""The :class:`RuntimeContext`: executor + cache + stats as one handle.

Everything runtime-aware in the library accepts an optional
``runtime`` argument.  ``None`` (the default everywhere) means the
historical behaviour: serial execution, no caching, no counters —
results are *identical* either way; the context only changes how fast
they are obtained.

>>> from repro.runtime import RuntimeContext
>>> with RuntimeContext(jobs=4, cache_dir="/tmp/repro-cache",
...                     enable_cache=True) as rt:     # doctest: +SKIP
...     flow = run_full_flow("g1488", runtime=rt)
...     print(rt.stats.format())
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import LintError
from repro.resilience.chaos import ChaosSpec
from repro.resilience.journal import CheckpointJournal
from repro.resilience.policy import RetryPolicy
from repro.runtime.cache import (
    DEFAULT_MAX_BYTES,
    ArtifactCache,
    default_cache_dir,
)
from repro.runtime.executor import make_executor
from repro.runtime.metrics import RuntimeStats
from repro.trace.span import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.netlist import Circuit
    from repro.hw.tpg import TpgDesign
    from repro.lint.core import LintReport

LINT_POLICIES = ("off", "warn", "strict")
"""Accepted values for :class:`RuntimeContext`'s ``lint`` parameter."""


class RuntimeContext:
    """Bundle of executor, artifact cache and stats.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs everything in-process.
        Results are independent of this value by construction.
    cache_dir:
        Cache root.  Implies ``enable_cache=True`` when given.
    enable_cache:
        Turn the artifact cache on (at ``cache_dir`` or the default
        root).  Off by default so library callers opt in explicitly;
        the CLI enables it unless ``--no-cache`` is passed.
    max_cache_bytes:
        LRU size cap for the cache.
    stats:
        An existing stats object to record into (a fresh one is
        created otherwise).
    lint:
        Static-diagnostics policy for artifacts flowing through this
        context: ``"off"`` (default) skips linting entirely,
        ``"warn"`` lints circuits and TPG designs on use and records
        the findings in :attr:`stats`, ``"strict"`` additionally
        raises :class:`~repro.errors.LintError` on any error-severity
        finding — the "fail in one second, not after minutes of fault
        simulation" gate.
    task_timeout:
        Per-task timeout for pool workers (seconds); a hung worker is
        abandoned with its pool and the task retried.  ``None``
        (default) waits forever.
    retries:
        Pool re-dispatch attempts per failed/hung/corrupted task
        before the task is replayed serially.
    backoff_s:
        Base exponential-backoff delay between retry rounds.
    max_pool_rebuilds:
        Pool failures tolerated before the executor degrades to
        serial execution.
    chaos:
        Deterministic fault injection: a
        :class:`~repro.resilience.chaos.ChaosSpec` or its string form
        (``"crash=0.2,hang=0.1,corrupt=0.1,cache=0.3,seed=7"``).
        Injections are recovered from, never change results, and only
        exist to exercise the recovery paths.
    resume:
        Consult the checkpoint journal and let multi-circuit sweeps
        skip circuits whose results are already journaled.  The
        journal is *written* whenever a cache directory is in play
        (every completed flow checkpoints its Table-6 row atomically),
        so an interrupted sweep is resumable even if it was not
        started with ``resume=True``.
    trace:
        Attach a fresh :class:`~repro.trace.span.Tracer` to this
        context.  Everything runtime-aware then attributes its work to
        hierarchical spans and fires structured events (cache traffic,
        executor recovery, checkpoint writes); read the result from
        :attr:`tracer` after the flow and export it with
        :mod:`repro.trace.export`.  Tracing never changes results.
    tracer:
        Use an existing tracer instead of creating one (implies
        tracing; ``trace`` is then ignored).
    sim_backend:
        Default fault-simulation backend for simulators created under
        this context: ``"auto"`` (default), ``"python"`` or
        ``"vector"``.  An explicit ``backend=`` argument on a simulator
        still wins; see :func:`repro.sim.backend.resolve_backend` for
        the full precedence chain.  Both backends produce bit-identical
        results — this knob only selects the implementation.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        enable_cache: bool = False,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        stats: RuntimeStats | None = None,
        lint: str = "off",
        task_timeout: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.1,
        max_pool_rebuilds: int = 3,
        chaos: Union[ChaosSpec, str, None] = None,
        resume: bool = False,
        trace: bool = False,
        tracer: Optional[Tracer] = None,
        sim_backend: str = "auto",
    ) -> None:
        # Validate every knob *before* any worker pool exists, so a
        # configuration error can never leak a ProcessPoolExecutor.
        if lint not in LINT_POLICIES:
            raise LintError(
                f"unknown lint policy {lint!r}; expected one of "
                f"{', '.join(LINT_POLICIES)}"
            )
        from repro.sim.backend import validate_backend

        self.sim_backend = validate_backend(sim_backend)
        if isinstance(chaos, str):
            chaos = ChaosSpec.parse(chaos)
        self.chaos = chaos
        self.policy = RetryPolicy(
            task_timeout=task_timeout,
            retries=retries,
            backoff_s=backoff_s,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        self.lint_policy = lint
        self.resume = resume
        self.stats = stats if stats is not None else RuntimeStats()
        self.tracer: Optional[Tracer] = tracer
        if trace and self.tracer is None:
            self.tracer = Tracer(stats=self.stats)
        self.executor = make_executor(
            jobs, self.stats, policy=self.policy, chaos=chaos,
            tracer=self.tracer,
        )
        self.stats.jobs = self.executor.jobs
        try:
            self.cache: Optional[ArtifactCache] = None
            if enable_cache or cache_dir is not None:
                self.cache = ArtifactCache(
                    cache_dir,
                    max_bytes=max_cache_bytes,
                    stats=self.stats,
                    chaos=chaos,
                    tracer=self.tracer,
                )
            self.journal: Optional[CheckpointJournal] = None
            if self.cache is not None or resume:
                root = (
                    self.cache.root
                    if self.cache is not None
                    else (
                        Path(cache_dir)
                        if cache_dir is not None
                        else default_cache_dir()
                    )
                )
                self.journal = CheckpointJournal(
                    root / "checkpoints" / "journal.json",
                    stats=self.stats,
                    tracer=self.tracer,
                )
        except BaseException:
            self.executor.close()
            raise

    # -- lint gate ----------------------------------------------------------

    def lint_circuit(
        self, circuit: "Circuit", artifact: Optional[str] = None
    ) -> Optional["LintReport"]:
        """Lint ``circuit`` under this context's policy.

        Returns the report (None when the policy is ``off``), records
        its counts into :attr:`stats`, and in ``strict`` mode raises
        :class:`LintError` on any error-severity finding.
        """
        if self.lint_policy == "off":
            return None
        from repro.lint.circuit_rules import lint_circuit as run_lint

        return self._gate(run_lint(circuit, artifact))

    def lint_design(
        self, design: "TpgDesign", artifact: Optional[str] = None
    ) -> Optional["LintReport"]:
        """Lint a TPG design under this context's policy (see
        :meth:`lint_circuit`)."""
        if self.lint_policy == "off":
            return None
        from repro.lint.tpg_rules import lint_design as run_lint

        return self._gate(run_lint(design, artifact))

    def _gate(self, report: "LintReport") -> "LintReport":
        self.stats.lint_diagnostics += len(report)
        self.stats.lint_errors += report.error_count
        if self.lint_policy == "strict" and report.error_count:
            from repro.lint.core import Severity

            details = "; ".join(
                d.format() for d in report.at_least(Severity.ERROR)
            )
            raise LintError(
                f"strict lint gate: {report.error_count} error-severity "
                f"finding(s): {details}"
            )
        return report

    # -- reuse across flows -------------------------------------------------

    def reset_stats(self) -> RuntimeStats:
        """Zero the counters in place so the *same* context (and its
        warm worker pool) can serve another flow with separated stats.

        The executor, cache and journal all keep a reference to
        :attr:`stats`, so the reset happens in place rather than by
        replacement; :attr:`stats` stays the same object before and
        after.  Results are unaffected — only the accounting restarts.
        Returns :attr:`stats` for convenience.
        """
        self.stats.reset()
        self.stats.jobs = self.executor.jobs
        return self.stats

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach ``tracer`` (or detach with ``None``) on a live context.

        The executor, cache and journal consult :attr:`tracer` at use
        time, so swapping it between flows gives each flow its own
        trace without rebuilding the worker pool — the
        :mod:`repro.serve` scheduler uses this to record one trace per
        campaign job on a shared context.
        """
        self.tracer = tracer
        self.executor.tracer = tracer
        if self.cache is not None:
            self.cache.tracer = tracer
        if self.journal is not None:
            self.journal.tracer = tracer

    @property
    def jobs(self) -> int:
        """Worker count of the underlying executor."""
        return self.executor.jobs

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "RuntimeContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"RuntimeContext(jobs={self.jobs}, cache={cache}, "
            f"lint={self.lint_policy}, retries={self.policy.retries}, "
            f"resume={self.resume})"
        )
