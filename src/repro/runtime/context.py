"""The :class:`RuntimeContext`: executor + cache + stats as one handle.

Everything runtime-aware in the library accepts an optional
``runtime`` argument.  ``None`` (the default everywhere) means the
historical behaviour: serial execution, no caching, no counters —
results are *identical* either way; the context only changes how fast
they are obtained.

>>> from repro.runtime import RuntimeContext
>>> with RuntimeContext(jobs=4, cache_dir="/tmp/repro-cache",
...                     enable_cache=True) as rt:     # doctest: +SKIP
...     flow = run_full_flow("g1488", runtime=rt)
...     print(rt.stats.format())
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import LintError
from repro.runtime.cache import DEFAULT_MAX_BYTES, ArtifactCache
from repro.runtime.executor import make_executor
from repro.runtime.metrics import RuntimeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.circuit.netlist import Circuit
    from repro.hw.tpg import TpgDesign
    from repro.lint.core import LintReport

LINT_POLICIES = ("off", "warn", "strict")
"""Accepted values for :class:`RuntimeContext`'s ``lint`` parameter."""


class RuntimeContext:
    """Bundle of executor, artifact cache and stats.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs everything in-process.
        Results are independent of this value by construction.
    cache_dir:
        Cache root.  Implies ``enable_cache=True`` when given.
    enable_cache:
        Turn the artifact cache on (at ``cache_dir`` or the default
        root).  Off by default so library callers opt in explicitly;
        the CLI enables it unless ``--no-cache`` is passed.
    max_cache_bytes:
        LRU size cap for the cache.
    stats:
        An existing stats object to record into (a fresh one is
        created otherwise).
    lint:
        Static-diagnostics policy for artifacts flowing through this
        context: ``"off"`` (default) skips linting entirely,
        ``"warn"`` lints circuits and TPG designs on use and records
        the findings in :attr:`stats`, ``"strict"`` additionally
        raises :class:`~repro.errors.LintError` on any error-severity
        finding — the "fail in one second, not after minutes of fault
        simulation" gate.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        enable_cache: bool = False,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        stats: RuntimeStats | None = None,
        lint: str = "off",
    ) -> None:
        if lint not in LINT_POLICIES:
            raise LintError(
                f"unknown lint policy {lint!r}; expected one of "
                f"{', '.join(LINT_POLICIES)}"
            )
        self.lint_policy = lint
        self.stats = stats if stats is not None else RuntimeStats()
        self.executor = make_executor(jobs, self.stats)
        self.stats.jobs = self.executor.jobs
        self.cache: Optional[ArtifactCache] = None
        if enable_cache or cache_dir is not None:
            self.cache = ArtifactCache(
                cache_dir, max_bytes=max_cache_bytes, stats=self.stats
            )

    # -- lint gate ----------------------------------------------------------

    def lint_circuit(
        self, circuit: "Circuit", artifact: Optional[str] = None
    ) -> Optional["LintReport"]:
        """Lint ``circuit`` under this context's policy.

        Returns the report (None when the policy is ``off``), records
        its counts into :attr:`stats`, and in ``strict`` mode raises
        :class:`LintError` on any error-severity finding.
        """
        if self.lint_policy == "off":
            return None
        from repro.lint.circuit_rules import lint_circuit as run_lint

        return self._gate(run_lint(circuit, artifact))

    def lint_design(
        self, design: "TpgDesign", artifact: Optional[str] = None
    ) -> Optional["LintReport"]:
        """Lint a TPG design under this context's policy (see
        :meth:`lint_circuit`)."""
        if self.lint_policy == "off":
            return None
        from repro.lint.tpg_rules import lint_design as run_lint

        return self._gate(run_lint(design, artifact))

    def _gate(self, report: "LintReport") -> "LintReport":
        self.stats.lint_diagnostics += len(report)
        self.stats.lint_errors += report.error_count
        if self.lint_policy == "strict" and report.error_count:
            from repro.lint.core import Severity

            details = "; ".join(
                d.format() for d in report.at_least(Severity.ERROR)
            )
            raise LintError(
                f"strict lint gate: {report.error_count} error-severity "
                f"finding(s): {details}"
            )
        return report

    @property
    def jobs(self) -> int:
        """Worker count of the underlying executor."""
        return self.executor.jobs

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "RuntimeContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"RuntimeContext(jobs={self.jobs}, cache={cache}, "
            f"lint={self.lint_policy})"
        )
