"""The :class:`RuntimeContext`: executor + cache + stats as one handle.

Everything runtime-aware in the library accepts an optional
``runtime`` argument.  ``None`` (the default everywhere) means the
historical behaviour: serial execution, no caching, no counters —
results are *identical* either way; the context only changes how fast
they are obtained.

>>> from repro.runtime import RuntimeContext
>>> with RuntimeContext(jobs=4, cache_dir="/tmp/repro-cache",
...                     enable_cache=True) as rt:     # doctest: +SKIP
...     flow = run_full_flow("g1488", runtime=rt)
...     print(rt.stats.format())
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.runtime.cache import DEFAULT_MAX_BYTES, ArtifactCache
from repro.runtime.executor import make_executor
from repro.runtime.metrics import RuntimeStats


class RuntimeContext:
    """Bundle of executor, artifact cache and stats.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs everything in-process.
        Results are independent of this value by construction.
    cache_dir:
        Cache root.  Implies ``enable_cache=True`` when given.
    enable_cache:
        Turn the artifact cache on (at ``cache_dir`` or the default
        root).  Off by default so library callers opt in explicitly;
        the CLI enables it unless ``--no-cache`` is passed.
    max_cache_bytes:
        LRU size cap for the cache.
    stats:
        An existing stats object to record into (a fresh one is
        created otherwise).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        enable_cache: bool = False,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        stats: RuntimeStats | None = None,
    ) -> None:
        self.stats = stats if stats is not None else RuntimeStats()
        self.executor = make_executor(jobs, self.stats)
        self.stats.jobs = self.executor.jobs
        self.cache: Optional[ArtifactCache] = None
        if enable_cache or cache_dir is not None:
            self.cache = ArtifactCache(
                cache_dir, max_bytes=max_cache_bytes, stats=self.stats
            )

    @property
    def jobs(self) -> int:
        """Worker count of the underlying executor."""
        return self.executor.jobs

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.executor.close()

    def __enter__(self) -> "RuntimeContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return f"RuntimeContext(jobs={self.jobs}, cache={cache})"
