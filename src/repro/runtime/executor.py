"""Executor layer: serial and process-pool execution of simulation work.

Two work shapes cover everything the flows fan out:

* **Fault-group sharding** — a whole-sequence fault simulation splits
  its fault list into the simulator's 63-fault groups; groups are
  independent, so they run on separate workers and their per-group
  :class:`~repro.sim.faultsim.FaultSimResult`\\ s merge into exactly the
  serial result (detection times are per-fault, groups are disjoint).
* **Screening batches** — the Section-4.2 procedure screens many
  candidate weighted sequences against one fault sample; each screen is
  an independent ``detects_any`` run.

Workers receive the circuit as canonical ``.bench`` text (cheap, and
round-trips to an identical circuit) and memoize the compiled simulator
per circuit, so repeated calls on the same circuit pay compilation once
per worker process.  Results are returned in task order — parallel
execution is *deterministic by construction*; worker count never
changes any result.

Fault tolerance
---------------
:class:`ProcessExecutor` survives the failure modes a long sweep
actually meets, under the knobs of a
:class:`~repro.resilience.policy.RetryPolicy`:

* a **crashed worker** (``BrokenProcessPool``) retires the pool,
  rebuilds it, and re-dispatches the unfinished tasks;
* a **hung worker** (no result within ``task_timeout``) is abandoned
  with its pool and the victim task retried;
* a **corrupted payload** (a result that fails shape validation, e.g.
  injected by the chaos harness) is discarded and the task retried;
* a task that keeps failing past ``retries`` attempts is **replayed
  serially** in the parent process — the same worker function on the
  same payload, so the result is identical by construction;
* after ``max_pool_rebuilds`` pool failures the executor **degrades to
  serial execution** for all remaining work.

Every path re-runs pure functions of immutable task payloads, so the
bit-identical-results-for-any-worker-count invariant survives any
combination of failures.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import Future
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.resilience.chaos import ChaosSpec, chaos_call, task_digest
from repro.resilience.policy import RetryPolicy
from repro.runtime.metrics import RuntimeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.span import Tracer

#: Per-worker-process memo of compiled fault simulators, keyed by a
#: digest of the circuit's ``.bench`` text.
_WORKER_SIMS: Dict[str, object] = {}

#: A task function maps one payload to ``(result, busy_seconds)``.
TaskFn = Callable[[Any], Tuple[Any, float]]

#: A validator decides whether a worker's payload is structurally sound.
Validator = Callable[[Any], bool]

_UNSET = object()


def _worker_sim(bench_text: str, backend: Optional[str] = None):
    """The (memoized) fault simulator for ``bench_text`` in this process."""
    key = hashlib.sha1(bench_text.encode("utf-8")).hexdigest()
    if backend is not None:
        key = f"{key}:{backend}"
    sim = _WORKER_SIMS.get(key)
    if sim is None:
        # Imported lazily: workers under the ``spawn`` start method
        # import this module before the package is fully initialized.
        from repro.circuit.bench import parse_bench_text
        from repro.sim.faultsim import FaultSimulator

        sim = FaultSimulator(
            parse_bench_text(bench_text, name="worker"), backend=backend
        )
        _WORKER_SIMS[key] = sim
    return sim


def _run_group_task(task) -> Tuple[object, float]:
    """Worker: whole-sequence fault simulation of one fault group.

    Tasks are 5-tuples, optionally extended with a sixth element naming
    the sim backend the dispatching simulator resolved to.
    """
    bench_text, stimulus, faults, record_lines, stop = task[:5]
    backend = task[5] if len(task) > 5 else None
    t0 = time.perf_counter()
    sim = _worker_sim(bench_text, backend)
    result = sim.run(
        stimulus,
        faults,
        record_lines=record_lines,
        stop_when_all_detected=stop,
    )
    return result, time.perf_counter() - t0


def _screen_task(task) -> Tuple[bool, float]:
    """Worker: one screening (``detects_any``) run."""
    bench_text, stimulus, sample = task[:3]
    backend = task[3] if len(task) > 3 else None
    t0 = time.perf_counter()
    sim = _worker_sim(bench_text, backend)
    return sim.detects_any(stimulus, sample), time.perf_counter() - t0


def _valid_group_result(result: Any) -> bool:
    """A fault-group payload must look like a ``FaultSimResult``."""
    return (
        hasattr(result, "detection_time")
        and hasattr(result, "undetected")
        and hasattr(result, "n_faults")
    )


def _valid_screen_result(result: Any) -> bool:
    """A screening payload must be a plain verdict."""
    return isinstance(result, bool)


class SerialExecutor:
    """In-process executor — the jobs=1 reference implementation.

    Runs every task inline via the same worker functions the pool uses,
    so the two paths cannot drift apart.
    """

    jobs = 1

    def __init__(
        self,
        stats: RuntimeStats | None = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.stats = stats if stats is not None else RuntimeStats()
        self.tracer = tracer

    def _add_task_span(self, label: str, task: Any, busy_s: float) -> None:
        if self.tracer is not None:
            self.tracer.add_task_span(label, task_digest(task), busy_s)

    def run_fault_groups(
        self,
        bench_text: str,
        stimulus,
        groups: Sequence[Sequence],
        record_lines: bool,
        stop_when_all_detected: bool,
        backend: Optional[str] = None,
    ) -> List[object]:
        """Simulate each fault group; per-group results in group order."""
        out = []
        for group in groups:
            task = (
                bench_text, stimulus, group, record_lines, stop_when_all_detected
            )
            if backend is not None:
                task = task + (backend,)
            result, elapsed = _run_group_task(task)
            self._add_task_span("fault_group", task, elapsed)
            out.append(result)
        return out

    def run_group_tasks(self, tasks: Sequence) -> List[object]:
        """Simulate pre-built fault-group tasks; results in task order.

        Unlike :meth:`run_fault_groups`, tasks may span *different*
        stimuli (the optimizer evaluates many candidate sequences in
        one fan-out).  Each task is the usual 5-tuple
        ``(bench_text, stimulus, group, record_lines, stop)``.
        """
        out = []
        for task in tasks:
            result, elapsed = _run_group_task(task)
            self._add_task_span("fault_group", task, elapsed)
            out.append(result)
        return out

    def screen_batch(
        self,
        bench_text: str,
        stimuli: Sequence,
        sample: Sequence,
        backend: Optional[str] = None,
    ) -> List[bool]:
        """Screen each stimulus against ``sample``; verdicts in order."""
        out = []
        for stimulus in stimuli:
            task = (bench_text, stimulus, sample)
            if backend is not None:
                task = task + (backend,)
            verdict, elapsed = _screen_task(task)
            self._add_task_span("screen", task, elapsed)
            out.append(verdict)
        return out

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ProcessExecutor:
    """``concurrent.futures.ProcessPoolExecutor``-backed executor.

    The pool is created lazily on first use and reused across calls;
    workers keep their compiled circuits between tasks.  Results are
    collected in task order, so merged results are identical to the
    serial executor's.

    ``policy`` governs recovery from crashed/hung workers and
    corrupted payloads (see the module docstring); ``chaos`` wires in
    the deterministic fault-injection harness — pool dispatches only,
    never serial replays, so exhausted retries always converge on the
    correct result.
    """

    def __init__(
        self,
        jobs: int,
        stats: RuntimeStats | None = None,
        policy: RetryPolicy | None = None,
        chaos: ChaosSpec | None = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if jobs < 2:
            raise ValueError(f"ProcessExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.stats = stats if stats is not None else RuntimeStats()
        self.policy = policy if policy is not None else RetryPolicy()
        self.chaos = chaos
        self.tracer = tracer
        self._pool: Optional[_ProcessPool] = None
        self._rebuilds = 0
        self._degraded = False

    def _event(self, kind: str, **attrs: object) -> None:
        if self.tracer is not None:
            self.tracer.event(kind, **attrs)

    @property
    def degraded(self) -> bool:
        """True once repeated pool failures forced serial execution."""
        return self._degraded

    def _pool_instance(self) -> _ProcessPool:
        if self._pool is None:
            self._pool = _ProcessPool(max_workers=self.jobs)
        return self._pool

    def _submit(
        self, pool: _ProcessPool, fn: TaskFn, task: Any, attempt: int
    ) -> "Future[Tuple[Any, float]]":
        if self.chaos is not None and self.chaos.affects_workers:
            return pool.submit(chaos_call, (self.chaos, fn, attempt, task))
        return pool.submit(fn, task)

    def _retire_pool(self) -> None:
        """Throw the current pool away; degrade after repeated failures."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self.stats.pool_rebuilds += 1
        self._rebuilds += 1
        self._event("pool_rebuild", rebuilds=self._rebuilds)
        if (
            self._rebuilds >= self.policy.max_pool_rebuilds
            and not self._degraded
        ):
            self._degraded = True
            self.stats.executor_degradations += 1
            self._event("executor_degraded", rebuilds=self._rebuilds)

    # -- the fault-tolerant fan-out -----------------------------------------

    def _map(
        self, fn: TaskFn, tasks: List[Any], validate: Validator, label: str
    ) -> List[Any]:
        """Run every task; results in task order, whatever fails."""
        results: List[Any] = [_UNSET] * len(tasks)
        busy = [0.0] * len(tasks)
        t0 = time.perf_counter()
        try:
            self._run_all(fn, tasks, results, busy, validate)
        finally:
            # Fan-out accounting must survive task exceptions — a
            # failed batch still dispatched work and burnt wall time.
            self.stats.record_fanout(
                time.perf_counter() - t0, sum(busy), len(tasks)
            )
            # Task spans are merged in *task order* with stable keys,
            # so the trace is independent of scheduling and PIDs.
            if self.tracer is not None:
                for task, task_busy in zip(tasks, busy):
                    self.tracer.add_task_span(label, task_digest(task), task_busy)
        return results

    def _run_all(
        self,
        fn: TaskFn,
        tasks: List[Any],
        results: List[Any],
        busy: List[float],
        validate: Validator,
    ) -> None:
        pending = list(range(len(tasks)))
        attempts = [0] * len(tasks)
        while pending:
            if self._degraded:
                for i in pending:
                    self._run_inline(fn, tasks[i], results, busy, i)
                return
            blamed, innocent = self._pool_round(
                fn, tasks, results, busy, validate, pending, attempts
            )
            pending = self._settle(
                fn, tasks, results, busy, blamed, innocent, attempts
            )

    def _pool_round(
        self,
        fn: TaskFn,
        tasks: List[Any],
        results: List[Any],
        busy: List[float],
        validate: Validator,
        pending: List[int],
        attempts: List[int],
    ) -> Tuple[List[int], List[int]]:
        """One dispatch round.

        Returns ``(blamed, innocent)``: tasks whose failure consumes a
        retry attempt, and tasks merely displaced by someone else's
        failure (resubmitted free of charge).
        """
        try:
            pool = self._pool_instance()
            futures = [
                (i, self._submit(pool, fn, tasks[i], attempts[i]))
                for i in pending
            ]
        except BrokenProcessPool:
            self.stats.worker_crashes += 1
            self._event("worker_crash", at="dispatch")
            self._retire_pool()
            return list(pending), []

        blamed: List[int] = []
        innocent: List[int] = []
        broken = False
        for i, fut in futures:
            if broken:
                # The pool is gone; harvest whatever already finished
                # and resubmit the rest without blame.
                if fut.cancelled():
                    innocent.append(i)
                elif fut.done():
                    try:
                        result, elapsed = fut.result()
                    except BaseException:
                        blamed.append(i)
                        continue
                    self._accept(
                        result, elapsed, results, busy, validate, i, blamed
                    )
                else:
                    fut.cancel()
                    innocent.append(i)
                continue
            try:
                result, elapsed = fut.result(
                    timeout=self.policy.task_timeout
                )
            except _FuturesTimeout:
                # Hung worker: abandon the pool (the only way to
                # reclaim the process) and retry the victim.
                self.stats.task_timeouts += 1
                self._event("task_timeout", task=task_digest(tasks[i]))
                blamed.append(i)
                broken = True
                self._retire_pool()
                continue
            except BrokenProcessPool:
                # A worker died; every unfinished task is suspect.
                self.stats.worker_crashes += 1
                self._event("worker_crash", task=task_digest(tasks[i]))
                blamed.append(i)
                broken = True
                self._retire_pool()
                continue
            # Any other exception is a deterministic error raised by
            # the task itself (bad circuit, invalid fault, ...) —
            # retrying cannot change it, so it propagates.  The
            # enclosing finally still records the fan-out.
            self._accept(result, elapsed, results, busy, validate, i, blamed)
        return blamed, innocent

    def _accept(
        self,
        result: Any,
        elapsed: float,
        results: List[Any],
        busy: List[float],
        validate: Validator,
        i: int,
        blamed: List[int],
    ) -> None:
        if validate(result):
            results[i] = result
            busy[i] = elapsed
        else:
            self.stats.corrupt_results += 1
            self._event("corrupt_result", index=i)
            blamed.append(i)

    def _settle(
        self,
        fn: TaskFn,
        tasks: List[Any],
        results: List[Any],
        busy: List[float],
        blamed: List[int],
        innocent: List[int],
        attempts: List[int],
    ) -> List[int]:
        """Charge retry attempts; replay exhausted tasks serially."""
        still = list(innocent)
        worst = 0
        for i in blamed:
            attempts[i] += 1
            if attempts[i] > self.policy.retries:
                self._run_inline(fn, tasks[i], results, busy, i)
            else:
                self.stats.task_retries += 1
                self._event(
                    "task_retry",
                    task=task_digest(tasks[i]),
                    attempt=attempts[i],
                )
                still.append(i)
                worst = max(worst, attempts[i])
        if still and worst:
            delay = self.policy.backoff(worst)
            if delay > 0:
                time.sleep(delay)
        return sorted(still)

    def _run_inline(
        self,
        fn: TaskFn,
        task: Any,
        results: List[Any],
        busy: List[float],
        i: int,
    ) -> None:
        """Serial replay: the same pure function on the same payload —
        the result is what the pool would have produced."""
        self._event("serial_replay", task=task_digest(task))
        result, elapsed = fn(task)
        results[i] = result
        busy[i] = elapsed
        self.stats.serial_fallback_tasks += 1

    # -- the work shapes ----------------------------------------------------

    def run_fault_groups(
        self,
        bench_text: str,
        stimulus,
        groups: Sequence[Sequence],
        record_lines: bool,
        stop_when_all_detected: bool,
        backend: Optional[str] = None,
    ) -> List[object]:
        """Simulate fault groups on the pool; results in group order."""
        extra = () if backend is None else (backend,)
        tasks = [
            (bench_text, stimulus, group, record_lines, stop_when_all_detected)
            + extra
            for group in groups
        ]
        return self._map(
            _run_group_task, tasks, _valid_group_result, "fault_group"
        )

    def run_group_tasks(self, tasks: Sequence) -> List[object]:
        """Simulate pre-built fault-group tasks on the pool.

        Results come back in task order; see
        :meth:`SerialExecutor.run_group_tasks` for the task shape.
        """
        return self._map(
            _run_group_task, list(tasks), _valid_group_result, "fault_group"
        )

    def screen_batch(
        self,
        bench_text: str,
        stimuli: Sequence,
        sample: Sequence,
        backend: Optional[str] = None,
    ) -> List[bool]:
        """Screen stimuli on the pool; verdicts in task order."""
        extra = () if backend is None else (backend,)
        tasks = [
            (bench_text, stimulus, sample) + extra for stimulus in stimuli
        ]
        return self._map(_screen_task, tasks, _valid_screen_result, "screen")

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_executor(
    jobs: int,
    stats: RuntimeStats | None = None,
    policy: RetryPolicy | None = None,
    chaos: ChaosSpec | None = None,
    tracer: Optional["Tracer"] = None,
):
    """A :class:`SerialExecutor` for ``jobs <= 1``, else a
    :class:`ProcessExecutor` under ``policy`` (and, for tests of the
    recovery paths, ``chaos``)."""
    if jobs <= 1:
        return SerialExecutor(stats, tracer=tracer)
    return ProcessExecutor(jobs, stats, policy=policy, chaos=chaos, tracer=tracer)
