"""Executor layer: serial and process-pool execution of simulation work.

Two work shapes cover everything the flows fan out:

* **Fault-group sharding** — a whole-sequence fault simulation splits
  its fault list into the simulator's 63-fault groups; groups are
  independent, so they run on separate workers and their per-group
  :class:`~repro.sim.faultsim.FaultSimResult`\\ s merge into exactly the
  serial result (detection times are per-fault, groups are disjoint).
* **Screening batches** — the Section-4.2 procedure screens many
  candidate weighted sequences against one fault sample; each screen is
  an independent ``detects_any`` run.

Workers receive the circuit as canonical ``.bench`` text (cheap, and
round-trips to an identical circuit) and memoize the compiled simulator
per circuit, so repeated calls on the same circuit pay compilation once
per worker process.  Results are returned in task order — parallel
execution is *deterministic by construction*; worker count never
changes any result.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.metrics import RuntimeStats

#: Per-worker-process memo of compiled fault simulators, keyed by a
#: digest of the circuit's ``.bench`` text.
_WORKER_SIMS: Dict[str, object] = {}


def _worker_sim(bench_text: str):
    """The (memoized) fault simulator for ``bench_text`` in this process."""
    key = hashlib.sha1(bench_text.encode("utf-8")).hexdigest()
    sim = _WORKER_SIMS.get(key)
    if sim is None:
        # Imported lazily: workers under the ``spawn`` start method
        # import this module before the package is fully initialized.
        from repro.circuit.bench import parse_bench_text
        from repro.sim.faultsim import FaultSimulator

        sim = FaultSimulator(parse_bench_text(bench_text, name="worker"))
        _WORKER_SIMS[key] = sim
    return sim


def _run_group_task(task) -> Tuple[object, float]:
    """Worker: whole-sequence fault simulation of one fault group."""
    bench_text, stimulus, faults, record_lines, stop = task
    t0 = time.perf_counter()
    sim = _worker_sim(bench_text)
    result = sim.run(
        stimulus,
        faults,
        record_lines=record_lines,
        stop_when_all_detected=stop,
    )
    return result, time.perf_counter() - t0


def _screen_task(task) -> Tuple[bool, float]:
    """Worker: one screening (``detects_any``) run."""
    bench_text, stimulus, sample = task
    t0 = time.perf_counter()
    sim = _worker_sim(bench_text)
    return sim.detects_any(stimulus, sample), time.perf_counter() - t0


class SerialExecutor:
    """In-process executor — the jobs=1 reference implementation.

    Runs every task inline via the same worker functions the pool uses,
    so the two paths cannot drift apart.
    """

    jobs = 1

    def __init__(self, stats: RuntimeStats | None = None) -> None:
        self.stats = stats if stats is not None else RuntimeStats()

    def run_fault_groups(
        self,
        bench_text: str,
        stimulus,
        groups: Sequence[Sequence],
        record_lines: bool,
        stop_when_all_detected: bool,
    ) -> List[object]:
        """Simulate each fault group; per-group results in group order."""
        out = []
        for group in groups:
            result, _ = _run_group_task(
                (bench_text, stimulus, group, record_lines, stop_when_all_detected)
            )
            out.append(result)
        return out

    def screen_batch(
        self, bench_text: str, stimuli: Sequence, sample: Sequence
    ) -> List[bool]:
        """Screen each stimulus against ``sample``; verdicts in order."""
        return [
            _screen_task((bench_text, stimulus, sample))[0]
            for stimulus in stimuli
        ]

    def close(self) -> None:
        """Nothing to release."""


class ProcessExecutor:
    """``concurrent.futures.ProcessPoolExecutor``-backed executor.

    The pool is created lazily on first use and reused across calls;
    workers keep their compiled circuits between tasks.  ``map``
    preserves task order, so merged results are identical to the
    serial executor's.
    """

    def __init__(self, jobs: int, stats: RuntimeStats | None = None) -> None:
        if jobs < 2:
            raise ValueError(f"ProcessExecutor needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.stats = stats if stats is not None else RuntimeStats()
        self._pool: Optional[_ProcessPool] = None

    def _pool_instance(self) -> _ProcessPool:
        if self._pool is None:
            self._pool = _ProcessPool(max_workers=self.jobs)
        return self._pool

    def _map(self, fn, tasks: list) -> list:
        t0 = time.perf_counter()
        outcomes = list(self._pool_instance().map(fn, tasks))
        wall = time.perf_counter() - t0
        busy = sum(elapsed for _, elapsed in outcomes)
        self.stats.record_fanout(wall, busy, len(tasks))
        return [result for result, _ in outcomes]

    def run_fault_groups(
        self,
        bench_text: str,
        stimulus,
        groups: Sequence[Sequence],
        record_lines: bool,
        stop_when_all_detected: bool,
    ) -> List[object]:
        """Simulate fault groups on the pool; results in group order."""
        tasks = [
            (bench_text, stimulus, group, record_lines, stop_when_all_detected)
            for group in groups
        ]
        return self._map(_run_group_task, tasks)

    def screen_batch(
        self, bench_text: str, stimuli: Sequence, sample: Sequence
    ) -> List[bool]:
        """Screen stimuli on the pool; verdicts in task order."""
        tasks = [(bench_text, stimulus, sample) for stimulus in stimuli]
        return self._map(_screen_task, tasks)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(jobs: int, stats: RuntimeStats | None = None):
    """A :class:`SerialExecutor` for ``jobs <= 1``, else a
    :class:`ProcessExecutor`."""
    if jobs <= 1:
        return SerialExecutor(stats)
    return ProcessExecutor(jobs, stats)
