"""Content-addressed artifact cache.

One JSON file per artifact under a cache root (default
``~/.cache/repro``, overridable via ``REPRO_CACHE_DIR`` or the CLI's
``--cache-dir``).  The design rules:

* **Versioned, never trusted.**  Every entry records the cache format
  version and its own key; a corrupted, unreadable or
  version-mismatched entry is deleted — with a
  :class:`CacheIntegrityWarning` — and reported as a miss; the caller
  re-simulates.  A wiped cache directory is an ordinary miss.
* **Atomic writes.**  Entries are written to a temporary file in the
  same directory and ``os.replace``-d into place, so a crashed or
  concurrent writer can never leave a half-written entry behind under
  the final name.
* **LRU size cap.**  Reads refresh an entry's mtime; when the cache
  grows past ``max_bytes`` after a write, least-recently-used entries
  are evicted until it fits.
* **Chaos-testable.**  An optional
  :class:`~repro.resilience.chaos.ChaosSpec` deterministically
  truncates entries right after they are written, so the
  discard-and-recompute path is exercised by tests instead of trusted
  on faith.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.resilience.chaos import ChaosSpec
from repro.runtime.keys import CACHE_FORMAT
from repro.runtime.metrics import RuntimeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.span import Tracer

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
"""Default cache size cap (256 MiB)."""

_SUFFIX = ".json"


class CacheIntegrityWarning(UserWarning):
    """A cache entry was corrupt/stale and has been discarded; the
    artifact will be recomputed."""


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    # Cache *location* never affects results.
    env = os.environ.get("REPRO_CACHE_DIR")  # lint: ignore[D104]
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Persistent key → JSON-payload store with LRU eviction.

    Parameters
    ----------
    root:
        Cache directory (created on first use); defaults to
        :func:`default_cache_dir`.
    max_bytes:
        Size cap enforced after each write.
    stats:
        Counters to report stores/discards/evictions into.
    chaos:
        Optional fault-injection spec; when its ``cache`` rate is
        non-zero, freshly written entries are deterministically
        truncated (seeded on the entry key) to exercise the
        discard-and-recompute path.
    tracer:
        Optional :class:`~repro.trace.span.Tracer`; cache stores,
        discards, evictions and chaos injections then fire runtime
        trace events.  (Hit/miss events are fired by the simulator
        callers, which know what a lookup *means*.)
    """

    def __init__(
        self,
        root: str | Path | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        stats: RuntimeStats | None = None,
        chaos: ChaosSpec | None = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes
        self.stats = stats if stats is not None else RuntimeStats()
        self.chaos = chaos
        self.tracer = tracer

    def _event(self, kind: str, **attrs: object) -> None:
        if self.tracer is not None:
            self.tracer.event(kind, **attrs)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    # -- lookup -------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or None.

        Any defect — unreadable file, invalid JSON, wrong format
        version, key mismatch, missing payload — deletes the entry and
        returns None.  A missing file (e.g. a cache dir wiped mid-run)
        is an ordinary, silent miss.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path, "unreadable or not valid JSON")
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("key") != key
            or not isinstance(entry.get("payload"), dict)
        ):
            self._discard(path, "wrong format version or mismatched key")
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry["payload"]

    # -- store --------------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` under ``key`` (atomic); then enforce the cap."""
        path = self._path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        body = json.dumps(
            {"format": CACHE_FORMAT, "key": key, "payload": payload}
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(body)
            os.replace(tmp, path)
        except OSError:
            # An unusable cache root (e.g. --cache-dir pointing at a
            # file) or a failed write is not an error; the result is
            # still in hand, the store is just skipped.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self.stats.cache_stores += 1
        self._event("cache_store", key=key)
        self._vandalize(path, key)
        self._enforce_cap()

    # -- chaos --------------------------------------------------------------

    def _vandalize(self, path: Path, key: str) -> None:
        """Deterministically truncate the entry we just wrote (chaos
        harness only — exercises the discard-and-recompute path)."""
        if self.chaos is None or not self.chaos.decide("cache", key):
            return
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(len(data) // 2, 1)])
        except OSError:
            return
        self.stats.chaos_injections += 1
        self._event("cache_chaos", key=key)

    # -- maintenance --------------------------------------------------------

    def _discard(self, path: Path, reason: str) -> None:
        warnings.warn(
            f"discarding corrupt cache entry {path.name} ({reason}); "
            "the artifact will be recomputed",
            CacheIntegrityWarning,
            stacklevel=3,
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:
            return
        self.stats.cache_discards += 1
        self._event("cache_discard", entry=path.name, reason=reason)

    def _enforce_cap(self) -> None:
        # Several processes may share one cache root (``--cache-dir``),
        # so any entry listed here can vanish at any moment — evicted
        # by a sibling's cap enforcement or discarded as corrupt.  A
        # missing file is therefore tolerated *per entry* (it already
        # stopped occupying space, which is all the cap cares about);
        # one racing unlink must not abort the whole enforcement pass.
        entries = []
        try:
            paths = list(self.root.glob(f"*{_SUFFIX}"))
        except OSError:
            return
        for p in paths:
            try:
                st = p.stat()
            except OSError:
                continue  # vanished under a concurrent writer
            entries.append((st.st_mtime, st.st_size, p))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):  # oldest mtime first
            try:
                existed = path.exists()
                path.unlink(missing_ok=True)
            except OSError:
                continue
            if existed:
                self.stats.cache_evictions += 1
                self._event("cache_evict", entry=path.name)
            total -= size
            if total <= self.max_bytes:
                break

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob(f"*{_SUFFIX}"):
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{_SUFFIX}"))
