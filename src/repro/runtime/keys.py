"""Stable content-addressed keys for simulation artifacts.

A cached artifact is only valid for the exact ``(circuit, fault set,
stimulus, configuration)`` it was computed from, so each of the four is
reduced to a stable fingerprint and the cache key is a hash over all of
them plus :data:`CACHE_FORMAT` (bump it whenever the payload layout or
the simulation semantics change — old entries are then discarded, never
reinterpreted).

Fingerprint sources:

* **Circuit** — the canonical ``.bench`` rendering
  (:func:`repro.circuit.bench.write_bench` round-trips to an identical
  circuit, so it is a faithful canonical form).
* **Fault set** — the sorted canonical fault names
  (:func:`repro.sim.faults.fault_name`); detection results do not
  depend on fault order.
* **Stimulus** — the ``0``/``1``/``x`` rendering, one row per cycle.
* **Config** — a JSON rendering with sorted keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping, Sequence

from repro.circuit.bench import write_bench
from repro.circuit.netlist import Circuit
from repro.sim.faults import Fault, fault_name
from repro.sim.values import Value, to_char

CACHE_FORMAT = 1
"""Version of the cache key/payload format.  Entries written under a
different version are discarded on read."""


def fingerprint(text: str) -> str:
    """SHA-256 hex digest of ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: Circuit) -> str:
    """Fingerprint of a circuit's canonical ``.bench`` form."""
    return fingerprint(write_bench(circuit))


def stimulus_fingerprint(stimulus: Iterable[Sequence[Value]]) -> str:
    """Fingerprint of a stimulus (one ``0``/``1``/``x`` row per cycle)."""
    rows = "\n".join("".join(to_char(v) for v in row) for row in stimulus)
    return fingerprint(rows)


def faults_fingerprint(faults: Iterable[Fault]) -> str:
    """Order-insensitive fingerprint of a fault set."""
    return fingerprint("\n".join(sorted(fault_name(f) for f in faults)))


def config_fingerprint(config: Mapping[str, object]) -> str:
    """Fingerprint of a configuration mapping (sorted, JSON-rendered)."""
    return fingerprint(json.dumps(config, sort_keys=True, default=repr))


def analysis_key(
    circuit_fp: str,
    faults_fp: str,
    config: Mapping[str, object],
) -> str:
    """The cache key for one static-analysis artifact.

    Static analysis has no stimulus; the key covers the circuit, the
    fault universe the verdicts were computed for, and the analysis
    configuration (format version, unrolling bound, ...).
    """
    return fingerprint(
        "\n".join(
            (
                f"format={CACHE_FORMAT}",
                "static_analysis",
                circuit_fp,
                faults_fp,
                config_fingerprint(config),
            )
        )
    )


def simulation_key(
    circuit_fp: str,
    stimulus_fp: str,
    faults_fp: str,
    config: Mapping[str, object],
) -> str:
    """The cache key for one simulation artifact.

    ``circuit_fp`` / ``stimulus_fp`` are precomputed fingerprints (the
    circuit one is worth memoizing by the caller — see
    :class:`repro.sim.faultsim.FaultSimulator`); ``config`` carries
    everything else that influences the result (artifact kind, line
    recording, simulator class, ...).
    """
    return fingerprint(
        "\n".join(
            (
                f"format={CACHE_FORMAT}",
                circuit_fp,
                stimulus_fp,
                faults_fp,
                config_fingerprint(config),
            )
        )
    )
