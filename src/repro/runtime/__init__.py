"""repro.runtime — parallel execution and artifact caching.

The runtime layer makes the reproduction fast without changing a single
result:

* :mod:`repro.runtime.executor` — a common executor interface with a
  serial and a process-pool implementation; whole-sequence fault
  simulations shard across 63-fault groups and the Section-4.2
  procedure screens candidate assignments in speculative batches, with
  results merged deterministically (bit-identical to the serial run).
* :mod:`repro.runtime.cache` + :mod:`repro.runtime.keys` — a
  content-addressed artifact cache keyed on (canonical netlist, fault
  set, stimulus, config), with versioned keys, atomic writes and an
  LRU size cap.  Corrupt or stale entries are discarded, never trusted.
* :mod:`repro.runtime.metrics` — :class:`RuntimeStats` counters/timers
  (simulations run vs. served from cache, worker utilization, recovery
  events), printed by ``repro flow --stats``.
* :mod:`repro.resilience` (re-exported here) — fault tolerance: retry
  policies for crashed/hung workers, graceful degradation to serial
  execution, atomic checkpoint journals for ``--resume``, and the
  deterministic chaos-injection harness that tests all of it.
* :mod:`repro.trace` (``Tracer`` re-exported here) — hierarchical span
  tracing and the structured event log; pass ``trace=True`` to the
  context and every phase of a flow is attributed wall/CPU time and
  counter deltas.

Entry point: build a :class:`RuntimeContext` and pass it down —
``run_full_flow(circuit, runtime=rt)``, ``FaultSimulator(circuit,
runtime=rt)``, ``select_weight_assignments(..., runtime=rt)``.
"""

from repro.resilience import (
    ChaosSpec,
    CheckpointJournal,
    RetryPolicy,
    flow_journal_key,
    handle_termination,
)
from repro.runtime.cache import (
    DEFAULT_MAX_BYTES,
    ArtifactCache,
    CacheIntegrityWarning,
    default_cache_dir,
)
from repro.runtime.context import RuntimeContext
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.runtime.keys import (
    CACHE_FORMAT,
    circuit_fingerprint,
    config_fingerprint,
    faults_fingerprint,
    fingerprint,
    simulation_key,
    stimulus_fingerprint,
)
from repro.runtime.metrics import RuntimeStats
from repro.trace.span import Tracer

__all__ = [
    "Tracer",
    "ArtifactCache",
    "CACHE_FORMAT",
    "CacheIntegrityWarning",
    "ChaosSpec",
    "CheckpointJournal",
    "DEFAULT_MAX_BYTES",
    "ProcessExecutor",
    "RetryPolicy",
    "RuntimeContext",
    "RuntimeStats",
    "SerialExecutor",
    "flow_journal_key",
    "handle_termination",
    "circuit_fingerprint",
    "config_fingerprint",
    "default_cache_dir",
    "faults_fingerprint",
    "fingerprint",
    "make_executor",
    "simulation_key",
    "stimulus_fingerprint",
]
