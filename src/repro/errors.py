"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (dangling nets, cycles, ...)."""


class BenchParseError(NetlistError):
    """An ISCAS-89 ``.bench`` file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class SimulationError(ReproError):
    """A simulation was configured or driven incorrectly."""


class FaultModelError(ReproError):
    """A fault refers to a line or pin that does not exist."""


class AnalysisError(ReproError):
    """Static-analysis failure (bad fault, malformed certificate, ...)."""


class WeightError(ReproError):
    """A weight subsequence is malformed (empty, non-binary, ...)."""


class ProcedureError(ReproError):
    """The weight-selection procedure was invoked with invalid inputs."""


class HardwareError(ReproError):
    """Hardware (FSM / TPG) synthesis failed or was misconfigured."""


class LintError(ReproError):
    """The lint subsystem was misused, or a strict lint gate failed."""


class TraceError(ReproError):
    """The trace subsystem was misused (unbalanced spans, malformed or
    unreadable trace artifacts, unwritable output paths)."""


class ResilienceError(ReproError):
    """The fault-tolerant runtime was misconfigured (retry policy,
    chaos specification, checkpoint journal)."""


class ChaosError(ResilienceError):
    """A chaos-injection specification could not be parsed."""


class OptimizeError(ReproError):
    """The multi-objective optimizer was misconfigured (bad budgets,
    empty weight alphabet, incompatible resume checkpoint)."""


class ServeError(ReproError):
    """The job service was misused or is unavailable (malformed job
    specifications, unreachable server, protocol violations)."""


class RateLimited(ServeError):
    """The server refused a request under admission control.

    Carries the HTTP status it was refused with (429 for a rate-limited
    client, 503 for a saturated or draining server) and the server's
    suggested ``Retry-After`` delay in seconds.
    """

    def __init__(
        self, message: str, status: int, retry_after_s: float
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class CampaignError(ReproError):
    """The campaign warehouse was misused (unreadable store, malformed
    artifact, bad grid specification, under-determined model)."""


class SweepInterrupted(ReproError):
    """A termination signal stopped a sweep.

    Raised from the :func:`repro.resilience.handle_termination` signal
    handlers.  By the time it propagates, every completed circuit is
    already checkpointed (journal writes are atomic, per circuit), so
    the run can be continued with ``--resume``.
    """

    def __init__(self, signame: str) -> None:
        super().__init__(
            f"received {signame}; completed circuits are checkpointed — "
            "rerun with --resume to continue"
        )
        self.signame = signame
