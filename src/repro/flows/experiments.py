"""Experiment drivers shared by the benchmark harness.

Flows are expensive (pure-Python fault simulation), so results are
cached per (circuit, configuration) within the process: the Table-6
bench, the Tables-7-16 bench and the Figure-1 bench all reuse one flow
per circuit instead of recomputing it.

Suites
------
``DEFAULT_SUITE`` holds the circuits the benchmarks run by default;
``FULL_SUITE`` adds the larger synthetic stand-ins (set the environment
variable ``REPRO_FULL_SUITE=1`` to make the benches use it — runtimes
grow to tens of minutes in pure Python).

``L_G`` defaults: the paper uses ``L_G = 2000`` everywhere.  The
benches use 2000 for the tiny ``s27`` and scale down to 512 for the
synthetic stand-ins to bound runtime; EXPERIMENTS.md records the values
used.  Override per call if desired.
"""

from __future__ import annotations

import os
from dataclasses import asdict, fields
from typing import Dict, List, Optional, Tuple

from repro.core.procedure import ProcedureConfig
from repro.core.report import Table6Row
from repro.flows.full_flow import FlowConfig, FlowResult, run_full_flow
from repro.obs.tradeoff import TradeoffRow, observation_point_tradeoff
from repro.resilience.journal import flow_journal_key
from repro.trace import trace_event, traced

DEFAULT_SUITE: Tuple[str, ...] = ("s27", "g208", "g298", "g344", "g386")
FULL_SUITE: Tuple[str, ...] = DEFAULT_SUITE + (
    "g382",
    "g400",
    "g420",
    "g444",
    "g526",
    "g641",
)

#: L_G per circuit (paper value for s27; bounded for the stand-ins).
LG_BY_CIRCUIT: Dict[str, int] = {"s27": 2000}
DEFAULT_LG = 512

_FLOW_CACHE: Dict[Tuple, FlowResult] = {}


def active_suite() -> Tuple[str, ...]:
    """The benchmark suite, honouring ``REPRO_FULL_SUITE``."""
    # Selects *which* circuits run, never their results.
    if os.environ.get("REPRO_FULL_SUITE"):  # lint: ignore[D104]
        return FULL_SUITE
    return DEFAULT_SUITE


def flow_config_for(
    circuit_name: str,
    l_g: int | None = None,
    sim_backend: str = "auto",
) -> FlowConfig:
    """The benchmark configuration for one circuit."""
    if l_g is None:
        l_g = LG_BY_CIRCUIT.get(circuit_name, DEFAULT_LG)
    return FlowConfig(
        seed=1,
        tgen_max_len=2000,
        compaction_sims=60,
        procedure=ProcedureConfig(l_g=l_g),
        sim_backend=sim_backend,
    )


def flow_for(
    circuit_name: str,
    l_g: int | None = None,
    runtime=None,
    sim_backend: str = "auto",
) -> FlowResult:
    """Run (or fetch from cache) the full flow for ``circuit_name``.

    ``runtime`` (a :class:`~repro.runtime.context.RuntimeContext`) is
    only consulted on a cache miss; results are runtime-independent so
    the in-process cache stays valid either way.  ``sim_backend`` is
    part of the cache key even though results are backend-identical,
    so a forced-backend run really exercises that backend.
    """
    cfg = flow_config_for(circuit_name, l_g, sim_backend)
    key = (circuit_name, cfg.procedure.l_g, cfg.seed, cfg.sim_backend)
    if key not in _FLOW_CACHE:
        _FLOW_CACHE[key] = run_full_flow(circuit_name, cfg, runtime=runtime)
    return _FLOW_CACHE[key]


def _checkpointed_row(
    circuit_name: str, runtime, sim_backend: str = "auto"
) -> Optional[Table6Row]:
    """The circuit's journaled Table-6 row, if resumable.

    Only consulted when ``runtime`` carries a checkpoint journal *and*
    was built with ``resume=True``.  The payload is validated field by
    field — a stale, corrupt or foreign checkpoint is ignored and the
    circuit recomputed.
    """
    if runtime is None or not getattr(runtime, "resume", False):
        return None
    journal = getattr(runtime, "journal", None)
    if journal is None:
        return None
    cfg = flow_config_for(circuit_name, sim_backend=sim_backend)
    payload = journal.get(flow_journal_key(circuit_name, asdict(cfg)))
    if not isinstance(payload, dict) or payload.get("kind") != "flow":
        return None
    raw = payload.get("table6")
    if not isinstance(raw, dict):
        return None
    expected = [f.name for f in fields(Table6Row)]
    if sorted(raw) != sorted(expected):
        return None
    row = Table6Row(**raw)
    if row.circuit != circuit_name:
        return None
    return row


def table6_rows(
    circuit_names: Tuple[str, ...] | None = None,
    runtime=None,
    sim_backend: str = "auto",
) -> List[Table6Row]:
    """Regenerate the paper's Table 6 over ``circuit_names``.

    With a resuming runtime (``RuntimeContext(resume=True)`` / the
    CLI's ``--resume``), circuits already checkpointed by an earlier —
    possibly interrupted — sweep are skipped and their journaled rows
    returned as-is; the final table is identical to an uninterrupted
    run because each checkpoint is the completed row itself.
    """
    names = circuit_names or active_suite()
    rows: List[Table6Row] = []
    with traced(runtime, "table6_sweep", circuits=len(names)):
        for name in names:
            row = _checkpointed_row(name, runtime, sim_backend)
            if row is not None:
                runtime.stats.journal_skips += 1
                trace_event(runtime, "journal_skip", circuit=name)
                rows.append(row)
                continue
            rows.append(
                flow_for(name, runtime=runtime, sim_backend=sim_backend).table6
            )
    return rows


def tradeoff_for(
    circuit_name: str, max_prefix: int | None = None, runtime=None
) -> List[TradeoffRow]:
    """Regenerate a Tables-7-16 style tradeoff table for one circuit."""
    flow = flow_for(circuit_name, runtime=runtime)
    return observation_point_tradeoff(
        flow.circuit, flow.procedure, max_prefix=max_prefix, runtime=runtime
    )


def clear_cache() -> None:
    """Drop all cached flow results (mainly for tests)."""
    _FLOW_CACHE.clear()
