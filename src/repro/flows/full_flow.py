"""The complete per-circuit pipeline.

``run_full_flow`` takes a circuit (object or library name) and produces
everything the paper reports for it:

1. deterministic test sequence ``T`` (simulation-based generation —
   the STRATEGATE/SEQCOM stand-in),
2. static compaction of ``T``,
3. weight-assignment selection (``Ω``),
4. reverse-order simulation,
5. the Table-6 row, and
6. optionally a synthesized, replay-verified TPG.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.metrics import RuntimeStats

from repro.circuit.library import load_circuit
from repro.circuit.netlist import Circuit
from repro.core.postprocess import ReverseOrderResult, reverse_order_simulation
from repro.core.procedure import (
    ProcedureConfig,
    ProcedureResult,
    select_weight_assignments,
)
from repro.core.report import Table6Row, build_table6_row
from repro.errors import ReproError
from repro.hw.tpg import TpgDesign, synthesize_tpg
from repro.hw.verify import verify_tpg
from repro.sim.compile import compile_circuit
from repro.sim.collapse import collapse_faults
from repro.sim.faults import FaultPruner, PruneReport
from repro.sim.faultsim import FaultSimulator
from repro.tgen.compaction import CompactionResult, compact_sequence
from repro.tgen.random_tgen import GeneratedTest, generate_test_sequence
from repro.tgen.sequence import TestSequence
from repro.trace import trace_event, traced

TGEN_MODES = ("random", "hybrid")
"""Accepted values for :attr:`FlowConfig.tgen_mode`."""


@dataclass(frozen=True)
class FlowConfig:
    """Configuration for the full pipeline.

    Attributes
    ----------
    seed:
        Seed for test generation.
    tgen_max_len:
        Length cap for the generated sequence (random phase).
    tgen_mode:
        ``"random"`` — simulation-based random walk only (fast);
        ``"hybrid"`` — random walk plus deterministic PODEM targeting
        of the leftover faults (slower, higher coverage; the closest
        stand-in for the paper's STRATEGATE sequences).
    compaction_sims:
        Fault-simulation budget for static compaction (0 disables
        compaction).
    procedure:
        Weight-selection knobs (see :class:`ProcedureConfig`); its
        ``l_g`` is the paper's ``L_G``.
    synthesize_hardware:
        Also synthesize and verify the TPG for the kept assignments.
    static_prune:
        Run the static implication engine first and exclude faults it
        proves untestable from the weight-selection and reverse-order
        fault simulations.  Every excluded fault carries a
        machine-checkable certificate and is reported in
        :attr:`FlowResult.pruned`; coverage denominators and every
        other output are identical to an unpruned run.
    sim_backend:
        Fault-simulation backend for every stage
        (``"auto"``/``"python"``/``"vector"``).  Backends are
        bit-identical; this only selects the implementation.
    """

    seed: int = 1
    tgen_max_len: int = 2000
    tgen_mode: str = "random"
    compaction_sims: int = 60
    procedure: ProcedureConfig = field(default_factory=ProcedureConfig)
    synthesize_hardware: bool = False
    static_prune: bool = False
    sim_backend: str = "auto"


@dataclass
class FlowResult:
    """Everything the pipeline produced for one circuit.

    Attributes
    ----------
    circuit:
        The circuit under test.
    generated:
        Raw test-generation outcome (pre-compaction).
    compaction:
        Compaction outcome (None when disabled).
    sequence:
        The final deterministic sequence ``T`` driving weight selection.
    procedure:
        The selection procedure's result (``Ω`` and friends).
    reverse_order:
        Reverse-order simulation outcome.
    table6:
        The circuit's Table-6 row.
    tpg:
        Synthesized TPG design (None unless requested).
    tpg_verified:
        Replay-verification verdict for the TPG (None unless
        synthesized).
    pruned:
        Report of faults proved untestable and excluded from fault
        simulation (None unless :attr:`FlowConfig.static_prune`).
    timings:
        Per-stage wall-clock seconds.
    runtime_stats:
        The runtime layer's counters for this run (None when no
        ``runtime`` was supplied).
    """

    circuit: Circuit
    generated: GeneratedTest
    compaction: Optional[CompactionResult]
    sequence: TestSequence
    procedure: ProcedureResult
    reverse_order: ReverseOrderResult
    table6: Table6Row
    tpg: Optional[TpgDesign] = None
    tpg_verified: Optional[bool] = None
    pruned: Optional[PruneReport] = None
    timings: Dict[str, float] = field(default_factory=dict)
    runtime_stats: Optional["RuntimeStats"] = None


def run_full_flow(
    circuit: Circuit | str,
    config: FlowConfig | None = None,
    runtime=None,
) -> FlowResult:
    """Run the complete pipeline on ``circuit``.

    ``circuit`` may be a :class:`Circuit` or a library name
    (e.g. ``"s27"``).  ``runtime`` is an optional
    :class:`~repro.runtime.context.RuntimeContext`; when given, the
    fault-simulation-heavy stages (compaction, weight selection,
    reverse-order simulation) run through its worker pool and artifact
    cache.  Results are bit-identical with or without it.
    """
    cfg = config or FlowConfig()
    # Reject a bad configuration up front — before circuit loading and
    # compilation, not minutes into the flow when test generation
    # finally dispatches on the mode.
    if cfg.tgen_mode not in TGEN_MODES:
        raise ReproError(
            f"unknown tgen_mode {cfg.tgen_mode!r}; expected one of "
            f"{', '.join(TGEN_MODES)}"
        )
    if isinstance(circuit, str):
        circuit = load_circuit(circuit)
    with traced(
        runtime, "full_flow", circuit=circuit.name, tgen_mode=cfg.tgen_mode
    ):
        return _run_stages(circuit, cfg, runtime)


def _run_stages(
    circuit: Circuit, cfg: FlowConfig, runtime
) -> FlowResult:
    """The flow body, stage by stage (span-per-stage when traced)."""
    if runtime is not None:
        # Static gate before any simulation: under a "warn"/"strict"
        # lint policy a structurally suspect circuit is reported (or
        # rejected) here, in milliseconds, not after the flow.
        runtime.lint_circuit(circuit)
    comp = compile_circuit(circuit)
    faults = collapse_faults(circuit)
    timings: Dict[str, float] = {}

    # Certified pre-prune: arm the shared fault simulator with the
    # static analysis verdicts.  Only the simulation-side stages use it
    # (test generation still targets the full universe — its sequence
    # must not depend on the prune), and the armed simulator rebuilds
    # every result over the full fault list, so all flow outputs except
    # the explicit `pruned` report are identical either way.
    pruned_report: Optional[PruneReport] = None
    sim: Optional[FaultSimulator] = None
    if cfg.static_prune:
        t0 = time.perf_counter()
        with traced(runtime, "static_analysis_stage"):
            pruner = FaultPruner(circuit, runtime=runtime)
            pruned_report = pruner.report(faults)
            sim = FaultSimulator(
                circuit, comp, runtime=runtime, pruner=pruner,
                backend=cfg.sim_backend,
            )
        timings["static_analysis"] = time.perf_counter() - t0
        trace_event(
            runtime,
            "stage",
            name="static_analysis",
            n_faults=pruned_report.n_faults,
            pruned=pruned_report.n_pruned,
        )

    t0 = time.perf_counter()
    with traced(runtime, "test_generation", mode=cfg.tgen_mode):
        if cfg.tgen_mode == "hybrid":
            from repro.atpg.driver import hybrid_test_sequence

            generated = hybrid_test_sequence(
                circuit,
                faults,
                seed=cfg.seed,
                random_max_len=cfg.tgen_max_len,
                compiled=comp,
                sim_backend=cfg.sim_backend,
            )
        elif cfg.tgen_mode == "random":
            generated = generate_test_sequence(
                circuit, faults, seed=cfg.seed, max_len=cfg.tgen_max_len,
                compiled=comp, sim_backend=cfg.sim_backend,
            )
        else:
            raise ReproError(f"unknown tgen_mode {cfg.tgen_mode!r}")
    timings["test_generation"] = time.perf_counter() - t0
    trace_event(
        runtime, "stage", name="test_generation",
        length=len(generated.sequence), detected=len(generated.detected),
    )
    if not generated.detected:
        raise ReproError(
            f"test generation detected no faults on {circuit.name}; "
            "cannot drive weight selection"
        )

    compaction: Optional[CompactionResult] = None
    sequence = generated.sequence
    if cfg.compaction_sims > 0:
        t0 = time.perf_counter()
        with traced(runtime, "compaction", budget=cfg.compaction_sims):
            compaction = compact_sequence(
                circuit,
                sequence,
                generated.detected,
                max_simulations=cfg.compaction_sims,
                compiled=comp,
                runtime=runtime,
                sim_backend=cfg.sim_backend,
            )
        sequence = compaction.sequence
        timings["compaction"] = time.perf_counter() - t0
        trace_event(
            runtime, "stage", name="compaction", length=len(sequence)
        )

    t0 = time.perf_counter()
    with traced(runtime, "procedure", l_g=cfg.procedure.l_g):
        procedure = select_weight_assignments(
            circuit, sequence, faults, cfg.procedure, compiled=comp,
            simulator=sim, runtime=runtime, sim_backend=cfg.sim_backend,
        )
    timings["procedure"] = time.perf_counter() - t0
    trace_event(
        runtime, "stage", name="procedure", omega=len(procedure.omega)
    )

    t0 = time.perf_counter()
    with traced(runtime, "reverse_order"):
        reverse_order = reverse_order_simulation(
            circuit, procedure, comp, simulator=sim, runtime=runtime,
            sim_backend=cfg.sim_backend,
        )
    timings["reverse_order"] = time.perf_counter() - t0
    trace_event(
        runtime, "stage", name="reverse_order", kept=len(reverse_order.kept)
    )

    table6 = build_table6_row(circuit.name, sequence, procedure, reverse_order)

    tpg: Optional[TpgDesign] = None
    verified: Optional[bool] = None
    if cfg.synthesize_hardware and reverse_order.kept:
        t0 = time.perf_counter()
        with traced(runtime, "hardware"):
            tpg = synthesize_tpg(
                list(reverse_order.kept), procedure.l_g, circuit.inputs
            )
            if runtime is not None:
                runtime.lint_design(tpg)
            verified = verify_tpg(tpg).ok
        timings["hardware"] = time.perf_counter() - t0
        trace_event(
            runtime, "stage", name="hardware", verified=bool(verified)
        )

    if runtime is not None:
        for stage, seconds in timings.items():
            runtime.stats.timers[stage] = (
                runtime.stats.timers.get(stage, 0.0) + seconds
            )
        journal = getattr(runtime, "journal", None)
        if journal is not None:
            # Checkpoint the finished circuit atomically: an
            # interrupted multi-circuit sweep resumes past it with
            # --resume (see repro.flows.experiments).
            from repro.resilience.journal import flow_journal_key

            journal.record(
                flow_journal_key(circuit.name, asdict(cfg)),
                {
                    "kind": "flow",
                    "table6": asdict(table6),
                    "timings": dict(timings),
                },
            )

    return FlowResult(
        circuit=circuit,
        generated=generated,
        compaction=compaction,
        sequence=sequence,
        procedure=procedure,
        reverse_order=reverse_order,
        table6=table6,
        tpg=tpg,
        tpg_verified=verified,
        pruned=pruned_report,
        timings=timings,
        runtime_stats=runtime.stats if runtime is not None else None,
    )
