"""Full BIST closure: TPG → CUT → MISR composed into one netlist.

The paper's Figure 1 shows the generator driving the CUT; a deployable
BIST also compacts the responses.  This module stitches the three
blocks into a single self-testing circuit with one ``reset`` input and
the MISR signature as outputs, then checks the whole thing end to end:
the hardware signature after the complete session must equal the
software-predicted signature.

Semantics note: unlike the per-assignment fault simulation (which
conservatively restarts the CUT from an unknown state for every
weighted sequence), the composed hardware runs the CUT *continuously*
across assignment windows.  The 3-valued argument still guarantees
every fault detected under X-start per-cycle observation is detected
in the continuous run; the signature reference below replays the exact
continuous stimulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import HardwareError
from repro.hw.misr import Misr, synthesize_misr
from repro.hw.tpg import TpgDesign
from repro.sim.logicsim import LogicSimulator
from repro.sim.values import V0, V1, VX


@dataclass(frozen=True)
class BistClosure:
    """The composed self-test circuit and its session parameters.

    Attributes
    ----------
    circuit:
        TPG + CUT + MISR in one netlist.  PI: ``reset``; POs: the MISR
        state bits (LSB first).
    cut:
        The original circuit under test (for software prediction).
    tpg:
        The embedded generator design.
    misr_width:
        Signature width.
    session_cycles:
        Cycles after reset until the signature is valid (all assignment
        windows plus one flush cycle for the final MISR update).
    settle_cycles:
        Leading cycles whose CUT outputs are not absorbed: a hardware
        settle counter holds the MISR in reset until the unknown
        power-up values have flushed out of the responses (real BIST
        controllers do exactly this).  Computed from the fault-free
        simulation at composition time.
    """

    circuit: Circuit
    cut: Circuit
    tpg: TpgDesign
    misr_width: int
    session_cycles: int
    settle_cycles: int

    def run_hardware(self) -> Tuple[int, int]:
        """Simulate the composed netlist; return ``(signature, n_x_bits)``.

        ``n_x_bits`` counts signature bits still unknown at session end
        (nonzero means the CUT leaked X into the MISR — the masking
        caveat documented in :mod:`repro.hw.misr`).
        """
        stimulus = [(V1,)] + [(V0,)] * self.session_cycles
        trace = LogicSimulator(self.circuit).run(stimulus)
        final = trace.outputs[-1]
        signature = 0
        n_x = 0
        for k, value in enumerate(final):
            if value == VX:
                n_x += 1
            elif value == V1:
                signature |= 1 << k
        return signature, n_x

    def predict_signature(self) -> Tuple[int, int]:
        """Software-predict ``(signature, n_x_positions)``.

        Simulates the CUT continuously over the concatenated expected
        streams and absorbs the PO values into a software MISR.  X
        outputs are absorbed as 0 and counted — when the count is zero
        the hardware signature must match exactly.
        """
        cut = self.cut
        streams = [
            self.tpg.expected_stream(j) for j in range(self.tpg.n_assignments)
        ]
        stimulus: List[Tuple[int, ...]] = []
        for stream in streams:
            stimulus.extend(stream.patterns)
        trace = LogicSimulator(cut).run(stimulus)
        misr = Misr(self.misr_width, len(cut.outputs))
        n_x = 0
        for outputs in trace.outputs[self.settle_cycles :]:
            bits = []
            for value in outputs:
                if value == VX:
                    n_x += 1
                    bits.append(0)
                else:
                    bits.append(value)
            misr.absorb(bits)
        return misr.signature, n_x

def compose_bist(
    cut: Circuit,
    tpg: TpgDesign,
    misr_width: int | None = None,
    name: str | None = None,
    settle_cycles: int | None = None,
) -> BistClosure:
    """Stitch ``tpg`` → ``cut`` → MISR into one circuit.

    The TPG's output ports must match the CUT's primary inputs in
    count and order (build the TPG with ``input_names=cut.inputs``).
    ``settle_cycles`` defaults to the first cycle after which the
    fault-free responses are X-free (computed by simulation); it
    becomes a hardware settle counter gating the MISR.

    Raises
    ------
    HardwareError
        If the fault-free responses never become X-free (the CUT is
        not initializable under these weighted sequences).
    """
    if len(tpg.output_ports) != len(cut.inputs):
        raise HardwareError(
            f"TPG drives {len(tpg.output_ports)} inputs, CUT has "
            f"{len(cut.inputs)}"
        )
    width = misr_width or max(len(cut.outputs), 8)
    misr = synthesize_misr(width, len(cut.outputs))

    if settle_cycles is None:
        settle_cycles = _required_settle(cut, tpg)

    gates: List[Gate] = []
    outputs: List[str] = []

    def clone(circuit: Circuit, prefix: str, port_map: Dict[str, str]) -> None:
        for net, gate in circuit.gates.items():
            if gate.gtype is GateType.INPUT:
                source = port_map.get(net)
                if source is None:
                    raise HardwareError(f"unbound input {net!r} in {prefix}")
                gates.append(Gate(f"{prefix}{net}", GateType.BUF, (source,)))
            else:
                gates.append(
                    Gate(
                        f"{prefix}{net}",
                        gate.gtype,
                        tuple(f"{prefix}{f}" for f in gate.fanins),
                    )
                )

    gates.append(Gate("reset", GateType.INPUT, ()))

    clone(tpg.circuit, "tpg_", {"reset": "reset"})
    cut_port_map = {
        pi: f"tpg_{port}" for pi, port in zip(cut.inputs, tpg.output_ports)
    }
    clone(cut, "cut_", cut_port_map)

    # Settle gate: a saturating counter holds the MISR in reset for the
    # first `settle_cycles` cycles so unknown power-up responses are
    # never absorbed.
    misr_reset = _build_settle_gate(gates, settle_cycles)

    misr_port_map: Dict[str, str] = {"reset": misr_reset}
    for k, po in enumerate(cut.outputs):
        misr_port_map[f"d{k}"] = f"cut_{po}"
    clone(misr, "misr_", misr_port_map)
    outputs.extend(f"misr_s{k}" for k in range(width))

    composed = Circuit(
        name or f"{cut.name}_bist", gates, outputs
    )
    return BistClosure(
        circuit=composed,
        cut=cut,
        tpg=tpg,
        misr_width=width,
        session_cycles=tpg.total_cycles + 1,
        settle_cycles=settle_cycles,
    )


def _required_settle(cut: Circuit, tpg: TpgDesign) -> int:
    """First cycle index after which fault-free responses are X-free."""
    stimulus: List[Tuple[int, ...]] = []
    for j in range(tpg.n_assignments):
        stimulus.extend(tpg.expected_stream(j).patterns)
    trace = LogicSimulator(cut).run(stimulus)
    last_x = -1
    for u, outputs in enumerate(trace.outputs):
        if any(v == VX for v in outputs):
            last_x = u
    if last_x == len(trace.outputs) - 1:
        raise HardwareError(
            "fault-free responses never become X-free; the circuit does "
            "not initialize under these weighted sequences"
        )
    return last_x + 1


def _build_settle_gate(gates: List[Gate], settle: int) -> str:
    """Append the settle counter; return the gated MISR reset net.

    The counter saturates at ``settle``; while below, the MISR reset is
    held high.  ``settle == 0`` returns the plain reset unchanged.
    """
    if settle <= 0:
        return "reset"
    n_bits = settle.bit_length()
    q = [f"settle_q{k}" for k in range(n_bits)]
    gates.append(Gate("settle_nreset", GateType.NOT, ("reset",)))

    # at_sat = (q == settle)
    literals: List[str] = []
    for k in range(n_bits):
        if (settle >> k) & 1:
            literals.append(q[k])
        else:
            gates.append(Gate(f"settle_nq{k}", GateType.NOT, (q[k],)))
            literals.append(f"settle_nq{k}")
    if len(literals) == 1:
        gates.append(Gate("settle_at_sat", GateType.BUF, (literals[0],)))
    else:
        gates.append(Gate("settle_at_sat", GateType.AND, tuple(literals)))
    gates.append(Gate("settle_active", GateType.NOT, ("settle_at_sat",)))

    # Increment with enable = active (hold when saturated).
    carry = "settle_active"
    for k in range(n_bits):
        gates.append(Gate(f"settle_inc{k}", GateType.XOR, (q[k], carry)))
        if k + 1 < n_bits:
            gates.append(Gate(f"settle_c{k}", GateType.AND, (q[k], carry)))
            carry = f"settle_c{k}"
        gates.append(
            Gate(f"settle_d{k}", GateType.AND, ("settle_nreset", f"settle_inc{k}"))
        )
        gates.append(Gate(q[k], GateType.DFF, (f"settle_d{k}",)))

    gates.append(Gate("misr_gate_reset", GateType.OR, ("reset", "settle_active")))
    return "misr_gate_reset"
