"""End-to-end flows and experiment drivers.

:mod:`repro.flows.full_flow` runs the complete pipeline on one circuit:
test generation → static compaction → weight selection → reverse-order
simulation → Table-6 row (optionally TPG synthesis + verification).

:mod:`repro.flows.experiments` wraps the flows into the exact
experiments of the paper's evaluation section; the benchmark harness
calls these.
"""

from repro.flows.full_flow import FlowConfig, FlowResult, run_full_flow
from repro.flows.closure import BistClosure, compose_bist
from repro.flows.experiments import (
    DEFAULT_SUITE,
    FULL_SUITE,
    clear_cache,
    flow_config_for,
    flow_for,
    table6_rows,
    tradeoff_for,
)

__all__ = [
    "FlowConfig",
    "FlowResult",
    "run_full_flow",
    "BistClosure",
    "compose_bist",
    "DEFAULT_SUITE",
    "FULL_SUITE",
    "clear_cache",
    "flow_config_for",
    "flow_for",
    "table6_rows",
    "tradeoff_for",
]
