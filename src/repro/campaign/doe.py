"""Design-of-experiments: factorial grids over the flow knobs.

The paper's Table 6 is itself a (small) designed experiment — one flow
run per circuit at fixed knobs.  This module generalizes it: a
:class:`GridSpec` names factor levels over the :class:`~repro.serve.
job.JobSpec` knobs (circuit, ``seed``, ``l_g``, ``tgen_mode``,
``tgen_max_len``, ``compaction_sims``, ``static_prune``,
``sim_backend``, …), :func:`build_design` expands it into a full or
even-parity fractional factorial of :class:`DesignPoint`\\ s, and
:func:`run_campaign` drives the points — through a live campaign
server via :class:`~repro.serve.client.ServeClient`, or locally
through the same :func:`~repro.serve.worker.execute_job` core the
server uses — recording every row, phase timing and design-point
binding into a :class:`~repro.campaign.store.CampaignStore` as one
named campaign.

Grid text format (the CLI's ``--grid``), one ``factor=level[,level…]``
term per whitespace-separated token::

    circuit=s27,g208 l_g=256,512 static_prune=0,1 seed=1

Every design is deterministic: factors keep their given order, levels
keep their given order, and points are numbered in row-major
cartesian order — the same grid text always names the same campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import CampaignError, ReproError
from repro.campaign.store import CampaignStore, IngestReport
from repro.serve.job import JobSpec

#: JobSpec fields a grid may vary, with their level parsers.
_BOOL_FACTORS = frozenset({"static_prune", "synthesize_hardware"})
_INT_FACTORS = frozenset(
    {
        "seed",
        "l_g",
        "tgen_max_len",
        "compaction_sims",
        "population",
        "generations",
        "priority",
    }
)
_STR_FACTORS = frozenset({"circuit", "task", "tgen_mode", "sim_backend"})
FACTOR_NAMES = tuple(
    sorted(_BOOL_FACTORS | _INT_FACTORS | _STR_FACTORS)
)
"""Every factor name a :class:`GridSpec` accepts."""

Level = object


@dataclass(frozen=True)
class FactorSpec:
    """One factor: a JobSpec field plus its ordered levels."""

    name: str
    levels: Tuple[Level, ...]

    def __post_init__(self) -> None:
        if self.name not in FACTOR_NAMES:
            raise CampaignError(
                f"unknown factor {self.name!r}; expected one of "
                f"{', '.join(FACTOR_NAMES)}"
            )
        if not self.levels:
            raise CampaignError(f"factor {self.name!r} has no levels")
        if len(set(map(repr, self.levels))) != len(self.levels):
            raise CampaignError(
                f"factor {self.name!r} repeats a level"
            )


@dataclass(frozen=True)
class GridSpec:
    """A named factorial grid: ordered factors over the flow knobs."""

    factors: Tuple[FactorSpec, ...]
    name: str = "campaign"

    def __post_init__(self) -> None:
        names = [f.name for f in self.factors]
        if len(set(names)) != len(names):
            raise CampaignError("grid names a factor twice")
        if "circuit" not in names:
            raise CampaignError("grid must include a circuit factor")

    @property
    def size(self) -> int:
        n = 1
        for factor in self.factors:
            n *= len(factor.levels)
        return n


@dataclass(frozen=True)
class DesignPoint:
    """One cell of the design: its index and its factor assignment."""

    index: int
    factors: Mapping[str, Level] = field(default_factory=dict)

    def job_spec(self, **overrides: object) -> JobSpec:
        """The :class:`JobSpec` this point demands.

        ``overrides`` supply non-factor fields (client, priority,
        execution budget); a factor always wins over an override.
        """
        fields: Dict[str, object] = dict(overrides)
        fields.update(self.factors)
        try:
            return JobSpec(**fields)  # type: ignore[arg-type]
        except (ReproError, TypeError) as exc:
            raise CampaignError(
                f"design point {self.index} is not a valid job: {exc}"
            ) from exc


def _parse_level(name: str, text: str) -> Level:
    if name in _BOOL_FACTORS:
        lowered = text.strip().lower()
        if lowered in ("1", "true", "on", "yes"):
            return True
        if lowered in ("0", "false", "off", "no"):
            return False
        raise CampaignError(
            f"factor {name!r}: {text!r} is not a boolean level"
        )
    if name in _INT_FACTORS:
        try:
            return int(text)
        except ValueError as exc:
            raise CampaignError(
                f"factor {name!r}: {text!r} is not an integer level"
            ) from exc
    return text.strip()


def parse_grid(text: str, name: str = "campaign") -> GridSpec:
    """Parse the CLI grid syntax into a :class:`GridSpec`.

    ``"circuit=s27,g208 l_g=256,512"`` → two factors, four points.
    """
    factors: List[FactorSpec] = []
    for token in text.split():
        factor_name, sep, levels_text = token.partition("=")
        if not sep or not factor_name or not levels_text:
            raise CampaignError(
                f"malformed grid term {token!r}; expected "
                "factor=level[,level...]"
            )
        levels = tuple(
            _parse_level(factor_name, level)
            for level in levels_text.split(",")
            if level != ""
        )
        factors.append(FactorSpec(name=factor_name, levels=levels))
    if not factors:
        raise CampaignError("empty grid specification")
    return GridSpec(factors=tuple(factors), name=name)


def build_design(grid: GridSpec, fraction: int = 1) -> List[DesignPoint]:
    """Expand a grid into design points, row-major over its factors.

    ``fraction=1`` is the full factorial.  ``fraction=2`` keeps the
    even-parity half (points whose level-index sum is even) — the
    classic resolution-reducing half fraction that still touches every
    level of every factor; higher fractions keep ``sum % fraction ==
    0``.  Point indices are *design* indices (stable under
    fractionation), so a half-fraction campaign can later be filled in
    to the full design without renumbering.
    """
    if fraction < 1:
        raise CampaignError("fraction must be >= 1")
    level_indices = [range(len(f.levels)) for f in grid.factors]
    points: List[DesignPoint] = []
    for index, combo in enumerate(product(*level_indices)):
        if sum(combo) % fraction != 0:
            continue
        factors = {
            f.name: f.levels[i] for f, i in zip(grid.factors, combo)
        }
        points.append(DesignPoint(index=index, factors=factors))
    if not points:
        raise CampaignError(
            f"fraction {fraction} leaves an empty design"
        )
    return points


def _spec_config(spec: JobSpec) -> Dict[str, object]:
    """The store's config columns for one spec."""
    return {
        "seed": spec.seed,
        "l_g": spec.l_g,
        "tgen_mode": spec.tgen_mode,
        "tgen_max_len": spec.tgen_max_len,
        "compaction_sims": spec.compaction_sims,
        "static_prune": int(spec.static_prune),
        "config_fp": spec.key(),
    }


def _phase_stats(record: Mapping[str, object]) -> Dict[str, float]:
    stats = record.get("stats")
    if not isinstance(stats, Mapping):
        return {}
    return {
        str(name)[len("phase:"):]: float(value)  # type: ignore[arg-type]
        for name, value in stats.items()
        if str(name).startswith("phase:") and isinstance(value, (int, float))
    }


def _ingest_point(
    store: CampaignStore,
    campaign: str,
    point: DesignPoint,
    spec: JobSpec,
    payload: Mapping[str, object],
    record: Mapping[str, object],
    report: IngestReport,
) -> str:
    """Store one finished point; returns its run fingerprint."""
    from repro.campaign.store import payload_fingerprint

    if spec.task == "optimize":
        sub = store.ingest_optimize_payload(
            payload, source=f"campaign:{campaign}:{point.index}"
        )
        identity: Dict[str, object] = dict(payload)
    else:
        config = _spec_config(spec)
        sub = store.ingest_flow_payload(
            payload,
            source=f"campaign:{campaign}:{point.index}",
            config=config,
            timings=_phase_stats(record),
        )
        identity = {"kind": "flow", "payload": dict(payload)}
        identity["config"] = {
            k: config[k] for k in sorted(config) if k != "config_fp"
        }
    report.merge(sub)
    fingerprint = payload_fingerprint(identity)
    store.record_campaign_point(
        campaign,
        point.index,
        {str(k): v for k, v in point.factors.items()},
        job_key=spec.key(),
        fingerprint=fingerprint,
    )
    report.merge(store.ingest_job_record(record, source=f"job:{spec.key()}"))
    return fingerprint


@dataclass
class CampaignRun:
    """What one :func:`run_campaign` invocation did."""

    campaign: str
    points: int
    done: int
    failed: List[int]
    report: IngestReport

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "points": self.points,
            "done": self.done,
            "failed": list(self.failed),
            "ingest": self.report.to_dict(),
        }


def run_campaign(
    store: CampaignStore,
    grid: GridSpec,
    fraction: int = 1,
    server_url: Optional[str] = None,
    timeout_s: float = 600.0,
    spec_overrides: Optional[Mapping[str, object]] = None,
) -> CampaignRun:
    """Run a factorial campaign and warehouse every result.

    With ``server_url`` the points go through a live campaign server
    (submit → wait → fetch result + job record); without one they run
    in-process through :func:`~repro.serve.worker.execute_job` — the
    *same* execution core, so results are byte-identical either way.
    Failed points are recorded (by design index) but do not abort the
    rest of the campaign.
    """
    design = build_design(grid, fraction=fraction)
    overrides = dict(spec_overrides or {})
    report = IngestReport()
    failed: List[int] = []
    done = 0
    if server_url is not None:
        done, failed = _run_remote(
            store, grid.name, design, overrides, server_url, timeout_s, report
        )
    else:
        done, failed = _run_local(
            store, grid.name, design, overrides, report
        )
    return CampaignRun(
        campaign=grid.name,
        points=len(design),
        done=done,
        failed=failed,
        report=report,
    )


def _run_remote(
    store: CampaignStore,
    campaign: str,
    design: Sequence[DesignPoint],
    overrides: Mapping[str, object],
    server_url: str,
    timeout_s: float,
    report: IngestReport,
) -> Tuple[int, List[int]]:
    from repro.serve.client import ServeClient

    client = ServeClient(server_url)
    specs = [point.job_spec(**overrides) for point in design]
    for spec in specs:
        client.submit_with_backoff(spec, max_wait_s=timeout_s)
    records = client.wait_all(
        [spec.key() for spec in specs], timeout_s=timeout_s
    )
    done = 0
    failed: List[int] = []
    for point, spec in zip(design, specs):
        record = records.get(spec.key(), {})
        if record.get("state") != "done":
            failed.append(point.index)
            continue
        payload = client.result(spec.key())
        _ingest_point(
            store, campaign, point, spec, payload, record, report
        )
        done += 1
    return done, failed


def _run_local(
    store: CampaignStore,
    campaign: str,
    design: Sequence[DesignPoint],
    overrides: Mapping[str, object],
    report: IngestReport,
) -> Tuple[int, List[int]]:
    from repro.serve.scheduler import ContextPool
    from repro.serve.worker import execute_job

    pool = ContextPool(cache_dir=None, enable_cache=False)
    done = 0
    failed: List[int] = []
    try:
        for point in design:
            spec = point.job_spec(**overrides)
            runtime = pool.acquire(spec.budget())
            outcome = execute_job(spec, runtime)
            if not outcome.ok or outcome.payload is None:
                failed.append(point.index)
                continue
            record = {
                "kind": "job",
                "key": spec.key(),
                "spec": spec.to_dict(),
                "seq": point.index,
                "state": "done",
                "error": None,
                "attempts": 1,
                "stats": dict(outcome.stats),
                "owner": None,
                "version": 1,
                "lease_token": None,
            }
            _ingest_point(
                store, campaign, point, spec, outcome.payload, record, report
            )
            done += 1
    finally:
        pool.close()
    return done, failed
