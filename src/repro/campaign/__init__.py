"""Campaign analytics: warehouse, DoE driver, models, dashboards.

The paper's evaluation is a many-configuration sweep — one row per
(circuit × ``L_S`` × ``L_G`` × knobs), coverage against TPG area
against sequence length.  This package turns the repo's fleet of
runners into an *operated* experiment campaign:

* :mod:`repro.campaign.store` — a sqlite warehouse every existing
  artifact format ingests into, idempotently, keyed by
  content-addressed run fingerprints;
* :mod:`repro.campaign.doe` — full/fractional factorial designs over
  the flow knobs, expanded into serve ``JobSpec``s and driven through
  :class:`~repro.serve.client.ServeClient` (or a local runtime);
* :mod:`repro.campaign.model` — deterministic least-squares models of
  coverage and TPG cost with leave-one-circuit-out residuals, used to
  pre-size campaigns before spending simulation budget;
* :mod:`repro.campaign.report` — self-contained HTML dashboards
  (inline SVG, zero external assets) plus text/JSON emitters, all
  byte-deterministic over the same store contents.

Surfaced on the CLI as ``repro campaign ingest|run|query|report|
suggest``.
"""

from __future__ import annotations

from repro.campaign.doe import (
    DesignPoint,
    FactorSpec,
    GridSpec,
    build_design,
    parse_grid,
    run_campaign,
)
from repro.campaign.model import (
    RegressionModel,
    fit_models,
    suggest,
    tpg_area_estimate,
)
from repro.campaign.report import (
    render_dashboard,
    render_json,
    render_text,
)
from repro.campaign.store import (
    SCHEMA_VERSION,
    CampaignStore,
    IngestReport,
    payload_fingerprint,
)

__all__ = [
    "CampaignStore",
    "DesignPoint",
    "FactorSpec",
    "GridSpec",
    "IngestReport",
    "RegressionModel",
    "SCHEMA_VERSION",
    "build_design",
    "fit_models",
    "parse_grid",
    "payload_fingerprint",
    "render_dashboard",
    "render_json",
    "render_text",
    "run_campaign",
    "suggest",
    "tpg_area_estimate",
]
