"""The campaign warehouse: one sqlite file for every experiment row.

Every artifact the repo produces — flow results, optimizer fronts,
resilience checkpoint journals, serve job records and result payloads,
traces, benchmark JSON — lands in one queryable sqlite store
(stdlib :mod:`sqlite3`, WAL, versioned schema).

Three design rules keep the warehouse trustworthy:

* **Content-addressed, idempotent ingest.**  Every ingested artifact
  is fingerprinted over its canonical JSON (the same machinery as the
  artifact cache, :func:`repro.runtime.keys.config_fingerprint`) and
  inserted with ``INSERT OR IGNORE``; re-ingesting the same file — or
  the same journal twice, or an overlapping serve state dir — is a
  no-op.  Job records are the one exception: they carry a monotone
  ``version``, and the freshest version wins (still idempotent).
* **Deterministic queries.**  Every query orders by content columns,
  never by rowid, so two stores built from the same artifacts in any
  ingest order answer every query identically — the property suite
  proves it, and the byte-identical dashboards depend on it.
* **Derived tables are projections.**  ``runs`` keeps each artifact's
  full canonical payload; ``table6_rows`` / ``timings`` /
  ``front_points`` / ``jobs`` are queryable projections keyed by the
  same fingerprint, so nothing is ever lost to normalization.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import CampaignError
from repro.runtime.keys import config_fingerprint

SCHEMA_VERSION = 1
"""``PRAGMA user_version`` of the store layout.  Stores written by a
newer layout are rejected (recompute, never reinterpret)."""

_FINGERPRINT_CHARS = 32

_TABLE6_FIELDS = (
    "circuit",
    "given_len",
    "given_det",
    "n_sequences",
    "n_subsequences",
    "max_length",
    "n_fsms",
    "n_fsm_outputs",
)

_CONFIG_FIELDS = (
    "seed",
    "l_g",
    "tgen_mode",
    "tgen_max_len",
    "compaction_sims",
    "static_prune",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    fingerprint TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    circuit     TEXT NOT NULL DEFAULT '',
    source      TEXT NOT NULL DEFAULT '',
    payload     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS table6_rows (
    fingerprint    TEXT PRIMARY KEY,
    circuit        TEXT NOT NULL,
    given_len      INTEGER NOT NULL,
    given_det      INTEGER NOT NULL,
    n_sequences    INTEGER NOT NULL,
    n_subsequences INTEGER NOT NULL,
    max_length     INTEGER NOT NULL,
    n_fsms         INTEGER NOT NULL,
    n_fsm_outputs  INTEGER NOT NULL,
    seed           INTEGER,
    l_g            INTEGER,
    tgen_mode      TEXT,
    tgen_max_len   INTEGER,
    compaction_sims INTEGER,
    static_prune   INTEGER,
    config_fp      TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS timings (
    fingerprint TEXT NOT NULL,
    phase       TEXT NOT NULL,
    seconds     REAL NOT NULL,
    PRIMARY KEY (fingerprint, phase)
);
CREATE TABLE IF NOT EXISTS front_points (
    fingerprint TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    circuit     TEXT NOT NULL,
    coverage    REAL NOT NULL,
    area        REAL NOT NULL,
    length      INTEGER NOT NULL,
    detected    INTEGER NOT NULL,
    PRIMARY KEY (fingerprint, idx)
);
CREATE TABLE IF NOT EXISTS jobs (
    key      TEXT PRIMARY KEY,
    circuit  TEXT NOT NULL,
    task     TEXT NOT NULL,
    state    TEXT NOT NULL,
    version  INTEGER NOT NULL,
    attempts INTEGER NOT NULL,
    record   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign    TEXT NOT NULL,
    point       INTEGER NOT NULL,
    job_key     TEXT NOT NULL DEFAULT '',
    fingerprint TEXT NOT NULL DEFAULT '',
    factors     TEXT NOT NULL,
    PRIMARY KEY (campaign, point)
);
CREATE TABLE IF NOT EXISTS circuits (
    name     TEXT PRIMARY KEY,
    n_pi     INTEGER NOT NULL,
    n_po     INTEGER NOT NULL,
    n_ff     INTEGER NOT NULL,
    n_gates  INTEGER NOT NULL,
    n_nets   INTEGER NOT NULL,
    depth    INTEGER NOT NULL,
    n_faults INTEGER
);
CREATE TABLE IF NOT EXISTS benchmarks (
    fingerprint    TEXT PRIMARY KEY,
    name           TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    wall_time_s    REAL,
    host_cpus      INTEGER,
    git_describe   TEXT NOT NULL DEFAULT ''
);
"""


def payload_fingerprint(payload: Mapping[str, object]) -> str:
    """Content address of one artifact payload (canonical JSON)."""
    return config_fingerprint(dict(payload))[:_FINGERPRINT_CHARS]


@dataclass
class IngestReport:
    """What one ingest pass did, per table."""

    runs_new: int = 0
    runs_dup: int = 0
    table6_rows: int = 0
    timings: int = 0
    front_points: int = 0
    jobs: int = 0
    benchmarks: int = 0
    circuits: int = 0
    skipped: List[str] = field(default_factory=list)

    def merge(self, other: "IngestReport") -> "IngestReport":
        self.runs_new += other.runs_new
        self.runs_dup += other.runs_dup
        self.table6_rows += other.table6_rows
        self.timings += other.timings
        self.front_points += other.front_points
        self.jobs += other.jobs
        self.benchmarks += other.benchmarks
        self.circuits += other.circuits
        self.skipped.extend(other.skipped)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs_new": self.runs_new,
            "runs_dup": self.runs_dup,
            "table6_rows": self.table6_rows,
            "timings": self.timings,
            "front_points": self.front_points,
            "jobs": self.jobs,
            "benchmarks": self.benchmarks,
            "circuits": self.circuits,
            "skipped": list(self.skipped),
        }

    def describe(self) -> str:
        """One human-readable summary line."""
        return (
            f"ingested {self.runs_new} new run(s) "
            f"({self.runs_dup} duplicate(s) skipped): "
            f"{self.table6_rows} table6 row(s), {self.timings} timing(s), "
            f"{self.front_points} front point(s), {self.jobs} job(s), "
            f"{self.benchmarks} benchmark(s), {self.circuits} circuit(s)"
        )


def _canonical(payload: Mapping[str, object]) -> str:
    return json.dumps(dict(payload), sort_keys=True, default=repr)


class CampaignStore:
    """One sqlite campaign warehouse at ``path``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._init_schema()

    # -- connection / schema ------------------------------------------------

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        try:
            conn = sqlite3.connect(str(self.path))
        except sqlite3.Error as exc:
            raise CampaignError(
                f"cannot open campaign store {self.path}: {exc}"
            ) from exc
        try:
            conn.row_factory = sqlite3.Row
            yield conn
            conn.commit()
        except sqlite3.Error as exc:
            conn.rollback()
            raise CampaignError(
                f"campaign store {self.path}: {exc}"
            ) from exc
        finally:
            conn.close()

    def _init_schema(self) -> None:
        parent = self.path.parent
        if parent and not parent.exists():
            try:
                parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CampaignError(
                    f"cannot create store directory {parent}: {exc}"
                ) from exc
        with self._connect() as conn:
            version = int(conn.execute("PRAGMA user_version").fetchone()[0])
            if version > SCHEMA_VERSION:
                raise CampaignError(
                    f"{self.path} uses store schema v{version}; this build "
                    f"understands up to v{SCHEMA_VERSION}"
                )
            # WAL survives in the file; a filesystem that refuses WAL
            # (some network mounts) silently keeps the default journal.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    # -- low-level ingest primitives ----------------------------------------

    def _insert_run(
        self,
        conn: sqlite3.Connection,
        fingerprint: str,
        kind: str,
        circuit: str,
        source: str,
        payload: Mapping[str, object],
        report: IngestReport,
    ) -> bool:
        """Record the raw artifact; False when already present."""
        cursor = conn.execute(
            "INSERT OR IGNORE INTO runs "
            "(fingerprint, kind, circuit, source, payload) "
            "VALUES (?, ?, ?, ?, ?)",
            (fingerprint, kind, circuit, source, _canonical(payload)),
        )
        if cursor.rowcount:
            report.runs_new += 1
            return True
        report.runs_dup += 1
        return False

    def _insert_timings(
        self,
        conn: sqlite3.Connection,
        fingerprint: str,
        phases: Mapping[str, object],
        report: IngestReport,
    ) -> None:
        for phase in sorted(phases):
            value = phases[phase]
            if not isinstance(value, (int, float)):
                continue
            cursor = conn.execute(
                "INSERT OR IGNORE INTO timings "
                "(fingerprint, phase, seconds) VALUES (?, ?, ?)",
                (fingerprint, str(phase), float(value)),
            )
            report.timings += cursor.rowcount
    # -- per-format ingest --------------------------------------------------

    def ingest_flow_payload(
        self,
        payload: Mapping[str, object],
        source: str = "",
        config: Optional[Mapping[str, object]] = None,
        timings: Optional[Mapping[str, object]] = None,
    ) -> IngestReport:
        """One flow result payload (the serve result / journal shape).

        ``config`` (job-spec-like knobs) and ``timings`` (phase wall
        seconds) ride along when the caller knows them — a serve job
        record does, a bare result file does not.
        """
        report = IngestReport()
        table6 = payload.get("table6")
        if not isinstance(table6, Mapping):
            raise CampaignError(
                f"flow payload has no table6 section ({source or 'inline'})"
            )
        identity: Dict[str, object] = {"kind": "flow", "payload": dict(payload)}
        if config:
            identity["config"] = {
                k: config[k] for k in sorted(config) if k in _CONFIG_FIELDS
            }
        fingerprint = payload_fingerprint(identity)
        circuit = str(payload.get("circuit", table6.get("circuit", "")))
        with self._connect() as conn:
            if self._insert_run(
                conn, fingerprint, "flow", circuit, source, payload, report
            ):
                try:
                    row = {f: int(table6[f]) for f in _TABLE6_FIELDS[1:]}
                except (KeyError, TypeError, ValueError) as exc:
                    raise CampaignError(
                        f"malformed table6 row in {source or 'payload'}: {exc}"
                    ) from exc
                cfg = dict(config or {})
                conn.execute(
                    "INSERT OR IGNORE INTO table6_rows (fingerprint, circuit,"
                    " given_len, given_det, n_sequences, n_subsequences,"
                    " max_length, n_fsms, n_fsm_outputs, seed, l_g,"
                    " tgen_mode, tgen_max_len, compaction_sims, static_prune,"
                    " config_fp) VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        str(table6.get("circuit", circuit)),
                        row["given_len"],
                        row["given_det"],
                        row["n_sequences"],
                        row["n_subsequences"],
                        row["max_length"],
                        row["n_fsms"],
                        row["n_fsm_outputs"],
                        _maybe_int(cfg.get("seed")),
                        _maybe_int(cfg.get("l_g")),
                        _maybe_str(cfg.get("tgen_mode")),
                        _maybe_int(cfg.get("tgen_max_len")),
                        _maybe_int(cfg.get("compaction_sims")),
                        _maybe_int(cfg.get("static_prune")),
                        str(cfg.get("config_fp", "")),
                    ),
                )
                report.table6_rows += 1
                if timings:
                    self._insert_timings(conn, fingerprint, timings, report)
        self.ensure_circuit(circuit, report=report)
        return report

    def ingest_optimize_payload(
        self, payload: Mapping[str, object], source: str = ""
    ) -> IngestReport:
        """One optimizer front payload (``kind == "optimize-front"``)."""
        report = IngestReport()
        front = payload.get("front")
        if not isinstance(front, Sequence) or isinstance(front, (str, bytes)):
            raise CampaignError(
                f"optimize payload has no front ({source or 'inline'})"
            )
        fingerprint = payload_fingerprint(payload)
        circuit = str(payload.get("circuit", ""))
        with self._connect() as conn:
            if self._insert_run(
                conn, fingerprint, "optimize", circuit, source, payload, report
            ):
                for idx, point in enumerate(front):
                    if not isinstance(point, Mapping):
                        continue
                    cursor = conn.execute(
                        "INSERT OR IGNORE INTO front_points "
                        "(fingerprint, idx, circuit, coverage, area, length,"
                        " detected) VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            idx,
                            circuit,
                            float(point.get("coverage", 0.0)),  # type: ignore[arg-type]
                            float(point.get("area", 0.0)),  # type: ignore[arg-type]
                            int(point.get("length", 0)),  # type: ignore[arg-type]
                            int(point.get("detected", 0)),  # type: ignore[arg-type]
                        ),
                    )
                    report.front_points += cursor.rowcount
        self.ensure_circuit(circuit, report=report)
        return report

    def ingest_job_record(
        self, record: Mapping[str, object], source: str = ""
    ) -> IngestReport:
        """One serve job record (``kind == "job"``); freshest version wins."""
        report = IngestReport()
        spec = record.get("spec")
        if record.get("kind") != "job" or not isinstance(spec, Mapping):
            raise CampaignError(
                f"not a job record ({source or 'inline'})"
            )
        key = str(record.get("key", ""))
        version = _maybe_int(record.get("version")) or 0
        with self._connect() as conn:
            existing = conn.execute(
                "SELECT version FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if existing is not None and int(existing["version"]) >= version:
                return report
            conn.execute(
                "INSERT OR REPLACE INTO jobs "
                "(key, circuit, task, state, version, attempts, record) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    str(spec.get("circuit", "")),
                    str(spec.get("task", "flow")),
                    str(record.get("state", "")),
                    version,
                    _maybe_int(record.get("attempts")) or 0,
                    _canonical(record),
                ),
            )
            report.jobs += 1
        # Phase timings ride on terminal job stats as "phase:<name>".
        stats = record.get("stats")
        if isinstance(stats, Mapping):
            phases = {
                name[len("phase:"):]: value
                for name, value in stats.items()
                if str(name).startswith("phase:")
                and isinstance(value, (int, float))
            }
            if phases:
                fingerprint = payload_fingerprint(
                    {"kind": "job-timings", "key": key, "version": version}
                )
                with self._connect() as conn:
                    self._insert_timings(conn, fingerprint, phases, report)
        return report

    def ingest_journal(
        self, path: Union[str, Path], source: str = ""
    ) -> IngestReport:
        """A resilience checkpoint journal (flow checkpoints, serve
        queue journals and journal shards all share the layout)."""
        report = IngestReport()
        payload = _read_json(path)
        entries = payload.get("entries")
        if not isinstance(entries, Mapping):
            raise CampaignError(f"{path} is not a checkpoint journal")
        label = source or str(path)
        for key in sorted(entries):
            entry = entries[key]
            if not isinstance(entry, Mapping):
                report.skipped.append(f"{label}:{key}")
                continue
            kind = entry.get("kind")
            if kind == "flow":
                table6 = entry.get("table6")
                timings = entry.get("timings")
                if not isinstance(table6, Mapping):
                    report.skipped.append(f"{label}:{key}")
                    continue
                config_fp = ""
                parts = str(key).split(":")
                if len(parts) == 3 and parts[0] == "flow":
                    config_fp = parts[2]
                report.merge(
                    self.ingest_flow_payload(
                        {
                            "circuit": table6.get("circuit", ""),
                            "table6": dict(table6),
                        },
                        source=f"{label}:{key}",
                        config={"config_fp": config_fp},
                        timings=(
                            timings if isinstance(timings, Mapping) else None
                        ),
                    )
                )
            elif kind == "job":
                report.merge(
                    self.ingest_job_record(entry, source=f"{label}:{key}")
                )
            else:
                report.skipped.append(f"{label}:{key}")
        return report

    def ingest_trace(
        self, path: Union[str, Path], source: str = ""
    ) -> IngestReport:
        """A trace artifact: per-phase wall seconds of its flow spans."""
        from repro.trace.compare import phase_durations
        from repro.trace.export import load_trace

        report = IngestReport()
        root, _events = load_trace(path)
        phases = {
            name: seconds
            for name, seconds in phase_durations(root).items()
            if seconds > 0.0 and name not in ("trace", "job")
        }
        payload = {"kind": "trace", "phases": phases}
        fingerprint = payload_fingerprint(
            {"source": source or str(path), **payload}
        )
        with self._connect() as conn:
            if self._insert_run(
                conn, fingerprint, "trace", "", source or str(path),
                payload, report,
            ):
                self._insert_timings(conn, fingerprint, phases, report)
        return report

    def ingest_benchmark(
        self, payload: Mapping[str, object], source: str = ""
    ) -> IngestReport:
        """One ``benchmarks/results/*.json`` artifact.

        Accepts both the enveloped shape (``schema_version`` +
        ``payload``) and the bare legacy shape; nested optimizer
        payloads (``circuits`` maps) and phase tables are projected
        into their own tables.
        """
        report = IngestReport()
        envelope: Dict[str, object] = {}
        inner = payload
        if "schema_version" in payload and isinstance(
            payload.get("payload"), Mapping
        ):
            envelope = dict(payload)
            inner = payload["payload"]  # type: ignore[assignment]
        if not isinstance(inner, Mapping) or "name" not in inner:
            raise CampaignError(
                f"not a benchmark artifact ({source or 'inline'})"
            )
        fingerprint = payload_fingerprint(payload)
        name = str(inner.get("name", ""))
        with self._connect() as conn:
            if self._insert_run(
                conn, fingerprint, "benchmark", "", source or name,
                payload, report,
            ):
                conn.execute(
                    "INSERT OR IGNORE INTO benchmarks (fingerprint, name,"
                    " schema_version, wall_time_s, host_cpus, git_describe)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        name,
                        _maybe_int(envelope.get("schema_version")) or 0,
                        _maybe_float(inner.get("wall_time_s")),
                        _maybe_int(envelope.get("host_cpus")),
                        str(envelope.get("git_describe", "")),
                    ),
                )
                report.benchmarks += 1
                phases = inner.get("phases")
                if isinstance(phases, Mapping):
                    self._insert_timings(conn, fingerprint, phases, report)
        for stats in _envelope_circuits(envelope):
            self.register_circuit_stats(stats, report=report)
        rows = inner.get("rows")
        if isinstance(rows, Sequence) and not isinstance(rows, (str, bytes)):
            for row in rows:
                if isinstance(row, Mapping) and all(
                    field_name in row for field_name in _TABLE6_FIELDS
                ):
                    report.merge(
                        self.ingest_flow_payload(
                            {
                                "circuit": row.get("circuit", ""),
                                "table6": dict(row),
                            },
                            source=(
                                f"{source or name}:row:{row.get('circuit')}"
                            ),
                        )
                    )
        nested = inner.get("circuits")
        if isinstance(nested, Mapping):
            for circuit_name in sorted(nested):
                sub = nested[circuit_name]
                if (
                    isinstance(sub, Mapping)
                    and sub.get("kind") == "optimize-front"
                ):
                    report.merge(
                        self.ingest_optimize_payload(
                            sub, source=f"{source or name}:{circuit_name}"
                        )
                    )
        return report

    # -- dispatching ingest --------------------------------------------------

    def ingest_path(self, path: Union[str, Path]) -> IngestReport:
        """Ingest one file or directory, sniffing the artifact format.

        Directories recurse over ``*.json`` files (sorted); a serve
        state dir's layout (queue journal, shards, results, traces) is
        just files, so it needs no special casing.
        """
        path = Path(path)
        if path.is_dir():
            report = IngestReport()
            for child in sorted(path.rglob("*.json")):
                if child.name.startswith("."):
                    continue  # atomic-write temp files
                report.merge(self.ingest_path(child))
            return report
        payload = _read_json(path)
        source = str(path)
        if isinstance(payload.get("entries"), Mapping):
            return self.ingest_journal(path, source=source)
        if payload.get("kind") == "job":
            return self.ingest_job_record(payload, source=source)
        if payload.get("kind") == "optimize-front":
            return self.ingest_optimize_payload(payload, source=source)
        if isinstance(payload.get("table6"), Mapping):
            return self.ingest_flow_payload(payload, source=source)
        if "spans" in payload:
            return self.ingest_trace(path, source=source)
        if "schema_version" in payload or "name" in payload:
            return self.ingest_benchmark(payload, source=source)
        report = IngestReport()
        report.skipped.append(source)
        return report

    # -- circuits ------------------------------------------------------------

    def register_circuit_stats(
        self,
        stats: Mapping[str, object],
        n_faults: Optional[int] = None,
        report: Optional[IngestReport] = None,
    ) -> None:
        """Record circuit structural stats (idempotent by name)."""
        name = str(stats.get("name", ""))
        if not name:
            return
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO circuits "
                "(name, n_pi, n_po, n_ff, n_gates, n_nets, depth, n_faults)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    _maybe_int(stats.get("n_pi")) or 0,
                    _maybe_int(stats.get("n_po")) or 0,
                    _maybe_int(stats.get("n_ff")) or 0,
                    _maybe_int(stats.get("n_gates")) or 0,
                    _maybe_int(stats.get("n_nets")) or 0,
                    _maybe_int(stats.get("depth")) or 0,
                    n_faults,
                ),
            )
            if cursor.rowcount and report is not None:
                report.circuits += 1
            if n_faults is not None:
                conn.execute(
                    "UPDATE circuits SET n_faults = ? "
                    "WHERE name = ? AND n_faults IS NULL",
                    (n_faults, name),
                )

    def ensure_circuit(
        self, name: str, report: Optional[IngestReport] = None
    ) -> bool:
        """Make sure a library circuit's stats (and collapsed fault
        count) are in the store; False for unknown circuits."""
        if not name:
            return False
        with self._connect() as conn:
            row = conn.execute(
                "SELECT n_faults FROM circuits WHERE name = ?", (name,)
            ).fetchone()
        if row is not None and row["n_faults"] is not None:
            return True
        try:
            from repro.circuit.library import load_circuit
            from repro.circuit.stats import circuit_stats
            from repro.sim.collapse import collapse_faults

            circuit = load_circuit(name)
        except Exception:  # noqa: BLE001 - not a library circuit: fine
            return row is not None
        stats = asdict(circuit_stats(circuit))
        stats.pop("gate_mix", None)
        self.register_circuit_stats(
            stats, n_faults=len(collapse_faults(circuit)), report=report
        )
        return True

    # -- campaigns ------------------------------------------------------------

    def record_campaign_point(
        self,
        campaign: str,
        point: int,
        factors: Mapping[str, object],
        job_key: str = "",
        fingerprint: str = "",
    ) -> None:
        """Bind one design point to its job and ingested run."""
        if not campaign:
            raise CampaignError("campaign name must be non-empty")
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO campaigns "
                "(campaign, point, job_key, fingerprint, factors) "
                "VALUES (?, ?, ?, ?, ?)",
                (campaign, int(point), job_key, fingerprint,
                 _canonical(factors)),
            )

    # -- queries ------------------------------------------------------------

    def _rows(
        self, sql: str, args: Tuple[object, ...] = ()
    ) -> List[Dict[str, object]]:
        with self._connect() as conn:
            return [dict(row) for row in conn.execute(sql, args).fetchall()]

    def query_table6(
        self,
        circuit: Optional[str] = None,
        campaign: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Table-6 rows joined with circuit stats (adds ``coverage``),
        deterministically ordered."""
        sql = (
            "SELECT t.*, c.n_faults, c.n_gates, c.n_ff, c.n_pi,"
            " CAST(t.given_det AS REAL) / NULLIF(c.n_faults, 0) AS coverage"
        )
        args: List[object] = []
        if campaign is not None:
            sql += (
                ", p.campaign AS campaign, p.point AS point"
                " FROM campaigns p JOIN table6_rows t"
                " ON t.fingerprint = p.fingerprint"
                " LEFT JOIN circuits c ON c.name = t.circuit"
                " WHERE p.campaign = ?"
            )
            args.append(campaign)
            if circuit is not None:
                sql += " AND t.circuit = ?"
                args.append(circuit)
            sql += " ORDER BY p.campaign, p.point"
        else:
            sql += (
                " FROM table6_rows t"
                " LEFT JOIN circuits c ON c.name = t.circuit"
            )
            if circuit is not None:
                sql += " WHERE t.circuit = ?"
                args.append(circuit)
            sql += " ORDER BY t.circuit, t.fingerprint"
        return self._rows(sql, tuple(args))

    def query_timings(
        self, phase: Optional[str] = None
    ) -> List[Dict[str, object]]:
        sql = "SELECT fingerprint, phase, seconds FROM timings"
        args: List[object] = []
        if phase is not None:
            sql += " WHERE phase = ?"
            args.append(phase)
        sql += " ORDER BY fingerprint, phase"
        return self._rows(sql, tuple(args))

    def query_fronts(
        self, circuit: Optional[str] = None
    ) -> List[Dict[str, object]]:
        sql = (
            "SELECT fingerprint, idx, circuit, coverage, area, length,"
            " detected FROM front_points"
        )
        args: List[object] = []
        if circuit is not None:
            sql += " WHERE circuit = ?"
            args.append(circuit)
        sql += " ORDER BY circuit, fingerprint, idx"
        return self._rows(sql, tuple(args))

    def query_jobs(
        self, state: Optional[str] = None
    ) -> List[Dict[str, object]]:
        sql = "SELECT key, circuit, task, state, version, attempts FROM jobs"
        args: List[object] = []
        if state is not None:
            sql += " WHERE state = ?"
            args.append(state)
        sql += " ORDER BY circuit, key"
        return self._rows(sql, tuple(args))

    def query_campaigns(
        self, name: Optional[str] = None
    ) -> List[Dict[str, object]]:
        sql = (
            "SELECT campaign, point, job_key, fingerprint, factors"
            " FROM campaigns"
        )
        args: List[object] = []
        if name is not None:
            sql += " WHERE campaign = ?"
            args.append(name)
        sql += " ORDER BY campaign, point"
        rows = self._rows(sql, tuple(args))
        for row in rows:
            try:
                row["factors"] = json.loads(str(row["factors"]))
            except ValueError:
                pass
        return rows

    def query_circuits(self) -> List[Dict[str, object]]:
        return self._rows(
            "SELECT name, n_pi, n_po, n_ff, n_gates, n_nets, depth,"
            " n_faults FROM circuits ORDER BY name"
        )

    def query_benchmarks(self) -> List[Dict[str, object]]:
        return self._rows(
            "SELECT fingerprint, name, schema_version, wall_time_s,"
            " host_cpus, git_describe FROM benchmarks"
            " ORDER BY name, fingerprint"
        )

    def sql(self, query: str) -> List[Dict[str, object]]:
        """Run one read-only SELECT (the power-user escape hatch)."""
        if not query.lstrip().lower().startswith("select"):
            raise CampaignError(
                "only SELECT statements are allowed through sql()"
            )
        with self._connect() as conn:
            conn.execute("PRAGMA query_only = ON")
            try:
                return [
                    dict(row) for row in conn.execute(query).fetchall()
                ]
            except sqlite3.Error as exc:
                raise CampaignError(f"query failed: {exc}") from exc

    def summary(self) -> Dict[str, int]:
        """Row counts per table (the ``query --summary`` view)."""
        out: Dict[str, int] = {}
        with self._connect() as conn:
            for table in (
                "runs",
                "table6_rows",
                "timings",
                "front_points",
                "jobs",
                "campaigns",
                "circuits",
                "benchmarks",
            ):
                out[table] = int(
                    conn.execute(
                        f"SELECT COUNT(*) FROM {table}"  # noqa: S608
                    ).fetchone()[0]
                )
        return out

    def dump(self) -> Dict[str, List[Dict[str, object]]]:
        """Every table, deterministically ordered (the equivalence and
        idempotency property tests compare these)."""
        return {
            "runs": self._rows(
                "SELECT fingerprint, kind, circuit, source, payload"
                " FROM runs ORDER BY fingerprint"
            ),
            "table6_rows": self.query_table6(),
            "timings": self.query_timings(),
            "front_points": self.query_fronts(),
            "jobs": self.query_jobs(),
            "campaigns": self.query_campaigns(),
            "circuits": self.query_circuits(),
            "benchmarks": self.query_benchmarks(),
        }


def _read_json(path: Union[str, Path]) -> Dict[str, object]:
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise CampaignError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise CampaignError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CampaignError(f"{path} is not a JSON object")
    return payload


def _envelope_circuits(
    envelope: Mapping[str, object],
) -> List[Dict[str, object]]:
    circuits = envelope.get("circuits")
    if not isinstance(circuits, Mapping):
        return []
    out: List[Dict[str, object]] = []
    for name in sorted(circuits):
        stats = circuits[name]
        if isinstance(stats, Mapping):
            out.append({"name": name, **{str(k): v for k, v in stats.items()}})
    return out


def _maybe_int(value: object) -> Optional[int]:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return None


def _maybe_float(value: object) -> Optional[float]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def _maybe_str(value: object) -> Optional[str]:
    return str(value) if isinstance(value, str) else None
