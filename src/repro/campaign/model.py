"""Campaign sizing models: deterministic least squares over the store.

Before spending simulation budget on a big factorial, fit what the
warehouse already knows: coverage and TPG cost as a function of
circuit structure (``n_pi``, ``n_ff``, ``n_gates``) and the flow knobs
(``l_g``, ``tgen_max_len``, ``compaction_sims``).  Everything is
stdlib float arithmetic — ordinary least squares solved by normal
equations with partially-pivoted Gaussian elimination — so the same
store always yields the same coefficients, residuals and suggestions.

Honesty is enforced structurally: the headline generalization numbers
are **leave-one-circuit-out** — each circuit's residual comes from a
model that never saw that circuit — because campaign sizing is always
an extrapolation question ("what will this knob do on a circuit I
have not swept yet"), not an interpolation one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.store import CampaignStore
from repro.errors import CampaignError

_PIVOT_EPS = 1e-12

#: Feature vector layout (index 0 is the intercept).
FEATURE_NAMES = (
    "intercept",
    "log2_n_gates",
    "log2_n_ff",
    "log2_n_pi",
    "log2_l_g",
    "log2_tgen_max_len",
)


def _log2(value: object) -> float:
    number = float(value) if isinstance(value, (int, float)) else 0.0
    return math.log2(number) if number > 0 else 0.0


def _features(row: Mapping[str, object]) -> List[float]:
    return [
        1.0,
        _log2(row.get("n_gates")),
        _log2(row.get("n_ff")),
        _log2(row.get("n_pi")),
        _log2(row.get("l_g")),
        _log2(row.get("tgen_max_len")),
    ]


def tpg_area_estimate(row: Mapping[str, object]) -> float:
    """Closed-form TPG gate-equivalents for one Table-6 row.

    Mirrors the shape of :class:`repro.hw.cost.TpgCost.
    gate_equivalents` (``literals/2 + 6·flops``) without synthesizing:
    flops are the subsequence-length counter, the subsequence-index
    counter and one state register per FSM; literals are the FSM
    next-state/output logic (four per FSM output) plus the per-input
    weight muxing (two per primary input).  It is a *proxy* — the
    model's target, not a replacement for real synthesis — but it is
    monotone in exactly the quantities the paper's area argument is.
    """
    max_length = max(int(row.get("max_length", 0) or 0), 0)
    n_subsequences = max(int(row.get("n_subsequences", 0) or 0), 0)
    n_fsms = max(int(row.get("n_fsms", 0) or 0), 0)
    n_fsm_outputs = max(int(row.get("n_fsm_outputs", 0) or 0), 0)
    n_pi = max(int(row.get("n_pi", 0) or 0), 0)
    flops = (
        math.ceil(math.log2(max_length + 1)) if max_length else 0
    ) + (
        math.ceil(math.log2(n_subsequences + 1)) if n_subsequences else 0
    ) + n_fsms
    literals = 4 * n_fsm_outputs + 2 * n_pi
    return literals / 2 + 6 * flops


def _solve(
    matrix: List[List[float]], rhs: List[float]
) -> List[float]:
    """Gaussian elimination with partial pivoting (in place)."""
    n = len(rhs)
    for col in range(n):
        pivot_row = max(
            range(col, n), key=lambda r: abs(matrix[r][col])
        )
        if abs(matrix[pivot_row][col]) < _PIVOT_EPS:
            raise CampaignError(
                "under-determined model: design matrix is singular "
                "(need more distinct configurations in the store)"
            )
        if pivot_row != col:
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
            rhs[col], rhs[pivot_row] = rhs[pivot_row], rhs[col]
        for row in range(col + 1, n):
            factor = matrix[row][col] / matrix[col][col]
            if factor == 0.0:
                continue
            for k in range(col, n):
                matrix[row][k] -= factor * matrix[col][k]
            rhs[row] -= factor * rhs[col]
    out = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = rhs[row]
        for k in range(row + 1, n):
            acc -= matrix[row][k] * out[k]
        out[row] = acc / matrix[row][row]
    return out


def _active_columns(rows: Sequence[Sequence[float]]) -> List[int]:
    """The intercept plus every column that actually varies.

    A grid that holds a knob (or sweeps one circuit, freezing the
    structural features) contributes no information about that column;
    dropping it keeps small stores fittable instead of fatally
    under-determined.  The intercept absorbs the constants.
    """
    n_features = len(rows[0])
    active = [0]
    for col in range(1, n_features):
        values = {round(row[col], 12) for row in rows}
        if len(values) > 1:
            active.append(col)
    return active


def _ols(
    rows: Sequence[Sequence[float]], targets: Sequence[float]
) -> List[float]:
    """Least squares via normal equations ``XᵀX β = Xᵀy``.

    Constant columns are dropped first (their coefficient is reported
    as 0; the intercept carries their constant part).  If the active
    columns are still collinear — two circuits cannot separate three
    structural features — the solve deterministically falls back to a
    tiny ridge (``λ = 10⁻⁶·tr(XᵀX)/n``) rather than failing, which
    keeps predictions defined while barely perturbing a well-posed
    fit.
    """
    n_features = len(rows[0])
    active = _active_columns(rows)
    if len(rows) < len(active):
        raise CampaignError(
            f"under-determined model: {len(rows)} observation(s) for "
            f"{len(active)} varying coefficient(s)"
        )
    k = len(active)
    xtx = [[0.0] * k for _ in range(k)]
    xty = [0.0] * k
    for row, y in zip(rows, targets):
        for i, ci in enumerate(active):
            xty[i] += row[ci] * y
            for j, cj in enumerate(active):
                xtx[i][j] += row[ci] * row[cj]
    try:
        beta_active = _solve(
            [list(r) for r in xtx], list(xty)
        )
    except CampaignError:
        ridge = 1e-6 * sum(xtx[i][i] for i in range(k)) / k
        for i in range(1, k):  # never shrink the intercept
            xtx[i][i] += ridge
        beta_active = _solve(xtx, xty)
    beta = [0.0] * n_features
    for coefficient, col in zip(beta_active, active):
        beta[col] = coefficient
    return beta


@dataclass
class RegressionModel:
    """One fitted target: coefficients plus honesty metrics."""

    target: str
    features: Tuple[str, ...]
    coefficients: Tuple[float, ...]
    n_observations: int
    r2: float
    #: Mean |residual| per circuit from a fit that excluded it.
    loco_residuals: Dict[str, float] = field(default_factory=dict)

    def predict_features(self, features: Sequence[float]) -> float:
        return sum(c * x for c, x in zip(self.coefficients, features))

    def predict(self, row: Mapping[str, object]) -> float:
        """Predict from a store row / row-shaped mapping."""
        return self.predict_features(_features(row))

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "features": list(self.features),
            "coefficients": [round(c, 10) for c in self.coefficients],
            "n_observations": self.n_observations,
            "r2": round(self.r2, 6),
            "loco_residuals": {
                name: round(value, 6)
                for name, value in sorted(self.loco_residuals.items())
            },
        }


def _target_value(row: Mapping[str, object], target: str) -> Optional[float]:
    if target == "coverage":
        value = row.get("coverage")
        return float(value) if isinstance(value, (int, float)) else None
    if target == "tpg_gate_equivalents":
        return tpg_area_estimate(row)
    raise CampaignError(f"unknown model target {target!r}")


def _fit_one(
    rows: Sequence[Mapping[str, object]], target: str
) -> RegressionModel:
    observations: List[Tuple[str, List[float], float]] = []
    for row in rows:
        y = _target_value(row, target)
        if y is None:
            continue
        observations.append((str(row.get("circuit", "")), _features(row), y))
    if not observations:
        raise CampaignError(
            f"no usable observations for target {target!r} — ingest "
            "campaign results (with circuit stats) first"
        )
    xs = [obs[1] for obs in observations]
    ys = [obs[2] for obs in observations]
    beta = _ols(xs, ys)
    mean_y = sum(ys) / len(ys)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - sum(c * f for c, f in zip(beta, x))) ** 2
        for x, y in zip(xs, ys)
    )
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    loco: Dict[str, float] = {}
    circuits = sorted({obs[0] for obs in observations})
    if len(circuits) >= 2:
        for held_out in circuits:
            train = [obs for obs in observations if obs[0] != held_out]
            test = [obs for obs in observations if obs[0] == held_out]
            try:
                fold = _ols([o[1] for o in train], [o[2] for o in train])
            except CampaignError:
                continue  # fold under-determined: no honest number
            residuals = [
                abs(y - sum(c * f for c, f in zip(fold, x)))
                for _, x, y in test
            ]
            loco[held_out] = sum(residuals) / len(residuals)
    return RegressionModel(
        target=target,
        features=FEATURE_NAMES,
        coefficients=tuple(beta),
        n_observations=len(observations),
        r2=r2,
        loco_residuals=loco,
    )


def fit_models(store: CampaignStore) -> Dict[str, RegressionModel]:
    """Fit both targets over every configured Table-6 row in the store.

    Rows without knob columns (journal rows that only carried a
    fingerprint) or without a known fault count (no coverage) are
    skipped per target, not fatal.
    """
    rows = [
        row
        for row in store.query_table6()
        if row.get("l_g") is not None and row.get("tgen_max_len") is not None
    ]
    if not rows:
        raise CampaignError(
            "store has no configured table6 rows; run a campaign (or "
            "ingest serve job records) before fitting"
        )
    return {
        "coverage": _fit_one(rows, "coverage"),
        "tpg_gate_equivalents": _fit_one(rows, "tpg_gate_equivalents"),
    }


#: Candidate knob ladders ``suggest`` searches (powers of two).
_LG_LADDER = (64, 128, 256, 512, 1024, 2048)
_TGEN_LADDER = (500, 1000, 2000, 4000, 8000)


def suggest(
    store: CampaignStore,
    circuit: str,
    target_coverage: float = 0.9,
    models: Optional[Dict[str, RegressionModel]] = None,
) -> Dict[str, object]:
    """Size a campaign for ``circuit``: the cheapest predicted knob
    setting reaching ``target_coverage``.

    Scans a deterministic (``l_g`` × ``tgen_max_len``) ladder with the
    fitted models, returning the setting with the smallest predicted
    TPG cost whose predicted coverage clears the target — or, if none
    does, the setting with the best predicted coverage.  The answer
    carries the models' honesty metrics so a caller can see how much
    to trust it.
    """
    if not 0.0 < target_coverage <= 1.0:
        raise CampaignError(
            f"target coverage {target_coverage} not in (0, 1]"
        )
    fitted = models if models is not None else fit_models(store)
    stats_rows = [
        row for row in store.query_circuits() if row["name"] == circuit
    ]
    if not stats_rows:
        raise CampaignError(
            f"circuit {circuit!r} is not in the store; ingest a run "
            "for it (or any artifact naming it) first"
        )
    stats = stats_rows[0]
    coverage_model = fitted["coverage"]
    area_model = fitted["tpg_gate_equivalents"]
    candidates: List[Dict[str, object]] = []
    for l_g in _LG_LADDER:
        for tgen_max_len in _TGEN_LADDER:
            row = {**stats, "l_g": l_g, "tgen_max_len": tgen_max_len}
            coverage = min(max(coverage_model.predict(row), 0.0), 1.0)
            area = max(area_model.predict(row), 0.0)
            candidates.append(
                {
                    "l_g": l_g,
                    "tgen_max_len": tgen_max_len,
                    "predicted_coverage": round(coverage, 6),
                    "predicted_tpg_gate_equivalents": round(area, 3),
                }
            )
    reaching = [
        c
        for c in candidates
        if float(c["predicted_coverage"]) >= target_coverage  # type: ignore[arg-type]
    ]
    if reaching:
        best = min(
            reaching,
            key=lambda c: (
                float(c["predicted_tpg_gate_equivalents"]),  # type: ignore[arg-type]
                int(c["l_g"]),  # type: ignore[arg-type]
                int(c["tgen_max_len"]),  # type: ignore[arg-type]
            ),
        )
        met = True
    else:
        best = max(
            candidates,
            key=lambda c: (
                float(c["predicted_coverage"]),  # type: ignore[arg-type]
                -float(c["predicted_tpg_gate_equivalents"]),  # type: ignore[arg-type]
            ),
        )
        met = False
    return {
        "circuit": circuit,
        "target_coverage": target_coverage,
        "target_met": met,
        "recommendation": best,
        "candidates": candidates,
        "models": {name: m.to_dict() for name, m in sorted(fitted.items())},
    }
