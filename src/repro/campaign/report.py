"""Campaign dashboards: one self-contained HTML file per store.

``repro campaign report`` renders everything the warehouse knows into
a single HTML document with inline SVG — zero external assets, zero
scripts, zero network, so the file opens identically from a mail
attachment, a CI artifact tab or ``file://``.  And zero wall-clock:
the bytes are a pure function of the store contents, so the golden
test can (and does) demand byte-identical output across reruns.

Four views:

* **coverage** — fault coverage per configured Table-6 row, grouped
  by circuit;
* **fronts** — coverage vs. TPG gate-equivalents, the paper's central
  trade-off, from optimizer front points and flow rows alike;
* **timings** — mean per-phase wall seconds across every ingested
  run (the one deliberately machine-dependent view);
* **campaign grids** — per-campaign factor heatmaps colored by
  coverage.

Text and JSON emitters ride along for terminals and scripts; all
three honour the CLI's one-line error contract by raising
:class:`~repro.errors.CampaignError` only for a truly unusable store.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.model import fit_models, tpg_area_estimate
from repro.campaign.store import SCHEMA_VERSION, CampaignStore
from repro.errors import CampaignError

_WIDTH = 640
_HEIGHT = 320
_MARGIN = 48

#: Okabe-Ito colorblind-safe cycle (minus black, kept for text).
_PALETTE = (
    "#0072b2",
    "#d55e00",
    "#009e73",
    "#cc79a7",
    "#e69f00",
    "#56b4e9",
    "#f0e442",
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
svg { background: #fcfcfc; border: 1px solid #ddd; }
table { border-collapse: collapse; font-size: 13px; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #f0f0f0; }
.note { color: #666; font-size: 12px; }
"""


def _fmt(value: float) -> str:
    """Fixed-width float text (the determinism anchor for SVG attrs)."""
    return f"{value:.2f}"


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _color(index: int) -> str:
    return _PALETTE[index % len(_PALETTE)]


def _heat(fraction: float) -> str:
    """White → blue ramp for heatmap cells (0 → 1)."""
    f = min(max(fraction, 0.0), 1.0)
    red = round(255 - 155 * f)
    green = round(255 - 141 * f)
    blue = round(255 - 77 * f)
    return f"rgb({red},{green},{blue})"


class _Scale:
    """Linear data→pixel scale with padded domain."""

    def __init__(
        self, lo: float, hi: float, out_lo: float, out_hi: float
    ) -> None:
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo
        self.lo = lo - 0.05 * span
        self.hi = hi + 0.05 * span
        self.out_lo = out_lo
        self.out_hi = out_hi

    def __call__(self, value: float) -> float:
        t = (value - self.lo) / (self.hi - self.lo)
        return self.out_lo + t * (self.out_hi - self.out_lo)

    def ticks(self, n: int = 5) -> List[float]:
        return [
            self.lo + i * (self.hi - self.lo) / (n - 1) for i in range(n)
        ]


def _svg_open(title: str) -> List[str]:
    return [
        f'<svg role="img" aria-label="{_esc(title)}" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        'xmlns="http://www.w3.org/2000/svg">',
    ]


def _axes(
    out: List[str], xs: _Scale, ys: _Scale, x_label: str, y_label: str
) -> None:
    x0, x1 = _MARGIN, _WIDTH - _MARGIN // 2
    y0, y1 = _HEIGHT - _MARGIN, _MARGIN // 2
    out.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#444"/>'
    )
    out.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#444"/>'
    )
    for tick in xs.ticks():
        px = _fmt(xs(tick))
        out.append(
            f'<line x1="{px}" y1="{y0}" x2="{px}" y2="{y0 + 4}" '
            'stroke="#444"/>'
        )
        out.append(
            f'<text x="{px}" y="{y0 + 18}" font-size="11" '
            f'text-anchor="middle" fill="#333">{_fmt(tick)}</text>'
        )
    for tick in ys.ticks():
        py = _fmt(ys(tick))
        out.append(
            f'<line x1="{x0 - 4}" y1="{py}" x2="{x0}" y2="{py}" '
            'stroke="#444"/>'
        )
        out.append(
            f'<text x="{x0 - 8}" y="{py}" font-size="11" dy="4" '
            f'text-anchor="end" fill="#333">{_fmt(tick)}</text>'
        )
    out.append(
        f'<text x="{(x0 + x1) // 2}" y="{_HEIGHT - 8}" font-size="12" '
        f'text-anchor="middle" fill="#111">{_esc(x_label)}</text>'
    )
    out.append(
        f'<text x="14" y="{(y0 + y1) // 2}" font-size="12" '
        f'text-anchor="middle" fill="#111" '
        f'transform="rotate(-90 14 {(y0 + y1) // 2})">'
        f"{_esc(y_label)}</text>"
    )


def _scatter_chart(
    title: str,
    series: "Dict[str, List[Tuple[float, float]]]",
    x_label: str,
    y_label: str,
) -> str:
    """Multi-series scatter with per-series sorted polylines."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        return f'<p class="note">no data for {_esc(title)}</p>'
    xs = _Scale(
        min(p[0] for p in points),
        max(p[0] for p in points),
        _MARGIN,
        _WIDTH - _MARGIN // 2,
    )
    ys = _Scale(
        min(p[1] for p in points),
        max(p[1] for p in points),
        _HEIGHT - _MARGIN,
        _MARGIN // 2,
    )
    out = _svg_open(title)
    _axes(out, xs, ys, x_label, y_label)
    for index, name in enumerate(sorted(series)):
        pts = sorted(series[name])
        if not pts:
            continue
        color = _color(index)
        path = " ".join(f"{_fmt(xs(x))},{_fmt(ys(y))}" for x, y in pts)
        if len(pts) > 1:
            out.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                'stroke-width="1.5" opacity="0.7"/>'
            )
        for x, y in pts:
            out.append(
                f'<circle cx="{_fmt(xs(x))}" cy="{_fmt(ys(y))}" r="3.5" '
                f'fill="{color}"><title>{_esc(name)}: '
                f"({_fmt(x)}, {y:.4f})</title></circle>"
            )
        out.append(
            f'<text x="{_WIDTH - _MARGIN // 2}" '
            f'y="{_MARGIN // 2 + 14 * (index + 1)}" font-size="11" '
            f'text-anchor="end" fill="{color}">{_esc(name)}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def _bar_chart(
    title: str,
    bars: Sequence[Tuple[str, float]],
    y_label: str,
) -> str:
    if not bars:
        return f'<p class="note">no data for {_esc(title)}</p>'
    ys = _Scale(
        0.0,
        max(v for _, v in bars),
        _HEIGHT - _MARGIN,
        _MARGIN // 2,
    )
    ys.lo = 0.0  # bars grow from a true zero baseline
    x0 = _MARGIN
    span = _WIDTH - _MARGIN - _MARGIN // 2
    slot = span / len(bars)
    width = max(min(slot * 0.7, 48.0), 3.0)
    out = _svg_open(title)
    baseline = _HEIGHT - _MARGIN
    out.append(
        f'<line x1="{x0}" y1="{baseline}" x2="{_WIDTH - _MARGIN // 2}" '
        f'y2="{baseline}" stroke="#444"/>'
    )
    for tick in ys.ticks():
        py = _fmt(ys(tick))
        out.append(
            f'<text x="{x0 - 8}" y="{py}" font-size="11" dy="4" '
            f'text-anchor="end" fill="#333">{_fmt(tick)}</text>'
        )
    for index, (label, value) in enumerate(bars):
        left = x0 + slot * index + (slot - width) / 2
        top = ys(value)
        out.append(
            f'<rect x="{_fmt(left)}" y="{_fmt(top)}" '
            f'width="{_fmt(width)}" height="{_fmt(baseline - top)}" '
            f'fill="{_color(0)}"><title>{_esc(label)}: {value:.4f}'
            "</title></rect>"
        )
        cx = left + width / 2
        out.append(
            f'<text x="{_fmt(cx)}" y="{baseline + 14}" font-size="10" '
            f'text-anchor="middle" fill="#333">{_esc(label[:10])}</text>'
        )
    out.append(
        f'<text x="14" y="{_HEIGHT // 2}" font-size="12" '
        f'text-anchor="middle" fill="#111" '
        f'transform="rotate(-90 14 {_HEIGHT // 2})">{_esc(y_label)}</text>'
    )
    out.append("</svg>")
    return "\n".join(out)


def _heatmap(
    title: str,
    x_levels: Sequence[str],
    y_levels: Sequence[str],
    cells: Mapping[Tuple[str, str], float],
    x_label: str,
    y_label: str,
) -> str:
    if not cells:
        return f'<p class="note">no data for {_esc(title)}</p>'
    values = list(cells.values())
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    x0 = _MARGIN + 24
    y0 = _MARGIN // 2 + 8
    cell_w = min((_WIDTH - x0 - _MARGIN // 2) / max(len(x_levels), 1), 96.0)
    cell_h = min(
        (_HEIGHT - y0 - _MARGIN) / max(len(y_levels), 1), 48.0
    )
    out = _svg_open(title)
    for yi, y_level in enumerate(y_levels):
        out.append(
            f'<text x="{x0 - 6}" y="{_fmt(y0 + cell_h * (yi + 0.5))}" '
            f'font-size="11" dy="4" text-anchor="end" fill="#333">'
            f"{_esc(y_level)}</text>"
        )
        for xi, x_level in enumerate(x_levels):
            value = cells.get((x_level, y_level))
            left = x0 + cell_w * xi
            top = y0 + cell_h * yi
            if value is None:
                fill = "#eeeeee"
                label = "–"
            else:
                fill = _heat((value - lo) / span)
                label = f"{value:.3f}"
            out.append(
                f'<rect x="{_fmt(left)}" y="{_fmt(top)}" '
                f'width="{_fmt(cell_w - 2)}" height="{_fmt(cell_h - 2)}" '
                f'fill="{fill}" stroke="#bbb"/>'
            )
            out.append(
                f'<text x="{_fmt(left + cell_w / 2 - 1)}" '
                f'y="{_fmt(top + cell_h / 2 - 1)}" font-size="11" dy="4" '
                f'text-anchor="middle" fill="#1a1a1a">{label}</text>'
            )
    for xi, x_level in enumerate(x_levels):
        out.append(
            f'<text x="{_fmt(x0 + cell_w * (xi + 0.5))}" '
            f'y="{_fmt(y0 + cell_h * len(y_levels) + 16)}" font-size="11" '
            f'text-anchor="middle" fill="#333">{_esc(x_level)}</text>'
        )
    out.append(
        f'<text x="{_fmt(x0 + cell_w * len(x_levels) / 2)}" '
        f'y="{_HEIGHT - 8}" font-size="12" text-anchor="middle" '
        f'fill="#111">{_esc(x_label)}</text>'
    )
    out.append(
        f'<text x="14" y="{_HEIGHT // 2}" font-size="12" '
        f'text-anchor="middle" fill="#111" '
        f'transform="rotate(-90 14 {_HEIGHT // 2})">{_esc(y_label)}</text>'
    )
    out.append("</svg>")
    return "\n".join(out)


# -- data shaping -----------------------------------------------------------


def _coverage_bars(
    rows: Sequence[Mapping[str, object]],
) -> List[Tuple[str, float]]:
    bars: List[Tuple[str, float]] = []
    for row in rows:
        coverage = row.get("coverage")
        if not isinstance(coverage, (int, float)):
            continue
        label = (
            f"{row.get('circuit')}/{str(row.get('fingerprint'))[:6]}"
        )
        bars.append((label, float(coverage)))
    return bars


def _front_series(
    store: CampaignStore,
) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in store.query_fronts():
        name = str(point["circuit"]) or "?"
        series.setdefault(name, []).append(
            (float(point["area"]), float(point["coverage"]))  # type: ignore[arg-type]
        )
    for row in store.query_table6():
        coverage = row.get("coverage")
        if not isinstance(coverage, (int, float)):
            continue
        name = f"{row.get('circuit')} (flow)"
        series.setdefault(name, []).append(
            (tpg_area_estimate(row), float(coverage))
        )
    return {name: sorted(set(pts)) for name, pts in series.items()}


def _timing_bars(store: CampaignStore) -> List[Tuple[str, float]]:
    sums: Dict[str, Tuple[float, int]] = {}
    for row in store.query_timings():
        phase = str(row["phase"])
        total, count = sums.get(phase, (0.0, 0))
        sums[phase] = (total + float(row["seconds"]), count + 1)  # type: ignore[arg-type]
    return [
        (phase, total / count)
        for phase, (total, count) in sorted(sums.items())
    ]


def _campaign_grids(
    store: CampaignStore,
) -> List[Tuple[str, str, str, List[str], List[str], Dict[Tuple[str, str], float]]]:
    """(campaign, x_factor, y_factor, x_levels, y_levels, cells)."""
    coverage_by_fp = {
        str(row["fingerprint"]): float(row["coverage"])  # type: ignore[arg-type]
        for row in store.query_table6()
        if isinstance(row.get("coverage"), (int, float))
    }
    grids = []
    rows = store.query_campaigns()
    names = sorted({str(row["campaign"]) for row in rows})
    for name in names:
        points = [row for row in rows if row["campaign"] == name]
        level_sets: Dict[str, List[str]] = {}
        for point in points:
            factors = point.get("factors")
            if not isinstance(factors, Mapping):
                continue
            for factor in sorted(factors):
                level = str(factors[factor])
                levels = level_sets.setdefault(str(factor), [])
                if level not in levels:
                    levels.append(level)
        varying = [f for f, ls in sorted(level_sets.items()) if len(ls) > 1]
        if not varying:
            continue
        x_factor = varying[0]
        y_factor = varying[1] if len(varying) > 1 else varying[0]
        cells: Dict[Tuple[str, str], float] = {}
        counts: Dict[Tuple[str, str], int] = {}
        for point in points:
            factors = point.get("factors")
            if not isinstance(factors, Mapping):
                continue
            coverage = coverage_by_fp.get(str(point.get("fingerprint")))
            if coverage is None:
                continue
            key = (
                str(factors.get(x_factor, "")),
                str(factors.get(y_factor, "")),
            )
            cells[key] = cells.get(key, 0.0) + coverage
            counts[key] = counts.get(key, 0) + 1
        cells = {k: v / counts[k] for k, v in cells.items()}
        grids.append(
            (
                name,
                x_factor,
                y_factor,
                level_sets[x_factor],
                level_sets[y_factor],
                cells,
            )
        )
    return grids


def _models_section(store: CampaignStore) -> str:
    try:
        models = fit_models(store)
    except CampaignError as exc:
        return f'<p class="note">models not fitted: {_esc(str(exc))}</p>'
    rows = []
    for name in sorted(models):
        model = models[name]
        loco = ", ".join(
            f"{circuit}: {value:.4f}"
            for circuit, value in sorted(model.loco_residuals.items())
        )
        rows.append(
            "<tr>"
            f"<td style=\"text-align:left\">{_esc(name)}</td>"
            f"<td>{model.n_observations}</td>"
            f"<td>{model.r2:.4f}</td>"
            f"<td style=\"text-align:left\">{_esc(loco) or '–'}</td>"
            "</tr>"
        )
    return (
        "<table><tr><th>target</th><th>obs</th><th>R²</th>"
        "<th>LOCO mean |residual| per held-out circuit</th></tr>"
        + "".join(rows)
        + "</table>"
    )


# -- emitters ---------------------------------------------------------------


def render_dashboard(store: CampaignStore) -> str:
    """The full HTML dashboard; a pure function of the store."""
    summary = store.summary()
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro campaign dashboard</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro campaign dashboard</h1>",
        '<p class="note">'
        + " · ".join(
            f"{table}: {summary[table]}" for table in sorted(summary)
        )
        + "</p>",
        "<h2>Fault coverage per configuration</h2>",
        _bar_chart(
            "coverage per configuration",
            _coverage_bars(store.query_table6()),
            "fault coverage",
        ),
        "<h2>Coverage vs. TPG area</h2>",
        _scatter_chart(
            "coverage vs TPG gate-equivalents",
            _front_series(store),
            "TPG gate-equivalents",
            "fault coverage",
        ),
        "<h2>Per-phase wall time</h2>",
        '<p class="note">machine-dependent by design; every other view '
        "is machine-independent</p>",
        _bar_chart(
            "mean phase seconds", _timing_bars(store), "mean seconds"
        ),
    ]
    for name, xf, yf, xl, yl, cells in _campaign_grids(store):
        parts.append(f"<h2>Campaign grid: {_esc(name)}</h2>")
        parts.append(
            _heatmap(
                f"campaign {name} coverage heatmap",
                xl,
                yl,
                cells,
                xf,
                yf,
            )
        )
    parts.append("<h2>Sizing models</h2>")
    parts.append(_models_section(store))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_text(store: CampaignStore) -> str:
    """Terminal summary of the store."""
    summary = store.summary()
    lines = ["campaign store summary"]
    for table in sorted(summary):
        lines.append(f"  {table:<12} {summary[table]:>6}")
    rows = store.query_table6()
    if rows:
        lines.append("")
        lines.append(
            f"{'circuit':<10} {'l_g':>6} {'det':>6} {'coverage':>9} "
            f"{'max_len':>8} {'fsms':>5}"
        )
        for row in rows:
            coverage = row.get("coverage")
            cov_text = (
                f"{coverage:.4f}"
                if isinstance(coverage, (int, float))
                else "-"
            )
            l_g = row.get("l_g")
            lines.append(
                f"{str(row['circuit']):<10} "
                f"{l_g if l_g is not None else '-':>6} "
                f"{row['given_det']:>6} {cov_text:>9} "
                f"{row['max_length']:>8} {row['n_fsms']:>5}"
            )
    campaigns = store.query_campaigns()
    if campaigns:
        names = sorted({str(row["campaign"]) for row in campaigns})
        lines.append("")
        for name in names:
            count = sum(1 for row in campaigns if row["campaign"] == name)
            lines.append(f"campaign {name}: {count} point(s)")
    return "\n".join(lines) + "\n"


def render_json(store: CampaignStore) -> str:
    """Canonical JSON projection of every queryable view."""
    payload = {
        "format": "campaign-store",
        "schema_version": SCHEMA_VERSION,
        "summary": store.summary(),
        "table6": store.query_table6(),
        "fronts": store.query_fronts(),
        "timings": store.query_timings(),
        "jobs": store.query_jobs(),
        "campaigns": store.query_campaigns(),
        "circuits": store.query_circuits(),
        "benchmarks": store.query_benchmarks(),
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
