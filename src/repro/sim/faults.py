"""Single stuck-at fault model.

Faults live either on a net's *stem* (the gate output) or on a *branch*
(a specific gate input pin, meaningful when the driving net fans out to
more than one pin).  This is the classic ISCAS-89 fault universe; the
paper's fault counts (e.g. the 32 faults ``f_0..f_31`` of s27) are
counts of equivalence-collapsed faults over exactly this universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes
    ----------
    net:
        The affected net.  For a stem fault this is the faulty line
        itself; for a branch fault it is the *driving* net of the pin.
    stuck:
        The stuck value, 0 or 1.
    gate / pin:
        ``None`` for a stem fault.  For a branch fault, the gate and
        fanin pin index where the branch connects.
    """

    net: str
    stuck: int
    gate: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise FaultModelError(f"stuck value must be 0 or 1, got {self.stuck!r}")
        if (self.gate is None) != (self.pin is None):
            raise FaultModelError("branch fault needs both gate and pin")

    @property
    def is_branch(self) -> bool:
        """True for a fanout-branch fault."""
        return self.gate is not None

    @property
    def sort_key(self) -> tuple:
        """Deterministic total order (stems before branches of a net)."""
        return (self.net, self.stuck, self.gate or "", self.pin if self.pin is not None else -1)

    def __lt__(self, other: "Fault") -> bool:
        if not isinstance(other, Fault):
            return NotImplemented
        return self.sort_key < other.sort_key


def fault_name(fault: Fault) -> str:
    """Canonical printable name, e.g. ``G8/0`` or ``G8->G15.1/0``."""
    if fault.is_branch:
        return f"{fault.net}->{fault.gate}.{fault.pin}/{fault.stuck}"
    return f"{fault.net}/{fault.stuck}"


def all_faults(circuit: Circuit) -> List[Fault]:
    """Enumerate the full (uncollapsed) stuck-at fault universe.

    * both polarities on every driven net's stem, and
    * both polarities on every gate input pin whose driving net fans
      out to more than one pin (fanout branches).

    Constant nets are excluded — a constant's stem has no physical
    counterpart in ISCAS-style netlists and its same-polarity fault is
    vacuously untestable.
    """
    faults: List[Fault] = []
    for net, gate in circuit.gates.items():
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for net, gate in circuit.gates.items():
        for pin, driver in enumerate(gate.fanins):
            if circuit.fanout_count(driver) > 1:
                faults.append(Fault(driver, 0, gate=net, pin=pin))
                faults.append(Fault(driver, 1, gate=net, pin=pin))
    return sorted(faults)


def validate_fault(circuit: Circuit, fault: Fault) -> None:
    """Raise :class:`FaultModelError` if ``fault`` does not fit ``circuit``."""
    if fault.net not in circuit:
        raise FaultModelError(f"fault net {fault.net!r} not in circuit")
    if fault.is_branch:
        if fault.gate not in circuit:
            raise FaultModelError(f"fault gate {fault.gate!r} not in circuit")
        gate = circuit.gate(fault.gate)
        if fault.pin >= len(gate.fanins) or gate.fanins[fault.pin] != fault.net:
            raise FaultModelError(
                f"gate {fault.gate!r} pin {fault.pin} is not driven by {fault.net!r}"
            )
