"""Single stuck-at fault model.

Faults live either on a net's *stem* (the gate output) or on a *branch*
(a specific gate input pin, meaningful when the driving net fans out to
more than one pin).  This is the classic ISCAS-89 fault universe; the
paper's fault counts (e.g. the 32 faults ``f_0..f_31`` of s27) are
counts of equivalence-collapsed faults over exactly this universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError

if TYPE_CHECKING:
    from repro.analysis.static import Certificate, StaticAnalysis


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes
    ----------
    net:
        The affected net.  For a stem fault this is the faulty line
        itself; for a branch fault it is the *driving* net of the pin.
    stuck:
        The stuck value, 0 or 1.
    gate / pin:
        ``None`` for a stem fault.  For a branch fault, the gate and
        fanin pin index where the branch connects.
    """

    net: str
    stuck: int
    gate: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise FaultModelError(f"stuck value must be 0 or 1, got {self.stuck!r}")
        if (self.gate is None) != (self.pin is None):
            raise FaultModelError("branch fault needs both gate and pin")

    @property
    def is_branch(self) -> bool:
        """True for a fanout-branch fault."""
        return self.gate is not None

    @property
    def sort_key(self) -> tuple:
        """Deterministic total order (stems before branches of a net)."""
        return (self.net, self.stuck, self.gate or "", self.pin if self.pin is not None else -1)

    def __lt__(self, other: "Fault") -> bool:
        if not isinstance(other, Fault):
            return NotImplemented
        return self.sort_key < other.sort_key


def fault_name(fault: Fault) -> str:
    """Canonical printable name, e.g. ``G8/0`` or ``G8->G15.1/0``."""
    if fault.is_branch:
        return f"{fault.net}->{fault.gate}.{fault.pin}/{fault.stuck}"
    return f"{fault.net}/{fault.stuck}"


def all_faults(circuit: Circuit) -> List[Fault]:
    """Enumerate the full (uncollapsed) stuck-at fault universe.

    * both polarities on every driven net's stem, and
    * both polarities on every gate input pin whose driving net fans
      out to more than one pin (fanout branches).

    Constant nets are excluded — a constant's stem has no physical
    counterpart in ISCAS-style netlists and its same-polarity fault is
    vacuously untestable.
    """
    faults: List[Fault] = []
    for net, gate in circuit.gates.items():
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for net, gate in circuit.gates.items():
        for pin, driver in enumerate(gate.fanins):
            if circuit.fanout_count(driver) > 1:
                faults.append(Fault(driver, 0, gate=net, pin=pin))
                faults.append(Fault(driver, 1, gate=net, pin=pin))
    return sorted(faults)


@dataclass(frozen=True)
class PruneReport:
    """Outcome of a certified static pre-prune over one fault list.

    ``pruned`` holds ``(canonical fault name, certificate kind)`` pairs,
    sorted by name.  The report is what flows and serve jobs surface so
    that pruned faults are *reported, never silently dropped* — coverage
    denominators keep counting them.
    """

    n_faults: int
    pruned: Tuple[Tuple[str, str], ...]

    @property
    def n_pruned(self) -> int:
        """Faults removed from simulation (each carries a certificate)."""
        return len(self.pruned)

    @property
    def n_kept(self) -> int:
        """Faults that remain to be simulated."""
        return self.n_faults - len(self.pruned)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready projection for result/report documents."""
        return {
            "n_faults": self.n_faults,
            "n_pruned": len(self.pruned),
            "faults": [
                {"fault": name, "kind": kind} for name, kind in self.pruned
            ],
        }


class FaultPruner:
    """Certified fault pre-prune backed by the static implication engine.

    Wraps a :class:`repro.analysis.static.StaticAnalysis` (computed on
    demand when not supplied) and partitions fault lists into the
    *kept* faults worth simulating and the *pruned* faults proved
    untestable — each pruned fault backed by a machine-checkable
    certificate (:meth:`certificate`).

    Soundness contract: a certified-untestable fault is never detected
    by the fault simulator, so removing it from a simulation changes no
    detection outcome.  Consumers must still report pruned faults and
    keep them in coverage denominators; the simulator integration
    (:class:`repro.sim.faultsim.FaultSimulator`) rebuilds its results
    over the caller's original fault list for exactly that reason.
    """

    def __init__(
        self,
        circuit: Circuit,
        analysis: Optional["StaticAnalysis"] = None,
        runtime: Optional[object] = None,
        max_frames: Optional[int] = None,
    ) -> None:
        self.circuit = circuit
        if analysis is None:
            from repro.analysis.static import analyze

            analysis = analyze(circuit, runtime=runtime, max_frames=max_frames)
        self.analysis = analysis

    def certificate(self, fault: Fault) -> Optional["Certificate"]:
        """The fault's untestability certificate, or ``None``."""
        return self.analysis.verdict(fault)

    def split(
        self, faults: Sequence[Fault]
    ) -> Tuple[List[Fault], List[Fault]]:
        """Partition ``faults`` into (kept, pruned), preserving order."""
        kept: List[Fault] = []
        pruned: List[Fault] = []
        for fault in faults:
            if self.certificate(fault) is None:
                kept.append(fault)
            else:
                pruned.append(fault)
        return kept, pruned

    def report(self, faults: Sequence[Fault]) -> PruneReport:
        """A :class:`PruneReport` over ``faults``."""
        faults = list(faults)
        _, pruned = self.split(faults)
        entries = []
        for fault in pruned:
            certificate = self.certificate(fault)
            assert certificate is not None  # split() put it in pruned
            entries.append((fault_name(fault), certificate.kind))
        return PruneReport(n_faults=len(faults), pruned=tuple(sorted(entries)))


def validate_fault(circuit: Circuit, fault: Fault) -> None:
    """Raise :class:`FaultModelError` if ``fault`` does not fit ``circuit``."""
    if fault.net not in circuit:
        raise FaultModelError(f"fault net {fault.net!r} not in circuit")
    if fault.is_branch:
        if fault.gate not in circuit:
            raise FaultModelError(f"fault gate {fault.gate!r} not in circuit")
        gate = circuit.gate(fault.gate)
        if fault.pin >= len(gate.fanins) or gate.fanins[fault.pin] != fault.net:
            raise FaultModelError(
                f"gate {fault.gate!r} pin {fault.pin} is not driven by {fault.net!r}"
            )
