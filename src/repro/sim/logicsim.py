"""Reference 3-valued sequential logic simulator (fault-free machine).

This scalar simulator defines the golden semantics: the bit-parallel
fault simulator is cross-checked against it in the test suite.  It is
also used wherever only fault-free behaviour is needed (e.g. verifying
that a synthesized test pattern generator replays the intended weighted
sequences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.sim.compile import (
    CompiledCircuit,
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    compile_circuit,
)
from repro.sim.values import (
    V0,
    V1,
    VX,
    Value,
    and_reduce,
    invert,
    or_reduce,
    xor_reduce,
)


@dataclass(frozen=True)
class SimTrace:
    """Result of simulating an input sequence.

    Attributes
    ----------
    outputs:
        Per time unit, the ternary values of the primary outputs
        (port order).
    states:
        Per time unit, the ternary values of the flip-flop outputs at
        the *start* of the cycle (i.e. the present state that cycle).
    nets:
        Per time unit, the ternary values of every net (dense index
        order); only populated when ``record_nets=True``.
    """

    outputs: Tuple[Tuple[Value, ...], ...]
    states: Tuple[Tuple[Value, ...], ...]
    nets: Tuple[Tuple[Value, ...], ...] = ()

    def __len__(self) -> int:
        return len(self.outputs)


class LogicSimulator:
    """Levelized 3-valued sequential simulator for one circuit.

    The simulator is stateless between :meth:`run` calls; each run
    starts from the given initial state (all-X by default, matching the
    no-reset assumption of the reproduced paper).
    """

    def __init__(self, circuit: Circuit, compiled: CompiledCircuit | None = None) -> None:
        self.circuit = circuit
        self.compiled = compiled or compile_circuit(circuit)

    def run(
        self,
        stimulus: Sequence[Sequence[Value]],
        initial_state: Sequence[Value] | None = None,
        record_nets: bool = False,
    ) -> SimTrace:
        """Simulate ``stimulus`` and return the trace.

        Parameters
        ----------
        stimulus:
            One entry per time unit; each entry gives the ternary value
            of every primary input in port order.
        initial_state:
            Flip-flop values at time 0 (``circuit.flops`` order);
            defaults to all X.
        record_nets:
            When true, the trace includes every net's value at every
            time unit (used by observability analysis and debugging).
        """
        comp = self.compiled
        n_pi = len(comp.pi_indices)
        n_ff = len(comp.ff_indices)
        if initial_state is None:
            state: List[Value] = [VX] * n_ff
        else:
            if len(initial_state) != n_ff:
                raise SimulationError(
                    f"initial state has {len(initial_state)} values, "
                    f"circuit has {n_ff} flip-flops"
                )
            state = list(initial_state)

        values: List[Value] = [VX] * comp.n_nets
        outputs: List[Tuple[Value, ...]] = []
        states: List[Tuple[Value, ...]] = []
        net_trace: List[Tuple[Value, ...]] = []

        for u, pattern in enumerate(stimulus):
            if len(pattern) != n_pi:
                raise SimulationError(
                    f"time {u}: pattern has {len(pattern)} values, "
                    f"circuit has {n_pi} primary inputs"
                )
            for idx, value in zip(comp.pi_indices, pattern):
                if value not in (V0, V1, VX):
                    raise SimulationError(f"time {u}: bad ternary value {value!r}")
                values[idx] = value
            for idx, value in zip(comp.ff_indices, state):
                values[idx] = value
            for idx in comp.const0_indices:
                values[idx] = V0
            for idx in comp.const1_indices:
                values[idx] = V1

            for opcode, out, fanins in comp.ops:
                values[out] = _eval_op(opcode, fanins, values)

            outputs.append(tuple(values[idx] for idx in comp.po_indices))
            states.append(tuple(state))
            if record_nets:
                net_trace.append(tuple(values))
            state = [values[idx] for idx in comp.ff_next_indices]

        return SimTrace(
            outputs=tuple(outputs),
            states=tuple(states),
            nets=tuple(net_trace),
        )


def _eval_op(opcode: int, fanins: Tuple[int, ...], values: List[Value]) -> Value:
    """Evaluate one compiled gate in scalar ternary logic."""
    ins = [values[f] for f in fanins]
    if opcode == OP_AND:
        return and_reduce(ins)
    if opcode == OP_NAND:
        return invert(and_reduce(ins))
    if opcode == OP_OR:
        return or_reduce(ins)
    if opcode == OP_NOR:
        return invert(or_reduce(ins))
    if opcode == OP_XOR:
        return xor_reduce(ins)
    if opcode == OP_XNOR:
        return invert(xor_reduce(ins))
    if opcode == OP_NOT:
        return invert(ins[0])
    if opcode == OP_BUF:
        return ins[0]
    raise SimulationError(f"unknown opcode {opcode}")
