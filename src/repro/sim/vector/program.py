"""Compilation of (circuit, fault list) into a kernel-agnostic program.

Fault forces come in three shapes, mirroring the oracle exactly:

* *stem* forces on a net's row (``o = (o | f1) & ~f0``,
  ``z = (z | f0) & ~f1``), applied when the row is written;
* *pin* forces on one gate input (branch faults) — only the faulted
  pin sees the forced value;
* *capture* forces on a flip-flop D pin, applied to the captured
  next-state word.

Stem faults on constant nets are dropped: the pure-Python engine
rewrites constant rows after applying stem forces, so such forces are
silently inert there, and the vector backend must agree.

Two schedule views serve the two kernels:

* :attr:`VectorProgram.flat_ops` — the oracle's topological op order
  with per-op stem/pin forces, for the big-int kernel (same shape as
  ``_GroupSim._ops``, so the evaluation loop is a line-for-line mirror).
* :attr:`VectorProgram.waves` — for the numpy kernel, ops are packed
  into *waves* by a greedy ready-set scheduler: each wave holds same-
  ``(opcode, arity)`` gates whose fanins are all computed, so one
  gather + one reduce evaluates the whole wave.  Pin forces ride along
  as sparse ``(position, pin, f0, f1)`` entries applied to the wave's
  *gathered* fanin values, never to the driving rows — the exact
  ephemeral-pin semantics of the oracle, with no extra rows and no
  extra schedule depth.  Any topological schedule computes identical
  values — every row is written exactly once per cycle — so wave order
  is a pure performance choice.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.compile import CompiledCircuit
from repro.sim.faults import Fault


class VectorProgram:
    """Execution-ready, packing-agnostic form of one (circuit, faults) pair."""

    __slots__ = (
        "comp",
        "faults",
        "lanes",
        "n_circuit_rows",
        "flat_ops",
        "waves",
        "load_forces",
        "ff_capture",
        "pi_rows",
        "ff_rows",
        "po_rows",
        "ff_next_rows",
        "const0_rows",
        "const1_rows",
        "codegen_cache",
    )

    def __init__(self, comp: CompiledCircuit, faults: Tuple[Fault, ...]) -> None:
        self.comp = comp
        self.faults = faults
        self.lanes = len(faults) + 1
        self.n_circuit_rows = comp.n_nets
        self.pi_rows = comp.pi_indices
        self.ff_rows = comp.ff_indices
        self.po_rows = comp.po_indices
        self.ff_next_rows = comp.ff_next_indices
        self.const0_rows = comp.const0_indices
        self.const1_rows = comp.const1_indices
        # Filled by build_program:
        self.flat_ops: Tuple = ()
        self.waves: Tuple = ()
        self.load_forces: Tuple[Tuple[int, int, int], ...] = ()
        self.ff_capture: Dict[int, Tuple[int, int]] = {}
        # Compiled-step cache, shared by all int kernels of this program.
        self.codegen_cache: Dict = {}


def build_program(
    comp: CompiledCircuit,
    flop_pos: Dict[str, int],
    faults: Sequence[Fault],
) -> VectorProgram:
    """Build the :class:`VectorProgram` for ``faults`` on ``comp``."""
    prog = VectorProgram(comp, tuple(faults))
    const_rows = set(comp.const0_indices) | set(comp.const1_indices)

    stem_force: Dict[int, List[int]] = {}  # row -> [f0_mask, f1_mask]
    pin_force: Dict[int, Dict[int, List[int]]] = {}  # gate row -> pin -> masks
    ff_capture: Dict[int, List[int]] = {}
    for offset, fault in enumerate(prog.faults):
        bit = 1 << (offset + 1)
        if fault.is_branch and fault.gate in flop_pos:
            slot = ff_capture.setdefault(flop_pos[fault.gate], [0, 0])
        elif fault.is_branch:
            gate_row = comp.index[fault.gate]
            slot = pin_force.setdefault(gate_row, {}).setdefault(
                fault.pin, [0, 0]
            )
        else:
            row = comp.index[fault.net]
            if row in const_rows:
                continue  # inert in the oracle: const rows are rewritten
            slot = stem_force.setdefault(row, [0, 0])
        slot[fault.stuck] |= bit

    prog.ff_capture = {s: (f0, f1) for s, (f0, f1) in ff_capture.items()}

    op_rows = {out for _, out, _ in comp.ops}
    prog.load_forces = tuple(
        sorted(
            (row, f0, f1)
            for row, (f0, f1) in stem_force.items()
            if row not in op_rows
        )
    )

    prog.flat_ops = tuple(
        (
            opcode,
            out,
            fanins,
            tuple(stem_force[out]) if out in stem_force else None,
            (
                {pin: (f0, f1) for pin, (f0, f1) in pin_force[out].items()}
                if out in pin_force
                else None
            ),
        )
        for opcode, out, fanins in comp.ops
    )

    _build_waves(prog, stem_force, pin_force)
    return prog


def _build_waves(
    prog: VectorProgram,
    stem_force: Dict[int, List[int]],
    pin_force: Dict[int, Dict[int, List[int]]],
) -> None:
    """The numpy schedule: ops packed into class waves.

    Greedy ready-set scheduling: repeatedly flush the (opcode, arity)
    class with the most ready ops.  Deterministic: ties break on the
    class key, waves keep op emission order.
    """
    ops = prog.comp.ops
    producer = {out: i for i, (_, out, _) in enumerate(ops)}
    missing = [0] * len(ops)
    consumers: Dict[int, List[int]] = {}
    for i, (_, _, fanins) in enumerate(ops):
        deps = {producer[f] for f in fanins if f in producer}
        missing[i] = len(deps)
        for d in deps:
            consumers.setdefault(d, []).append(i)

    classes: Dict[Tuple[int, int], List[int]] = {}
    for i, (opcode, _, fanins) in enumerate(ops):
        if missing[i] == 0:
            classes.setdefault((opcode, len(fanins)), []).append(i)

    waves = []
    remaining = len(ops)
    while remaining:
        key = min(classes, key=lambda k: (-len(classes[k]), k))
        wave_ids = sorted(classes.pop(key))
        remaining -= len(wave_ids)
        opcode, arity = key
        outs = tuple(ops[i][1] for i in wave_ids)
        fanins = tuple(ops[i][2] for i in wave_ids)
        stems = tuple(
            (pos, stem_force[out][0], stem_force[out][1])
            for pos, out in enumerate(outs)
            if out in stem_force
        )
        pins = tuple(
            (pos, pin, f0, f1)
            for pos, out in enumerate(outs)
            if out in pin_force
            for pin, (f0, f1) in sorted(pin_force[out].items())
        )
        waves.append((opcode, arity, outs, fanins, stems, pins))
        for i in wave_ids:
            for consumer in consumers.get(i, ()):
                missing[consumer] -= 1
                if missing[consumer] == 0:
                    c_op, _, c_fanins = ops[consumer]
                    classes.setdefault((c_op, len(c_fanins)), []).append(
                        consumer
                    )
    prog.waves = tuple(waves)
