"""The two interchangeable word-level kernels.

Both execute a :class:`~repro.sim.vector.program.VectorProgram` over a
lane space of ``n_blocks`` word-aligned *blocks*, one per simultaneous
stimulus.  Lane 0 of each block is that block's good machine; lane
``l`` is ``program.faults[l - 1]``.  Blocks never interact (bitwise ops
are lane-local), so a multi-block run is exactly ``n_blocks``
independent single-stimulus runs.

The kernels consume different schedule views of the same program:

* :class:`IntKernel` compiles :attr:`VectorProgram.flat_ops` — the
  oracle's own topological order — into one straight-line generated
  function, with branch faults applied as ephemeral pin forces inside
  the gate fold, exactly like ``_GroupSim._eval_with_pin_forces``.
* :class:`NumpyKernel` walks :attr:`VectorProgram.waves`, where
  same-shape gates are packed into one gather + reduce per wave and
  pin forces apply to the wave's gathered fanin values in place.

Detection and state capture replicate the oracle bit for bit:

* forces apply as ``o = (o | f1) & ~f0``, ``z = (z | f0) & ~f1``;
* detection happens *before* state capture, only while ``active`` is
  non-zero, and uses the conservative binary-good/binary-complement
  criterion per primary output;
* padding lanes (and lanes past the fault count) carry an extra copy of
  the good machine — they are force-free and masked out of detection
  and discrepancy reads, so they can never influence a result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.compile import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)
from repro.sim.values import V0, V1
from repro.sim.vector import packing as _packing
from repro.sim.vector.program import VectorProgram


def _compile_int_step(program: VectorProgram):
    """Generate the unrolled gate-evaluation function for ``program``.

    One straight-line Python function with constant row indices replaces
    the interpreted op loop — no per-op tuple unpacking or opcode
    dispatch, which dominates the cost once the big-int arithmetic
    itself is only a few machine words wide.  Returns
    ``(step_ops, mask_plan)``; the kernel materializes ``M[i]`` from the
    plan as the replicated force mask (``f0``/``f1``) or the complement
    of the replicated mask (``nf0``/``nf1``), so the generated source is
    independent of block count and is cached on the program.
    """
    masks = []

    def m(kind: str, value: int) -> str:
        masks.append((kind, value))
        return f"M[{len(masks) - 1}]"

    lines = ["def _step_ops(O, Z, M):"]
    for opcode, out, fanins, stem, pf in program.flat_ops:
        fo = []
        fz = []
        for k, f in enumerate(fanins):
            oe = f"O[{f}]"
            ze = f"Z[{f}]"
            if pf is not None and k in pf:
                f0, f1 = pf[k]
                oe = f"(({oe}|{m('f1', f1)})&{m('nf0', f0)})"
                ze = f"(({ze}|{m('f0', f0)})&{m('nf1', f1)})"
            fo.append(oe)
            fz.append(ze)
        if opcode == OP_AND or opcode == OP_NAND:
            oexpr = "&".join(fo)
            zexpr = "|".join(fz)
            if opcode == OP_NAND:
                oexpr, zexpr = zexpr, oexpr
        elif opcode == OP_OR or opcode == OP_NOR:
            oexpr = "|".join(fo)
            zexpr = "&".join(fz)
            if opcode == OP_NOR:
                oexpr, zexpr = zexpr, oexpr
        elif opcode == OP_NOT:
            oexpr, zexpr = fz[0], fo[0]
        elif opcode == OP_BUF:
            oexpr, zexpr = fo[0], fz[0]
        else:  # XOR / XNOR
            lines.append(f" xo = {fo[0]}; xz = {fz[0]}")
            for oe, ze in zip(fo[1:], fz[1:]):
                lines.append(f" eo = {oe}; ez = {ze}")
                lines.append(" xo, xz = (xo&ez)|(xz&eo), (xo&eo)|(xz&ez)")
            oexpr, zexpr = ("xz", "xo") if opcode == OP_XNOR else ("xo", "xz")
        if stem is not None:
            f0, f1 = stem
            oexpr = f"(({oexpr})|{m('f1', f1)})&{m('nf0', f0)}"
            zexpr = f"(({zexpr})|{m('f0', f0)})&{m('nf1', f1)}"
        lines.append(f" O[{out}] = {oexpr}")
        lines.append(f" Z[{out}] = {zexpr}")
    lines.append(" pass")
    namespace: dict = {}
    exec(compile("\n".join(lines), "<vector-int-step>", "exec"), namespace)
    return namespace["_step_ops"], tuple(masks)


def make_kernel(
    program: VectorProgram,
    n_blocks: int = 1,
    packing: Optional[str] = None,
    word_bits: Optional[int] = None,
):
    """Build the kernel for ``program``, honoring the packing policy."""
    if packing is None:
        packing = _packing.choose_packing(
            -(-program.lanes // (word_bits or _packing.WORD_BITS)), n_blocks
        )
    if packing == "numpy":
        return NumpyKernel(program, n_blocks)
    return IntKernel(program, n_blocks, word_bits=word_bits)


class IntKernel:
    """Pure-stdlib kernel: one arbitrary-precision int per net.

    ``word_bits`` only controls block padding (blocks are padded to a
    word multiple so lane arithmetic matches the numpy layout); any
    width produces identical results, which the word-width regression
    test pins.
    """

    name = "int"

    def __init__(
        self,
        program: VectorProgram,
        n_blocks: int = 1,
        word_bits: Optional[int] = None,
    ) -> None:
        self.program = program
        self.n_blocks = n_blocks
        self.word_bits = word_bits or _packing.WORD_BITS
        lanes = program.lanes
        self.words_per_block = -(-lanes // self.word_bits)
        self.block_bits = self.words_per_block * self.word_bits
        p = self.block_bits
        self.full = (1 << (n_blocks * p)) - 1
        self._block_all = [((1 << p) - 1) << (b * p) for b in range(n_blocks)]
        fault_lanes = ((1 << lanes) - 1) & ~1
        self._block_fault = [fault_lanes << (b * p) for b in range(n_blocks)]
        self.fault_lanes = 0
        for mask in self._block_fault:
            self.fault_lanes |= mask
        self.active = self.fault_lanes

        rep = self._replicate
        self._load_forces = [
            (row, rep(f0), rep(f1)) for row, f0, f1 in program.load_forces
        ]
        cached = program.codegen_cache.get("int_step")
        if cached is None:
            cached = _compile_int_step(program)
            program.codegen_cache["int_step"] = cached
        self._step_ops, mask_plan = cached
        self._M = [
            ~rep(value) if kind in ("nf0", "nf1") else rep(value)
            for kind, value in mask_plan
        ]
        self._ff_capture = {
            slot: (rep(f0), rep(f1))
            for slot, (f0, f1) in program.ff_capture.items()
        }
        n_ff = len(program.ff_rows)
        self.S_O = [0] * n_ff
        self.S_Z = [0] * n_ff
        self.O = [0] * program.n_circuit_rows
        self.Z = [0] * program.n_circuit_rows

    def _replicate(self, mask: int) -> int:
        out = 0
        for b in range(self.n_blocks):
            out |= mask << (b * self.block_bits)
        return out

    def block_fault_mask(self, block: int) -> int:
        return self._block_fault[block]

    # -- state management --------------------------------------------------

    def snapshot(self):
        return (list(self.S_O), list(self.S_Z), self.active)

    def restore(self, snap) -> None:
        s_o, s_z, active = snap
        self.S_O = list(s_o)
        self.S_Z = list(s_z)
        self.active = active

    def reset_state(self) -> None:
        n_ff = len(self.program.ff_rows)
        self.S_O = [0] * n_ff
        self.S_Z = [0] * n_ff

    def deactivate(self, mask: int) -> None:
        self.active &= ~mask

    def extract_lane(self, lane: int) -> List[Tuple[int, int]]:
        return [
            ((o >> lane) & 1, (z >> lane) & 1)
            for o, z in zip(self.S_O, self.S_Z)
        ]

    def load_state(self, lane_states: Sequence[Sequence[Tuple[int, int]]]) -> None:
        """Install per-lane flip-flop state (lane order, good first)."""
        n_ff = len(self.program.ff_rows)
        for slot in range(n_ff):
            o = 0
            z = 0
            for lane, st in enumerate(lane_states):
                o |= st[slot][0] << lane
                z |= st[slot][1] << lane
            self.S_O[slot] = self._replicate(o)
            self.S_Z[slot] = self._replicate(z)

    # -- stepping ----------------------------------------------------------

    def step(self, patterns: Sequence[Optional[Sequence[int]]]) -> int:
        """Apply one (already validated) pattern per block; ``None`` feeds X.

        Returns the newly detected lane mask and removes it from
        :attr:`active`.
        """
        prog = self.program
        full = self.full
        O = self.O
        Z = self.Z
        if self.n_blocks == 1:
            p = patterns[0]
            for slot, idx in enumerate(prog.pi_rows):
                v = p[slot] if p is not None else 2
                if v == V1:
                    O[idx], Z[idx] = full, 0
                elif v == V0:
                    O[idx], Z[idx] = 0, full
                else:
                    O[idx], Z[idx] = 0, 0
        else:
            block_all = self._block_all
            for slot, idx in enumerate(prog.pi_rows):
                o = 0
                z = 0
                for b, p in enumerate(patterns):
                    if p is None:
                        continue
                    v = p[slot]
                    if v == V1:
                        o |= block_all[b]
                    elif v == V0:
                        z |= block_all[b]
                O[idx], Z[idx] = o, z
        for slot, idx in enumerate(prog.ff_rows):
            O[idx] = self.S_O[slot]
            Z[idx] = self.S_Z[slot]
        for idx in prog.const0_rows:
            O[idx], Z[idx] = 0, full
        for idx in prog.const1_rows:
            O[idx], Z[idx] = full, 0
        for row, f0, f1 in self._load_forces:
            o, z = O[row], Z[row]
            O[row] = (o | f1) & ~f0
            Z[row] = (z | f0) & ~f1

        self._step_ops(O, Z, self._M)

        detected = 0
        if self.active:
            if self.n_blocks == 1:
                act = self.active
                for idx in prog.po_rows:
                    o, z = O[idx], Z[idx]
                    if o & 1:
                        detected |= z & act
                    elif z & 1:
                        detected |= o & act
            else:
                block_fault = self._block_fault
                bb = self.block_bits
                for idx in prog.po_rows:
                    o, z = O[idx], Z[idx]
                    for b in range(self.n_blocks):
                        if (o >> (b * bb)) & 1:
                            detected |= z & block_fault[b]
                        elif (z >> (b * bb)) & 1:
                            detected |= o & block_fault[b]
                detected &= self.active
            self.active &= ~detected

        capture = self._ff_capture
        s_o = []
        s_z = []
        for slot, idx in enumerate(prog.ff_next_rows):
            o, z = O[idx], Z[idx]
            force = capture.get(slot)
            if force is not None:
                f0, f1 = force
                o = (o | f1) & ~f0
                z = (z | f0) & ~f1
            s_o.append(o)
            s_z.append(z)
        self.S_O = s_o
        self.S_Z = s_z
        return detected

    def discrepancies(self) -> List[Tuple[int, int]]:
        """Per circuit net: lanes whose value is the binary complement of
        the good machine's binary value, in the last stepped cycle."""
        out = []
        fl = self.fault_lanes
        O = self.O
        Z = self.Z
        if self.n_blocks == 1:
            for idx in range(self.program.n_circuit_rows):
                o, z = O[idx], Z[idx]
                if o & 1:
                    diff = z & fl
                elif z & 1:
                    diff = o & fl
                else:
                    continue
                if diff:
                    out.append((idx, diff))
            return out
        bb = self.block_bits
        block_fault = self._block_fault
        for idx in range(self.program.n_circuit_rows):
            o, z = O[idx], Z[idx]
            diff = 0
            for b in range(self.n_blocks):
                if (o >> (b * bb)) & 1:
                    diff |= z & block_fault[b]
                elif (z >> (b * bb)) & 1:
                    diff |= o & block_fault[b]
            if diff:
                out.append((idx, diff))
        return out


class NumpyKernel:
    """numpy kernel: ``uint64`` planes of shape ``(n_rows, n_words)``."""

    name = "numpy"

    def __init__(self, program: VectorProgram, n_blocks: int = 1) -> None:
        import numpy as np

        self._np = np
        self.program = program
        self.n_blocks = n_blocks
        self.word_bits = 64
        lanes = program.lanes
        self.words_per_block = -(-lanes // 64)
        self.block_bits = self.words_per_block * 64
        w = n_blocks * self.words_per_block
        self.n_words = w
        self.full = (1 << (w * 64)) - 1
        fault_lanes = ((1 << lanes) - 1) & ~1
        p = self.block_bits
        self._block_fault = [fault_lanes << (b * p) for b in range(n_blocks)]
        self.fault_lanes = 0
        for mask in self._block_fault:
            self.fault_lanes |= mask
        self.active = self.fault_lanes
        self._active_row = self._row(self.active)

        self._ALL = np.uint64(0xFFFFFFFFFFFFFFFF)
        self._ZERO = np.uint64(0)
        self._ONE = np.uint64(1)
        idx = np.intp
        self._pi_rows = np.array(program.pi_rows, dtype=idx)
        self._ff_rows = np.array(program.ff_rows, dtype=idx)
        self._po_rows = np.array(program.po_rows, dtype=idx)
        self._ff_next_rows = np.array(program.ff_next_rows, dtype=idx)
        self._word_block = np.repeat(np.arange(n_blocks), self.words_per_block)
        self._first_words = np.arange(n_blocks) * self.words_per_block
        self._fault_row = self._row(self.fault_lanes)

        lf = program.load_forces
        if lf:
            self._load_rows = np.array([row for row, _, _ in lf], dtype=idx)
            self._load_f0 = np.stack(
                [self._replicate_row(f0) for _, f0, _ in lf]
            )
            self._load_f1 = np.stack(
                [self._replicate_row(f1) for _, _, f1 in lf]
            )
        else:
            self._load_rows = None

        self._waves = []
        for opcode, _arity, outs, fanins, stems, pins in program.waves:
            if stems:
                spos = np.array([pos for pos, _, _ in stems], dtype=idx)
                sf0 = np.stack([self._replicate_row(f0) for _, f0, _ in stems])
                sf1 = np.stack([self._replicate_row(f1) for _, _, f1 in stems])
                sarr = (spos, sf0, sf1)
            else:
                sarr = None
            if pins:
                # Dense per-wave (n, arity, words) force planes; zero
                # masks leave unforced pins untouched.
                pf0 = np.zeros((len(outs), len(fanins[0]), w), dtype=np.uint64)
                pf1 = np.zeros_like(pf0)
                for pos, pin, f0, f1 in pins:
                    pf0[pos, pin] = self._replicate_row(f0)
                    pf1[pos, pin] = self._replicate_row(f1)
                parr = (pf0, pf1)
            else:
                parr = None
            self._waves.append(
                (
                    opcode,
                    np.array(outs, dtype=idx),
                    np.array(fanins, dtype=idx),
                    sarr,
                    parr,
                )
            )

        cap = sorted(program.ff_capture)
        if cap:
            self._cap_slots = np.array(cap, dtype=idx)
            self._cap_f0 = np.stack(
                [self._replicate_row(program.ff_capture[s][0]) for s in cap]
            )
            self._cap_f1 = np.stack(
                [self._replicate_row(program.ff_capture[s][1]) for s in cap]
            )
        else:
            self._cap_slots = None

        n_ff = len(program.ff_rows)
        self.O = np.zeros((program.n_circuit_rows, w), dtype=np.uint64)
        self.Z = np.zeros((program.n_circuit_rows, w), dtype=np.uint64)
        self.S_O = np.zeros((n_ff, w), dtype=np.uint64)
        self.S_Z = np.zeros((n_ff, w), dtype=np.uint64)
        # Constant rows are never overwritten: set them once.
        if program.const0_rows:
            c0 = np.array(program.const0_rows, dtype=idx)
            self.Z[c0] = self._ALL
        if program.const1_rows:
            c1 = np.array(program.const1_rows, dtype=idx)
            self.O[c1] = self._ALL

    # -- int <-> row conversions -------------------------------------------

    def _row(self, mask: int):
        np = self._np
        return np.frombuffer(
            mask.to_bytes(self.n_words * 8, "little"), dtype="<u8"
        ).astype(np.uint64)

    def _replicate_row(self, mask: int):
        out = 0
        for b in range(self.n_blocks):
            out |= mask << (b * self.block_bits)
        return self._row(out)

    @staticmethod
    def _to_int(row) -> int:
        return int.from_bytes(row.astype("<u8", copy=False).tobytes(), "little")

    def block_fault_mask(self, block: int) -> int:
        return self._block_fault[block]

    # -- state management --------------------------------------------------

    def snapshot(self):
        return (self.S_O.copy(), self.S_Z.copy(), self.active)

    def restore(self, snap) -> None:
        s_o, s_z, active = snap
        self.S_O = s_o.copy()
        self.S_Z = s_z.copy()
        self.active = active
        self._active_row = self._row(active)

    def reset_state(self) -> None:
        self.S_O[:] = 0
        self.S_Z[:] = 0

    def deactivate(self, mask: int) -> None:
        self.active &= ~mask
        self._active_row = self._row(self.active)

    def extract_lane(self, lane: int) -> List[Tuple[int, int]]:
        w, bit = divmod(lane, 64)
        return [
            ((int(self.S_O[s, w]) >> bit) & 1, (int(self.S_Z[s, w]) >> bit) & 1)
            for s in range(self.S_O.shape[0])
        ]

    def load_state(self, lane_states: Sequence[Sequence[Tuple[int, int]]]) -> None:
        for slot in range(self.S_O.shape[0]):
            o = 0
            z = 0
            for lane, st in enumerate(lane_states):
                o |= st[slot][0] << lane
                z |= st[slot][1] << lane
            self.S_O[slot] = self._replicate_row(o)
            self.S_Z[slot] = self._replicate_row(z)

    # -- stepping ----------------------------------------------------------

    def step(self, patterns: Sequence[Optional[Sequence[int]]]) -> int:
        np = self._np
        prog = self.program
        O = self.O
        Z = self.Z
        ALL = self._ALL
        ZERO = self._ZERO

        n_pi = len(prog.pi_rows)
        vals = np.empty((n_pi, self.n_blocks), dtype=np.uint8)
        for b, p in enumerate(patterns):
            if p is None:
                vals[:, b] = 2
            else:
                vals[:, b] = p
        wb = self._word_block
        O[self._pi_rows] = np.where((vals == 1)[:, wb], ALL, ZERO)
        Z[self._pi_rows] = np.where((vals == 0)[:, wb], ALL, ZERO)
        O[self._ff_rows] = self.S_O
        Z[self._ff_rows] = self.S_Z
        if self._load_rows is not None:
            rows = self._load_rows
            o = O[rows]
            z = Z[rows]
            O[rows] = (o | self._load_f1) & ~self._load_f0
            Z[rows] = (z | self._load_f0) & ~self._load_f1

        for opcode, outs, fanins, stems, pins in self._waves:
            FO = O[fanins]
            FZ = Z[fanins]
            if pins is not None:
                pf0, pf1 = pins
                FO = (FO | pf1) & ~pf0
                FZ = (FZ | pf0) & ~pf1
            if opcode == OP_AND or opcode == OP_NAND:
                o = np.bitwise_and.reduce(FO, axis=1)
                z = np.bitwise_or.reduce(FZ, axis=1)
                if opcode == OP_NAND:
                    o, z = z, o
            elif opcode == OP_OR or opcode == OP_NOR:
                o = np.bitwise_or.reduce(FO, axis=1)
                z = np.bitwise_and.reduce(FZ, axis=1)
                if opcode == OP_NOR:
                    o, z = z, o
            elif opcode == OP_NOT:
                o, z = FZ[:, 0], FO[:, 0]
            elif opcode == OP_BUF:
                o, z = FO[:, 0], FZ[:, 0]
            else:  # XOR / XNOR
                o, z = FO[:, 0], FZ[:, 0]
                for k in range(1, FO.shape[1]):
                    fo, fz = FO[:, k], FZ[:, k]
                    o, z = (o & fz) | (z & fo), (o & fo) | (z & fz)
                if opcode == OP_XNOR:
                    o, z = z, o
            if stems is not None:
                spos, sf0, sf1 = stems
                o = o.copy() if o.base is not None else o
                z = z.copy() if z.base is not None else z
                o[spos] = (o[spos] | sf1) & ~sf0
                z[spos] = (z[spos] | sf0) & ~sf1
            O[outs] = o
            Z[outs] = z

        detected = 0
        if self.active:
            po_o = O[self._po_rows]
            po_z = Z[self._po_rows]
            fw = self._first_words
            g1 = (po_o[:, fw] & self._ONE).astype(bool)[:, wb]
            g0 = (po_z[:, fw] & self._ONE).astype(bool)[:, wb]
            diff = np.where(g1, po_z, np.where(g0, po_o, ZERO))
            diff &= self._active_row
            if diff.any():
                drow = np.bitwise_or.reduce(diff, axis=0)
                detected = self._to_int(drow)
                self.active &= ~detected
                self._active_row &= ~drow

        ns_o = O[self._ff_next_rows]
        ns_z = Z[self._ff_next_rows]
        if self._cap_slots is not None:
            slots = self._cap_slots
            o = ns_o[slots]
            z = ns_z[slots]
            ns_o[slots] = (o | self._cap_f1) & ~self._cap_f0
            ns_z[slots] = (z | self._cap_f0) & ~self._cap_f1
        self.S_O = ns_o
        self.S_Z = ns_z
        return detected

    def discrepancies(self) -> List[Tuple[int, int]]:
        np = self._np
        n = self.program.n_circuit_rows
        O = self.O[:n]
        Z = self.Z[:n]
        fw = self._first_words
        wb = self._word_block
        g1 = (O[:, fw] & self._ONE).astype(bool)[:, wb]
        g0 = (Z[:, fw] & self._ONE).astype(bool)[:, wb]
        diff = np.where(g1, Z, np.where(g0, O, self._ZERO))
        diff &= self._fault_row
        rows = np.nonzero(diff.any(axis=1))[0]
        return [(int(r), self._to_int(diff[r])) for r in rows]
