"""High-level driver for the vector kernels.

:class:`VectorEngine` is the front end :class:`~repro.sim.faultsim.FaultSimulator`
delegates to for ``backend="vector"``: whole-sequence runs, line
recording, screening, and multi-stimulus batched screening/runs.
:class:`VectorIncremental` backs ``IncrementalFaultSimulator``.

Semantics are defined by the pure-Python oracle; everything here is
"only faster":

* patterns are validated lazily, cycle by cycle, with the oracle's
  exact :class:`~repro.errors.SimulationError` messages;
* fault order is preserved — lane ``l`` is ``faults[l - 1]``, so
  decoded detection/remaining lists come back in original fault-list
  order, just like group order in the oracle;
* event-driven early-out: a block stops consuming patterns when its
  active mask dies (whole-run) or on first detection (screening), and a
  single-stimulus run compacts surviving lanes into fewer words when
  enough faults have been detected (the vectorized analogue of
  ``IncrementalFaultSimulator.regroup`` — behaviourally invisible
  because every surviving machine's flip-flop state is preserved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.sim.compile import CompiledCircuit
from repro.sim.faults import Fault
from repro.sim.values import V0, V1, VX, Value
from repro.sim.vector.kernels import make_kernel
from repro.sim.vector.program import build_program

MAX_BLOCKS = 16
"""Stimuli batched into one kernel instance at a time."""

_PROGRAM_MEMO_SIZE = 16


def _check_pattern(pattern: Sequence[Value], n_pi: int) -> Tuple[Value, ...]:
    """Validate one pattern with the oracle's exact error messages."""
    if len(pattern) != n_pi:
        raise SimulationError(
            f"pattern has {len(pattern)} values, circuit has "
            f"{n_pi} primary inputs"
        )
    for value in pattern:
        if value != V1 and value != V0 and value != VX:
            raise SimulationError(f"bad ternary value {value!r}")
    return tuple(pattern)


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


class VectorEngine:
    """Vector-backend driver for one compiled circuit."""

    def __init__(self, comp: CompiledCircuit, flop_pos: Dict[str, int]) -> None:
        self.comp = comp
        self.flop_pos = dict(flop_pos)
        self._n_pi = len(comp.pi_indices)
        self._programs: Dict[Tuple[Fault, ...], object] = {}

    def _program(self, faults: Sequence[Fault]):
        key = tuple(faults)
        prog = self._programs.get(key)
        if prog is None:
            if len(self._programs) >= _PROGRAM_MEMO_SIZE:
                self._programs.pop(next(iter(self._programs)))
            prog = build_program(self.comp, self.flop_pos, key)
            self._programs[key] = prog
        return prog

    # -- whole-sequence runs ----------------------------------------------

    def run(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        record_lines: bool = False,
        early_stop: bool = True,
        packing: Optional[str] = None,
    ) -> Tuple[Dict[Fault, int], Dict[Fault, Set[str]]]:
        """One stimulus against all ``faults``; returns (detection, lines)."""
        prog = self._program(faults)
        kern = make_kernel(prog, 1, packing)
        lane_fault: Tuple[Fault, ...] = prog.faults
        names = self.comp.names
        detection: Dict[Fault, int] = {}
        lines: Dict[Fault, Set[str]] = (
            {f: set() for f in faults} if record_lines else {}
        )
        n_pi = self._n_pi
        for u, pattern in enumerate(stimulus):
            pat = _check_pattern(pattern, n_pi)
            det = kern.step([pat])
            while det:
                low = det & -det
                det ^= low
                detection[lane_fault[low.bit_length() - 2]] = u
            if record_lines:
                for row, diff in kern.discrepancies():
                    name = names[row]
                    while diff:
                        low = diff & -diff
                        diff ^= low
                        lines[lane_fault[low.bit_length() - 2]].add(name)
            if early_stop:
                if not kern.active:
                    break
                kern, lane_fault = self._maybe_compact(kern, lane_fault, packing)
        return detection, lines

    def _maybe_compact(
        self, kern, lane_fault: Tuple[Fault, ...], packing: Optional[str]
    ):
        """Repack surviving lanes into fewer words once half the words
        can be dropped.  The halving threshold bounds rebuilds per run
        to ``log2(words)`` — each rebuild recompiles the program, so
        rebuilding on every dropped word costs more than it saves."""
        survivors_n = _popcount(kern.active)
        need = -(-(survivors_n + 1) // kern.word_bits)
        if need > kern.words_per_block // 2:
            return kern, lane_fault
        act = kern.active
        survivors: List[Tuple[Fault, int]] = []
        lane = 0
        while act:
            low = act & -act
            act ^= low
            lane = low.bit_length() - 1
            survivors.append((lane_fault[lane - 1], lane))
        good = kern.extract_lane(0)
        states = [kern.extract_lane(lane) for _, lane in survivors]
        new_faults = tuple(f for f, _ in survivors)
        prog = build_program(self.comp, self.flop_pos, new_faults)
        new_kern = make_kernel(prog, 1, packing, word_bits=kern.word_bits)
        new_kern.load_state([good] + states)
        return new_kern, new_faults

    # -- batched runs / screening ------------------------------------------

    def screen(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        packing: Optional[str] = None,
    ) -> bool:
        return self.screen_batch([stimulus], faults, packing)[0]

    def screen_batch(
        self,
        stimuli: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
        packing: Optional[str] = None,
    ) -> List[bool]:
        """Per stimulus: would it detect at least one of ``faults``?"""
        out: List[bool] = []
        for start in range(0, len(stimuli), MAX_BLOCKS):
            out.extend(
                self._screen_blocks(
                    stimuli[start : start + MAX_BLOCKS], faults, packing
                )
            )
        return out

    def _screen_blocks(
        self,
        chunk: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
        packing: Optional[str],
    ) -> List[bool]:
        n_blocks = len(chunk)
        prog = self._program(faults)
        kern = make_kernel(prog, n_blocks, packing)
        lens = [len(s) for s in chunk]
        done = [length == 0 for length in lens]
        verdicts = [False] * n_blocks
        n_pi = self._n_pi
        for b, is_done in enumerate(done):
            if is_done:
                kern.deactivate(kern.block_fault_mask(b))
        for u in range(max(lens, default=0)):
            if kern.active == 0:
                break
            patterns: List[Optional[Tuple[Value, ...]]] = []
            for b, s in enumerate(chunk):
                if done[b]:
                    patterns.append(None)
                elif u >= lens[b]:
                    done[b] = True
                    kern.deactivate(kern.block_fault_mask(b))
                    patterns.append(None)
                else:
                    patterns.append(_check_pattern(s[u], n_pi))
            if all(done):
                break
            det = kern.step(patterns)
            if det:
                for b in range(n_blocks):
                    if not done[b] and det & kern.block_fault_mask(b):
                        verdicts[b] = True
                        done[b] = True
                        kern.deactivate(kern.block_fault_mask(b))
        return verdicts

    def run_batch(
        self,
        stimuli: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
        early_stop: bool = True,
        packing: Optional[str] = None,
    ) -> List[Dict[Fault, int]]:
        """Whole-sequence detection times, one dict per stimulus."""
        out: List[Dict[Fault, int]] = []
        for start in range(0, len(stimuli), MAX_BLOCKS):
            out.extend(
                self._run_blocks(
                    stimuli[start : start + MAX_BLOCKS],
                    faults,
                    early_stop,
                    packing,
                )
            )
        return out

    def _run_blocks(
        self,
        chunk: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
        early_stop: bool,
        packing: Optional[str],
    ) -> List[Dict[Fault, int]]:
        n_blocks = len(chunk)
        prog = self._program(faults)
        kern = make_kernel(prog, n_blocks, packing)
        lane_fault = prog.faults
        lens = [len(s) for s in chunk]
        done = [length == 0 for length in lens]
        detections: List[Dict[Fault, int]] = [dict() for _ in range(n_blocks)]
        n_pi = self._n_pi
        bb = kern.block_bits
        for b, is_done in enumerate(done):
            if is_done:
                kern.deactivate(kern.block_fault_mask(b))
        for u in range(max(lens, default=0)):
            patterns: List[Optional[Tuple[Value, ...]]] = []
            for b, s in enumerate(chunk):
                if done[b]:
                    patterns.append(None)
                elif u >= lens[b]:
                    # The block's stimulus is over: silence its lanes so
                    # later cycles (driven by other blocks) cannot record
                    # detections past its length.
                    done[b] = True
                    kern.deactivate(kern.block_fault_mask(b))
                    patterns.append(None)
                else:
                    patterns.append(_check_pattern(s[u], n_pi))
            if all(done):
                break
            det = kern.step(patterns)
            while det:
                low = det & -det
                det ^= low
                bit = low.bit_length() - 1
                b, lane = divmod(bit, bb)
                detections[b][lane_fault[lane - 1]] = u
            if early_stop:
                for b in range(n_blocks):
                    if not done[b] and not (
                        kern.active & kern.block_fault_mask(b)
                    ):
                        done[b] = True
        return detections


class VectorIncremental:
    """Vector backend for :class:`~repro.sim.faultsim.IncrementalFaultSimulator`."""

    def __init__(
        self,
        comp: CompiledCircuit,
        flop_pos: Dict[str, int],
        faults: Sequence[Fault],
        packing: Optional[str] = None,
    ) -> None:
        self.comp = comp
        self.flop_pos = dict(flop_pos)
        self._packing = packing
        self._lane_fault: Tuple[Fault, ...] = tuple(faults)
        prog = build_program(comp, flop_pos, self._lane_fault)
        self._kern = make_kernel(prog, 1, packing)
        self._n_pi = len(comp.pi_indices)

    def remaining_faults(self) -> List[Fault]:
        act = self._kern.active
        return [
            fault
            for lane, fault in enumerate(self._lane_fault, start=1)
            if (act >> lane) & 1
        ]

    def step(self, pattern: Sequence[Value]) -> List[Fault]:
        pat = _check_pattern(pattern, self._n_pi)
        det = self._kern.step([pat])
        newly: List[Fault] = []
        while det:
            low = det & -det
            det ^= low
            newly.append(self._lane_fault[low.bit_length() - 2])
        return newly

    def peek(self, pattern: Sequence[Value]) -> int:
        pat = _check_pattern(pattern, self._n_pi)
        snap = self._kern.snapshot()
        det = self._kern.step([pat])
        self._kern.restore(snap)
        return _popcount(det)

    def reset_state(self) -> None:
        self._kern.reset_state()

    def regroup(self) -> None:
        """Repack survivors densely, preserving every machine's state."""
        kern = self._kern
        act = kern.active
        survivors: List[Tuple[Fault, int]] = []
        while act:
            low = act & -act
            act ^= low
            lane = low.bit_length() - 1
            survivors.append((self._lane_fault[lane - 1], lane))
        good = kern.extract_lane(0)
        states = [kern.extract_lane(lane) for _, lane in survivors]
        self._lane_fault = tuple(f for f, _ in survivors)
        prog = build_program(self.comp, self.flop_pos, self._lane_fault)
        self._kern = make_kernel(prog, 1, self._packing)
        self._kern.load_state([good] + states)
