"""Vectorized bit-parallel fault-simulation backend.

The package packs the good machine plus every faulty machine of a run
into contiguous machine words and evaluates levelized gates as bitwise
operations over *all* fault copies and (for batched screening) several
weighted sequences at once.  Two interchangeable kernels implement the
same word-level semantics:

* :class:`~repro.sim.vector.kernels.IntKernel` — pure stdlib; one
  arbitrary-precision integer per net spans every lane, so the bitwise
  ops run in CPython's C bignum loops.  Always available.
* :class:`~repro.sim.vector.kernels.NumpyKernel` — ``uint64`` planes of
  shape ``(n_nets, n_words)`` with gather + reduce per levelized batch.
  Used automatically when numpy is importable (and not disabled via
  ``REPRO_NO_NUMPY``) and the lane count spans multiple words.

Both kernels execute the same :class:`~repro.sim.vector.program.VectorProgram`
and are proven bit-identical to the pure-Python oracle in
``repro.sim.faultsim`` by the cross-backend differential test suite.
"""

from repro.sim.vector.packing import (
    WORD_BITS,
    choose_packing,
    numpy_available,
)
from repro.sim.vector.program import VectorProgram, build_program
from repro.sim.vector.kernels import IntKernel, NumpyKernel, make_kernel
from repro.sim.vector.engine import VectorEngine, VectorIncremental

__all__ = [
    "WORD_BITS",
    "choose_packing",
    "numpy_available",
    "VectorProgram",
    "build_program",
    "IntKernel",
    "NumpyKernel",
    "make_kernel",
    "VectorEngine",
    "VectorIncremental",
]
