"""Word-packing policy for the vector kernels.

Everything that depends on the machine-word width lives here: the lane
count per word, the numpy availability gate, and the kernel-selection
heuristic.  ``repro.sim.faultsim`` derives its group size from
:data:`WORD_BITS` instead of hard-coding the host word size, so a
packing with a different width (the int kernel accepts any
``word_bits``) keeps every mask/boundary computation correct.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError

WORD_BITS = 64
"""Lanes per machine word.  Lane 0 of each block is the good machine."""

_NUMPY_CACHE: dict = {}


def numpy_available() -> bool:
    """True when numpy can back a kernel.

    ``REPRO_NO_NUMPY=1`` forces the pure-stdlib fallback even when numpy
    is importable — CI uses this to prove the fallback path without
    uninstalling anything.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    if "ok" not in _NUMPY_CACHE:
        try:
            import numpy  # noqa: F401

            _NUMPY_CACHE["ok"] = True
        except Exception:  # pragma: no cover - exercised via REPRO_NO_NUMPY
            _NUMPY_CACHE["ok"] = False
    return _NUMPY_CACHE["ok"]


def choose_packing(words_per_block: int, n_blocks: int = 1) -> str:
    """Pick the kernel packing for ``n_blocks`` blocks of
    ``words_per_block`` words each.

    ``REPRO_SIM_PACKING=int|numpy`` overrides the default (the
    differential tests force each packing through the same paths).
    The default is the big-int kernel: its generated straight-line step
    function beats the numpy kernel's per-wave gather/scatter dispatch
    at every measured width — numpy only draws level on the widest
    bundled circuit at the maximum block count — so numpy is an opt-in
    packing rather than an auto-selected one.  Both arguments stay part
    of the signature so a future policy can key on run shape without
    touching callers.
    """
    forced = os.environ.get("REPRO_SIM_PACKING", "").strip().lower()
    if forced:
        if forced not in ("int", "numpy"):
            raise SimulationError(f"unknown packing {forced!r}")
        if forced == "numpy" and not numpy_available():
            raise SimulationError(
                "numpy packing requested but numpy is unavailable"
            )
        return forced
    return "int"
