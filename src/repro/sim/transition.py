"""Transition (gross-delay) fault simulation.

The paper's references [11] and [15] extend weighted testing to *delay
faults*, which need two-pattern tests; the paper notes its subsequence
weights are "a more natural extension" of those 5-weight schemes (a
weight ``01`` is exactly the ``w01`` rising weight of [11]).  This
module adds the fault model that makes the claim measurable: gross-delay
transition faults, where a slow-to-rise (slow-to-fall) net lags one
clock behind on rising (falling) transitions.

Model (standard single-fault gross-delay): the faulty machine's value
at the fault site is

    slow-to-rise:  v_f(t) = d(t) AND d(t-1)
    slow-to-fall:  v_f(t) = d(t) OR  d(t-1)

where ``d`` is the site's *driving* value in the faulty machine — not
the fault-free value: once fault effects circulate through the state
registers they can re-enter the site's own input cone, so ``d`` must be
computed in the faulty machine itself.

Simulation therefore runs each cycle in **two passes** on the stuck-at
group engine: pass 1 evaluates the cycle with no forcing to obtain each
faulty machine's natural site value ``d(t)`` (the state snapshot is
then restored), pass 2 re-evaluates with the per-bit forcing words
``f(d(t), d(t-1))`` applied at the sites (ternary AND/OR, with an
explicit X-force when the combination is unknown).  This is exact
under the single-fault gross-delay model; the test suite checks it
against an independent stepwise reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import FaultModelError
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faultsim import GROUP_FAULTS, FaultSimResult, _GroupSim
from repro.sim.logicsim import LogicSimulator
from repro.sim.values import V0, V1, VX, Value


@dataclass(frozen=True)
class TransitionFault:
    """A gross-delay transition fault on a net's stem.

    Attributes
    ----------
    net:
        The slow net.
    slow_to:
        1 for slow-to-rise, 0 for slow-to-fall.
    """

    net: str
    slow_to: int

    def __post_init__(self) -> None:
        if self.slow_to not in (0, 1):
            raise FaultModelError(
                f"slow_to must be 0 (fall) or 1 (rise), got {self.slow_to!r}"
            )

    @property
    def sort_key(self) -> tuple:
        return (self.net, self.slow_to)

    def __lt__(self, other: "TransitionFault") -> bool:
        if not isinstance(other, TransitionFault):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __str__(self) -> str:
        kind = "STR" if self.slow_to else "STF"
        return f"{self.net}/{kind}"


def all_transition_faults(circuit: Circuit) -> List[TransitionFault]:
    """Both transition faults on every non-constant net."""
    faults = []
    for net, gate in circuit.gates.items():
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        faults.append(TransitionFault(net, 1))
        faults.append(TransitionFault(net, 0))
    return sorted(faults)


def _forced_value(fault: TransitionFault, current: Value, previous: Value) -> Value:
    """The faulty site value under the gross-delay model (ternary)."""
    if fault.slow_to == 1:  # slow-to-rise: AND of consecutive values
        if current == V0 or previous == V0:
            return V0
        if current == V1 and previous == V1:
            return V1
        return VX
    # slow-to-fall: OR of consecutive values
    if current == V1 or previous == V1:
        return V1
    if current == V0 and previous == V0:
        return V0
    return VX


class TransitionFaultSimulator:
    """Bit-parallel sequential transition fault simulator."""

    def __init__(self, circuit: Circuit, compiled: CompiledCircuit | None = None) -> None:
        self.circuit = circuit
        self.comp = compiled or compile_circuit(circuit)
        self._logic = LogicSimulator(circuit, self.comp)

    def run(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[TransitionFault],
    ) -> FaultSimResult:
        """Simulate ``stimulus`` against the transition ``faults``.

        Detection: binary good PO value vs the complementary binary
        faulty value, as for stuck-at faults.
        """
        for fault in faults:
            if fault.net not in self.circuit:
                raise FaultModelError(f"no net named {fault.net!r}")

        detection: Dict[TransitionFault, int] = {}
        for start in range(0, len(faults), GROUP_FAULTS):
            group = list(faults[start : start + GROUP_FAULTS])
            self._run_group(stimulus, group, detection)
        undetected = tuple(f for f in faults if f not in detection)
        return FaultSimResult(
            detection_time=detection,
            undetected=undetected,
            n_faults=len(faults),
        )

    def detects_any(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[TransitionFault],
    ) -> bool:
        """True iff ``stimulus`` detects at least one of ``faults``.

        Mirrors :meth:`FaultSimulator.detects_any` so transition faults
        can drive the weight-selection procedure's screening shortcut.
        """
        result = self.run(stimulus, faults)
        return bool(result.detection_time)

    def _run_group(self, stimulus, group, detection) -> None:
        comp = self.comp
        flop_pos = {name: i for i, name in enumerate(self.circuit.flops)}
        # Register every site as a stuck-at-0 stem "placeholder": this
        # creates the mutable force slots inside the group engine; the
        # per-cycle loop rewrites them before each pass-2 step.
        from repro.sim.faults import Fault as StuckFault

        placeholders = [StuckFault(f.net, 0) for f in group]
        sim = _GroupSim(comp, flop_pos, placeholders)
        slot_of_net = _extract_stem_slots(
            sim, comp, {comp.index[f.net] for f in group}
        )

        bit_of_fault = {f: 1 << (k + 1) for k, f in enumerate(group)}
        site_index = {f: comp.index[f.net] for f in group}
        site_indices = sorted(set(site_index.values()))
        # Previous-cycle *driver* values per site: (ones, zeros) words.
        prev_driver: Dict[int, Tuple[int, int]] = {
            idx: (0, 0) for idx in site_indices
        }

        for u, pattern in enumerate(stimulus):
            # Pass 1: natural (unforced) evaluation to read the faulty
            # machines' driving values at every site.
            for slot in slot_of_net.values():
                slot[0] = slot[1] = slot[2] = 0
            snap = sim.snapshot()
            sim.step(pattern)
            driver = {
                idx: (sim.ones[idx], sim.zeros[idx]) for idx in site_indices
            }
            sim.restore(snap)

            # Pass 2: force each fault bit to f(d(t), d(t-1)).
            for fault in group:
                idx = site_index[fault]
                bit = bit_of_fault[fault]
                d_o, d_z = driver[idx]
                p_o, p_z = prev_driver[idx] if u > 0 else (0, 0)
                current = V1 if d_o & bit else V0 if d_z & bit else VX
                previous = V1 if p_o & bit else V0 if p_z & bit else VX
                value = _forced_value(fault, current, previous)
                if value == VX:
                    slot_of_net[idx][2] |= bit
                else:
                    slot_of_net[idx][value] |= bit
            prev_driver = driver

            newly = sim.step(pattern)
            while newly:
                low = newly & -newly
                newly ^= low
                fault = group[low.bit_length() - 2]
                detection[fault] = u


def _extract_stem_slots(
    sim: _GroupSim, comp: CompiledCircuit, net_indices: set
) -> Dict[int, List[int]]:
    """Locate the group engine's mutable stem-force slots per net.

    The engine shares one ``[force0, force1]`` list per stem net across
    its PI/FF/op annotations; rewriting those lists in place changes
    the force the next ``step`` applies.
    """
    slots: Dict[int, List[int]] = {}
    for slot, idx in zip(sim._pi_sf, comp.pi_indices):  # noqa: SLF001
        if slot is not None and idx in net_indices:
            slots[idx] = slot
    for slot, idx in zip(sim._ff_sf, comp.ff_indices):  # noqa: SLF001
        if slot is not None and idx in net_indices:
            slots[idx] = slot
    for _opcode, out, _fanins, _pf, sf in sim._ops:  # noqa: SLF001
        if sf is not None and out in net_indices:
            slots[out] = sf
    missing = net_indices - set(slots)
    if missing:  # pragma: no cover — every site must be a PI/FF/gate
        raise FaultModelError(f"no force slot for nets {sorted(missing)}")
    return slots
