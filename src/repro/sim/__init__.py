"""Simulation substrate: 3-valued logic simulation and stuck-at fault
simulation for synchronous sequential circuits.

The fault simulator is bit-parallel *across faults* (PROOFS-style): up
to 63 faulty machines plus the fault-free machine share one arbitrary-
precision integer word per net, and gates are evaluated once per word
with bitwise operations.  Detection uses the standard conservative
criterion for circuits without reset — a fault is detected at time ``u``
iff some primary output carries a *binary* good value and the
complementary binary faulty value.
"""

from repro.sim.values import V0, V1, VX, Value, invert, resolve_char, to_char
from repro.sim.backend import BACKENDS, resolve_backend, validate_backend
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.logicsim import LogicSimulator, SimTrace
from repro.sim.faults import Fault, all_faults, fault_name
from repro.sim.collapse import collapse_faults
from repro.sim.faultsim import (
    FaultSimResult,
    FaultSimulator,
    IncrementalFaultSimulator,
    detection_times,
)
from repro.sim.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    all_transition_faults,
)

__all__ = [
    "V0",
    "V1",
    "VX",
    "Value",
    "invert",
    "to_char",
    "resolve_char",
    "BACKENDS",
    "resolve_backend",
    "validate_backend",
    "CompiledCircuit",
    "compile_circuit",
    "LogicSimulator",
    "SimTrace",
    "Fault",
    "all_faults",
    "fault_name",
    "collapse_faults",
    "FaultSimulator",
    "FaultSimResult",
    "IncrementalFaultSimulator",
    "detection_times",
    "TransitionFault",
    "TransitionFaultSimulator",
    "all_transition_faults",
]
