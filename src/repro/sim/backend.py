"""Fault-simulation backend selection.

Two backends implement identical semantics:

* ``"python"`` — the pure-Python oracle in :mod:`repro.sim.faultsim`.
* ``"vector"`` — the word-packed kernel in :mod:`repro.sim.vector`
  (numpy when available, pure-stdlib big-int fallback otherwise).

``"auto"`` resolves to ``"vector"``: the backends are proven
bit-identical by the cross-backend differential suite, so the faster
one is the default everywhere.  Resolution precedence: explicit
``backend=`` argument > ``RuntimeContext.sim_backend`` >
``REPRO_SIM_BACKEND`` environment variable > ``"auto"``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import SimulationError

BACKENDS = ("auto", "python", "vector")

_ENV_VAR = "REPRO_SIM_BACKEND"


def validate_backend(name: str) -> str:
    """Return ``name`` if it is a known backend selector, else raise."""
    if name not in BACKENDS:
        raise SimulationError(
            f"unknown sim backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def resolve_backend(requested: Optional[str] = None, runtime=None) -> str:
    """Resolve a backend request to ``"python"`` or ``"vector"``.

    ``"auto"`` (and ``None``) defer to the next source in the
    precedence chain; when every source is ``auto`` the vector backend
    is chosen.
    """
    candidates = [
        requested,
        getattr(runtime, "sim_backend", None) if runtime is not None else None,
        os.environ.get(_ENV_VAR, "").strip() or None,
    ]
    for choice in candidates:
        if choice is None:
            continue
        validate_backend(choice)
        if choice != "auto":
            return choice
    return "vector"
