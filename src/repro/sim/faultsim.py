"""Bit-parallel sequential stuck-at fault simulation (PROOFS-style).

Faults are simulated in groups: each group packs the fault-free machine
into bit 0 of an integer word and up to :data:`GROUP_FAULTS` faulty
machines into bits 1..63.  Every net holds a ``(ones, zeros)`` pair of
machine words (bit set in ``ones`` = that machine sees 1; in ``zeros``
= 0; in neither = X), so one pass of bitwise gate evaluations simulates
all machines of the group simultaneously.  Fault effects propagate into
the flip-flop words and therefore across clock cycles, as sequential
fault simulation requires.

Detection criterion (paper semantics, no reset): fault ``f`` is detected
at time ``u`` iff some primary output has a *binary* fault-free value
and the complementary binary value in ``f``'s machine.

Two front ends share the stepping engine:

* :class:`FaultSimulator` — whole-sequence runs with fault dropping.
* :class:`IncrementalFaultSimulator` — pattern-at-a-time stepping with
  snapshot/restore, used by the simulation-based test generator to
  evaluate candidate patterns without re-simulating the prefix.

:class:`FaultSimulator` optionally plugs into the runtime layer
(:mod:`repro.runtime`): given a
:class:`~repro.runtime.context.RuntimeContext` it (a) serves repeated
``run`` / ``detects_any`` calls from the content-addressed artifact
cache and (b) shards whole-sequence runs across fault groups on the
context's worker pool.  Both are behaviourally invisible — results are
identical to the serial, uncached run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.bench import write_bench
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.sim.compile import (
    CompiledCircuit,
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    compile_circuit,
)
from repro.sim.backend import resolve_backend
from repro.sim.faults import Fault, FaultPruner, fault_name, validate_fault
from repro.sim.values import V0, V1, VX, Value
from repro.sim.vector.packing import WORD_BITS
from repro.trace import trace_event

GROUP_FAULTS = WORD_BITS - 1
"""Faulty machines per simulation word (bit 0 is the good machine).

Derived from the packing module's word width rather than assuming the
host word size, so every group/snapshot/mask computation stays correct
if the packing width ever changes.
"""


class _GroupSim:
    """Stepping engine for one group of up to 63 faults.

    Holds the circuit state words between steps.  ``step`` applies one
    input pattern, returns the mask of newly detected fault bits, and
    leaves the cycle's net values in :attr:`ones` / :attr:`zeros` for
    inspection (e.g. per-line discrepancy recording).
    """

    def __init__(
        self,
        comp: CompiledCircuit,
        flop_pos: Dict[str, int],
        group: Sequence[Fault],
    ) -> None:
        if len(group) > GROUP_FAULTS:
            raise SimulationError(f"group of {len(group)} exceeds {GROUP_FAULTS}")
        self.comp = comp
        self.full = (1 << (len(group) + 1)) - 1
        self.bit_fault: Dict[int, Fault] = {}

        stem_force: Dict[int, List[int]] = {}
        pin_force: Dict[int, Dict[int, List[int]]] = {}
        self._ff_force: Dict[int, List[int]] = {}
        for offset, fault in enumerate(group):
            bit = 1 << (offset + 1)
            self.bit_fault[offset + 1] = fault
            if fault.is_branch and fault.gate in flop_pos:
                slot = self._ff_force.setdefault(flop_pos[fault.gate], [0, 0, 0])
            elif fault.is_branch:
                gate_idx = comp.index[fault.gate]
                slot = pin_force.setdefault(gate_idx, {}).setdefault(
                    fault.pin, [0, 0, 0]
                )
            else:
                slot = stem_force.setdefault(comp.index[fault.net], [0, 0, 0])
            slot[fault.stuck] |= bit

        self._ops = tuple(
            (opcode, out, fanins, pin_force.get(out), stem_force.get(out))
            for opcode, out, fanins in comp.ops
        )
        self._pi_sf = [stem_force.get(idx) for idx in comp.pi_indices]
        self._ff_sf = [stem_force.get(idx) for idx in comp.ff_indices]

        self.ones = [0] * comp.n_nets
        self.zeros = [0] * comp.n_nets
        self.state: List[Tuple[int, int]] = [(0, 0)] * len(comp.ff_indices)
        self.active = self.full & ~1

    # -- state management -------------------------------------------------

    def snapshot(self) -> Tuple[List[Tuple[int, int]], int]:
        """Capture (flip-flop state, active mask) for later restore."""
        return (list(self.state), self.active)

    def restore(self, snap: Tuple[List[Tuple[int, int]], int]) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        state, active = snap
        self.state = list(state)
        self.active = active

    def reset_state(self) -> None:
        """Force the circuit state to all-X (does not reactivate faults)."""
        self.state = [(0, 0)] * len(self.comp.ff_indices)

    def faults_of_mask(self, mask: int) -> List[Fault]:
        """Map a bit mask back to its faults."""
        faults = []
        while mask:
            low = mask & -mask
            mask ^= low
            faults.append(self.bit_fault[low.bit_length() - 1])
        return faults

    # -- stepping ----------------------------------------------------------

    def step(self, pattern: Sequence[Value]) -> int:
        """Apply one pattern; return newly detected fault bits.

        Newly detected bits are removed from :attr:`active`.
        """
        comp = self.comp
        full = self.full
        ones = self.ones
        zeros = self.zeros

        if len(pattern) != len(comp.pi_indices):
            raise SimulationError(
                f"pattern has {len(pattern)} values, circuit has "
                f"{len(comp.pi_indices)} primary inputs"
            )
        for slot, (idx, value) in enumerate(zip(comp.pi_indices, pattern)):
            if value == V1:
                o, z = full, 0
            elif value == V0:
                o, z = 0, full
            elif value == VX:
                o, z = 0, 0
            else:
                raise SimulationError(f"bad ternary value {value!r}")
            sf = self._pi_sf[slot]
            if sf is not None:
                f0, f1, fx = sf
                o = ((o | f1) & ~f0) & ~fx
                z = ((z | f0) & ~f1) & ~fx
            ones[idx], zeros[idx] = o, z
        for slot, idx in enumerate(comp.ff_indices):
            o, z = self.state[slot]
            sf = self._ff_sf[slot]
            if sf is not None:
                f0, f1, fx = sf
                o = ((o | f1) & ~f0) & ~fx
                z = ((z | f0) & ~f1) & ~fx
            ones[idx], zeros[idx] = o, z
        for idx in comp.const0_indices:
            ones[idx], zeros[idx] = 0, full
        for idx in comp.const1_indices:
            ones[idx], zeros[idx] = full, 0

        for opcode, out, fanins, pf, sf in self._ops:
            if pf is None:
                if opcode == OP_AND or opcode == OP_NAND:
                    o, z = full, 0
                    for f in fanins:
                        o &= ones[f]
                        z |= zeros[f]
                    if opcode == OP_NAND:
                        o, z = z, o
                elif opcode == OP_OR or opcode == OP_NOR:
                    o, z = 0, full
                    for f in fanins:
                        o |= ones[f]
                        z &= zeros[f]
                    if opcode == OP_NOR:
                        o, z = z, o
                elif opcode == OP_NOT:
                    f = fanins[0]
                    o, z = zeros[f], ones[f]
                elif opcode == OP_BUF:
                    f = fanins[0]
                    o, z = ones[f], zeros[f]
                else:  # XOR / XNOR
                    f = fanins[0]
                    o, z = ones[f], zeros[f]
                    for f in fanins[1:]:
                        fo, fz = ones[f], zeros[f]
                        o, z = (o & fz) | (z & fo), (o & fo) | (z & fz)
                    if opcode == OP_XNOR:
                        o, z = z, o
            else:
                o, z = _eval_with_pin_forces(opcode, fanins, pf, ones, zeros, full)
            if sf is not None:
                f0, f1, fx = sf
                o = ((o | f1) & ~f0) & ~fx
                z = ((z | f0) & ~f1) & ~fx
            ones[out], zeros[out] = o, z

        detected = 0
        if self.active:
            for idx in comp.po_indices:
                o, z = ones[idx], zeros[idx]
                if o & 1:
                    detected |= z & self.active
                elif z & 1:
                    detected |= o & self.active
            self.active &= ~detected

        new_state = []
        for slot, idx in enumerate(comp.ff_next_indices):
            o, z = ones[idx], zeros[idx]
            force = self._ff_force.get(slot)
            if force is not None:
                f0, f1, fx = force
                o = ((o | f1) & ~f0) & ~fx
                z = ((z | f0) & ~f1) & ~fx
            new_state.append((o, z))
        self.state = new_state
        return detected

    def discrepancy_lines(self) -> Dict[Fault, List[str]]:
        """Nets where each fault's machine disagrees (binary vs binary
        complement) with the good machine in the *last stepped cycle*.

        Scans all faults of the group, detected or not — observation
        point analysis needs discrepancies regardless of PO detection.
        """
        comp = self.comp
        names = comp.names
        out: Dict[Fault, List[str]] = {}
        all_bits = self.full & ~1
        for idx in range(comp.n_nets):
            o, z = self.ones[idx], self.zeros[idx]
            if o & 1:
                diff = z & all_bits
            elif z & 1:
                diff = o & all_bits
            else:
                continue
            while diff:
                low = diff & -diff
                diff ^= low
                out.setdefault(self.bit_fault[low.bit_length() - 1], []).append(names[idx])
        return out


@dataclass
class FaultSimResult:
    """Outcome of one fault simulation run.

    Attributes
    ----------
    detection_time:
        First detection time for every detected fault.
    undetected:
        Faults never detected by the stimulus.
    n_faults:
        Total faults simulated.
    lines:
        Only when line recording was requested: for each fault, the set
        of net names where its effect appeared as a binary discrepancy
        at any time unit (used for observation-point insertion).
    """

    detection_time: Dict[Fault, int]
    undetected: Tuple[Fault, ...]
    n_faults: int
    lines: Dict[Fault, Set[str]] = field(default_factory=dict)

    @property
    def detected(self) -> Tuple[Fault, ...]:
        """Detected faults, sorted by (detection time, fault)."""
        return tuple(
            sorted(self.detection_time, key=lambda f: (self.detection_time[f], f))
        )

    @property
    def coverage(self) -> float:
        """Fraction of simulated faults detected."""
        if not self.n_faults:
            return 1.0
        return len(self.detection_time) / self.n_faults


class FaultSimulator:
    """Sequential stuck-at fault simulator for one circuit.

    Reusable and stateless between :meth:`run` calls; every run starts
    from the all-X circuit state (the paper's no-reset assumption).

    ``runtime`` (a :class:`~repro.runtime.context.RuntimeContext`)
    plugs the simulator into the artifact cache and the worker pool;
    results never depend on it.

    ``pruner`` (a :class:`~repro.sim.faults.FaultPruner`) arms the
    certified pre-prune: faults proved untestable by the static
    implication engine are excluded from simulation, but results are
    always rebuilt over the caller's full fault list — the pruned
    faults reappear among ``undetected`` and ``n_faults`` counts them,
    so coverage denominators and detection outcomes are identical to an
    unpruned run (certified faults are never detectable).  Pruning is
    skipped for line-recording runs, whose per-net discrepancy sets are
    meaningful even for unobservable faults.
    """

    def __init__(
        self,
        circuit: Circuit,
        compiled: CompiledCircuit | None = None,
        runtime=None,
        pruner: Optional[FaultPruner] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.comp = compiled or compile_circuit(circuit)
        self.runtime = runtime
        self.pruner = pruner
        self.backend = resolve_backend(backend, runtime)
        self._prune_traced = False
        self._flop_pos = {name: i for i, name in enumerate(circuit.flops)}
        self._cache_ids_memo: Optional[Tuple[str, str]] = None
        self._vec_engine = None

    @property
    def _use_vector(self) -> bool:
        """Vector kernel applies only to the exact base class — subclasses
        carry different step semantics the kernel does not implement."""
        return self.backend == "vector" and type(self) is FaultSimulator

    def _vector_engine(self):
        if self._vec_engine is None:
            from repro.sim.vector.engine import VectorEngine

            self._vec_engine = VectorEngine(self.comp, self._flop_pos)
        return self._vec_engine

    # -- runtime plumbing ---------------------------------------------------

    def _ctx(self):
        """The runtime context, but only for the exact base class.

        Subclasses with different semantics (they would corrupt the
        cache and the workers run plain stuck-at simulation) fall back
        to serial, uncached behaviour unless they opt in themselves.
        """
        return self.runtime if type(self) is FaultSimulator else None

    def _cache_ids(self) -> Tuple[str, str]:
        """(circuit fingerprint, canonical bench text), memoized."""
        if self._cache_ids_memo is None:
            from repro.runtime.keys import fingerprint

            text = write_bench(self.circuit)
            self._cache_ids_memo = (fingerprint(text), text)
        return self._cache_ids_memo

    def _artifact_key(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        config: Dict[str, object],
    ) -> str:
        from repro.runtime.keys import (
            faults_fingerprint,
            simulation_key,
            stimulus_fingerprint,
        )

        circuit_fp, _ = self._cache_ids()
        config = dict(config)
        config["sim"] = type(self).__name__
        return simulation_key(
            circuit_fp,
            stimulus_fingerprint(stimulus),
            faults_fingerprint(faults),
            config,
        )

    # -- whole-sequence runs ------------------------------------------------

    def run(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        record_lines: bool = False,
        stop_when_all_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``stimulus`` against ``faults``.

        Parameters
        ----------
        stimulus:
            Per time unit, ternary primary-input values in port order.
        faults:
            The faults to simulate; each is validated first.
        record_lines:
            Record, per fault, every net where a binary discrepancy
            appears (slower; used for observation-point analysis).
            Disables early stopping, because discrepancies after first
            detection still matter.
        stop_when_all_detected:
            Stop a group's simulation once all its faults are detected.
            (Does not influence the result — only how far simulation
            continues after the last detection — so it is not part of
            the cache key.)
        """
        faults = list(faults)
        for fault in faults:
            validate_fault(self.circuit, fault)
        kept = None if record_lines else self._prune(faults)
        if kept is not None:
            inner = self._run_validated(
                stimulus, kept, record_lines, stop_when_all_detected
            )
            detection = dict(inner.detection_time)
            return FaultSimResult(
                detection_time=detection,
                undetected=tuple(f for f in faults if f not in detection),
                n_faults=len(faults),
                lines=inner.lines,
            )
        return self._run_validated(
            stimulus, faults, record_lines, stop_when_all_detected
        )

    def _prune(self, faults: Sequence[Fault]) -> Optional[List[Fault]]:
        """The kept-fault sublist when pruning removes anything, else None.

        The cache key of the inner run then covers the *kept* set only;
        that artifact is shared with unpruned runs over the same list,
        and is sound because certified faults carry no detections.
        """
        if self.pruner is None:
            return None
        kept, pruned = self.pruner.split(faults)
        if not pruned:
            return None
        if not self._prune_traced:
            # One attribution event per simulator, not one per screen —
            # a flow screens thousands of candidate sequences.
            self._prune_traced = True
            trace_event(
                self._ctx(),
                "prune",
                circuit=self.circuit.name,
                n_faults=len(faults),
                pruned=len(pruned),
            )
        return kept

    def _run_validated(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        record_lines: bool,
        stop_when_all_detected: bool,
    ) -> FaultSimResult:
        """The cached whole-sequence run (faults already validated)."""
        ctx = self._ctx()
        key = None
        if ctx is not None and ctx.cache is not None:
            key = self._artifact_key(
                stimulus, faults, {"kind": "run", "record_lines": record_lines}
            )
            payload = ctx.cache.get(key)
            if payload is not None:
                result = _result_from_payload(payload, faults, record_lines)
                if result is not None:
                    ctx.stats.full_sim_hits += 1
                    trace_event(ctx, "cache_hit", op="run", key=key)
                    return result
            ctx.stats.cache_misses += 1
            trace_event(ctx, "cache_miss", op="run", key=key)
        result = self._simulate(
            stimulus, faults, record_lines, stop_when_all_detected, ctx
        )
        if ctx is not None:
            ctx.stats.full_simulations += 1
            if key is not None:
                ctx.cache.put(key, _result_payload(result, record_lines))
        return result

    def _simulate(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        record_lines: bool,
        stop_when_all_detected: bool,
        ctx=None,
    ) -> FaultSimResult:
        """The actual simulation — sharded across the worker pool when
        the runtime provides one and there is more than one group."""
        if (
            ctx is not None
            and ctx.executor.jobs > 1
            and len(faults) > GROUP_FAULTS
        ):
            return self._simulate_sharded(
                stimulus, faults, record_lines, stop_when_all_detected, ctx
            )
        if self._use_vector:
            detection, vlines = self._vector_engine().run(
                stimulus,
                faults,
                record_lines,
                stop_when_all_detected and not record_lines,
            )
            return FaultSimResult(
                detection_time=detection,
                undetected=tuple(f for f in faults if f not in detection),
                n_faults=len(faults),
                lines=vlines,
            )
        detection: Dict[Fault, int] = {}
        lines: Dict[Fault, Set[str]] = {f: set() for f in faults} if record_lines else {}
        early_stop = stop_when_all_detected and not record_lines
        for start in range(0, len(faults), GROUP_FAULTS):
            group = faults[start : start + GROUP_FAULTS]
            sim = _GroupSim(self.comp, self._flop_pos, group)
            for u, pattern in enumerate(stimulus):
                newly = sim.step(pattern)
                while newly:
                    low = newly & -newly
                    newly ^= low
                    detection[sim.bit_fault[low.bit_length() - 1]] = u
                if record_lines:
                    for fault, nets in sim.discrepancy_lines().items():
                        lines[fault].update(nets)
                if early_stop and not sim.active:
                    break
        undetected = tuple(f for f in faults if f not in detection)
        return FaultSimResult(
            detection_time=detection,
            undetected=undetected,
            n_faults=len(faults),
            lines=lines,
        )

    def _simulate_sharded(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        record_lines: bool,
        stop_when_all_detected: bool,
        ctx,
    ) -> FaultSimResult:
        """Fan the fault groups out to the executor and merge.

        Groups are independent (each packs its own machines into one
        word), so the merged result is identical to the serial run for
        any worker count.
        """
        _, bench_text = self._cache_ids()
        frozen = tuple(tuple(p) for p in stimulus)
        groups = [
            list(faults[start : start + GROUP_FAULTS])
            for start in range(0, len(faults), GROUP_FAULTS)
        ]
        parts = ctx.executor.run_fault_groups(
            bench_text,
            frozen,
            groups,
            record_lines,
            stop_when_all_detected,
            backend=self.backend,
        )
        detection: Dict[Fault, int] = {}
        lines: Dict[Fault, Set[str]] = {f: set() for f in faults} if record_lines else {}
        for part in parts:
            detection.update(part.detection_time)
            if record_lines:
                for fault, nets in part.lines.items():
                    lines[fault].update(nets)
        undetected = tuple(f for f in faults if f not in detection)
        return FaultSimResult(
            detection_time=detection,
            undetected=undetected,
            n_faults=len(faults),
            lines=lines,
        )

    # -- screening ----------------------------------------------------------

    def detects_any(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
    ) -> bool:
        """True iff ``stimulus`` detects at least one of ``faults``.

        Implements the paper's sample-first simulation shortcut
        (Section 4.2): a candidate weighted sequence is screened against
        a small fault sample and fully simulated only if the screen
        fires.  Stops at the first detection.
        """
        faults = list(faults)
        for fault in faults:
            validate_fault(self.circuit, fault)
        kept = self._prune(faults)
        if kept is not None:
            if not kept:
                return False
            faults = kept
        ctx = self._ctx()
        key = None
        if ctx is not None and ctx.cache is not None:
            key = self._artifact_key(stimulus, faults, {"kind": "screen"})
            payload = ctx.cache.get(key)
            if payload is not None and isinstance(payload.get("detects"), bool):
                ctx.stats.screen_hits += 1
                trace_event(ctx, "cache_hit", op="screen", key=key)
                return payload["detects"]
            ctx.stats.cache_misses += 1
            trace_event(ctx, "cache_miss", op="screen", key=key)
        verdict = self._screen(stimulus, faults)
        if ctx is not None:
            ctx.stats.screen_simulations += 1
            if key is not None:
                ctx.cache.put(key, {"detects": verdict})
        return verdict

    def _screen(
        self,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
    ) -> bool:
        if self._use_vector:
            return self._vector_engine().screen(stimulus, faults)
        for start in range(0, len(faults), GROUP_FAULTS):
            group = faults[start : start + GROUP_FAULTS]
            sim = _GroupSim(self.comp, self._flop_pos, group)
            for pattern in stimulus:
                if sim.step(pattern):
                    return True
        return False

    def detects_any_batch(
        self,
        stimuli: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
    ) -> List[bool]:
        """Screen several stimuli against one fault sample.

        Verdict ``i`` is exactly ``detects_any(stimuli[i], faults)``;
        with a multi-worker runtime the uncached screens run on the
        pool concurrently (cached ones are answered locally), and the
        vector backend screens all uncached stimuli in one multi-block
        kernel pass even without a worker pool.
        """
        stimuli = list(stimuli)
        ctx = self._ctx()
        pooled = ctx is not None and ctx.executor.jobs > 1
        if len(stimuli) <= 1 or not (pooled or self._use_vector):
            return [self.detects_any(s, faults) for s in stimuli]
        if ctx is None:
            # Vector backend without a runtime: no cache or stats to
            # maintain, just one batched kernel screen.
            faults = list(faults)
            for fault in faults:
                validate_fault(self.circuit, fault)
            kept = self._prune(faults)
            if kept is not None:
                if not kept:
                    return [False] * len(stimuli)
                faults = kept
            return self._vector_engine().screen_batch(stimuli, faults)
        faults = list(faults)
        for fault in faults:
            validate_fault(self.circuit, fault)
        kept = self._prune(faults)
        if kept is not None:
            if not kept:
                return [False] * len(stimuli)
            faults = kept
        verdicts: List[Optional[bool]] = [None] * len(stimuli)
        keys: Optional[List[str]] = None
        if ctx.cache is not None:
            keys = [
                self._artifact_key(s, faults, {"kind": "screen"})
                for s in stimuli
            ]
            pending: List[int] = []
            for i, key in enumerate(keys):
                payload = ctx.cache.get(key)
                if payload is not None and isinstance(payload.get("detects"), bool):
                    verdicts[i] = payload["detects"]
                    ctx.stats.screen_hits += 1
                    trace_event(ctx, "cache_hit", op="screen", key=key)
                else:
                    ctx.stats.cache_misses += 1
                    trace_event(ctx, "cache_miss", op="screen", key=key)
                    pending.append(i)
        else:
            pending = list(range(len(stimuli)))
        if pending:
            if pooled:
                _, bench_text = self._cache_ids()
                outcomes = ctx.executor.screen_batch(
                    bench_text,
                    [tuple(tuple(p) for p in stimuli[i]) for i in pending],
                    list(faults),
                    backend=self.backend,
                )
            else:
                outcomes = self._vector_engine().screen_batch(
                    [stimuli[i] for i in pending], faults
                )
            for i, verdict in zip(pending, outcomes):
                verdicts[i] = verdict
                ctx.stats.screen_simulations += 1
                if keys is not None:
                    ctx.cache.put(keys[i], {"detects": verdict})
        return verdicts  # type: ignore[return-value] — every slot is filled

    def run_batch(
        self,
        stimuli: Sequence[Sequence[Sequence[Value]]],
        faults: Sequence[Fault],
        record_lines: bool = False,
        stop_when_all_detected: bool = True,
    ) -> List[FaultSimResult]:
        """Whole-sequence runs over several stimuli against one fault list.

        Result ``i`` is exactly ``run(stimuli[i], faults, ...)``.  The
        vector backend simulates the uncached stimuli together, packing
        each into its own word-aligned lane block of a single kernel;
        other configurations fall back to a plain loop.
        """
        stimuli = list(stimuli)
        if not self._use_vector or record_lines or len(stimuli) <= 1:
            return [
                self.run(s, faults, record_lines, stop_when_all_detected)
                for s in stimuli
            ]
        faults = list(faults)
        for fault in faults:
            validate_fault(self.circuit, fault)
        kept = self._prune(faults)
        sim_faults = kept if kept is not None else faults
        ctx = self._ctx()
        results: List[Optional[FaultSimResult]] = [None] * len(stimuli)
        keys: Optional[List[str]] = None
        if ctx is not None and ctx.cache is not None:
            keys = [
                self._artifact_key(
                    s, sim_faults, {"kind": "run", "record_lines": False}
                )
                for s in stimuli
            ]
            pending: List[int] = []
            for i, key in enumerate(keys):
                payload = ctx.cache.get(key)
                if payload is not None:
                    inner = _result_from_payload(payload, sim_faults, False)
                    if inner is not None:
                        ctx.stats.full_sim_hits += 1
                        trace_event(ctx, "cache_hit", op="run", key=key)
                        results[i] = inner
                        continue
                ctx.stats.cache_misses += 1
                trace_event(ctx, "cache_miss", op="run", key=key)
                pending.append(i)
        else:
            pending = list(range(len(stimuli)))
        if pending:
            detections = self._vector_engine().run_batch(
                [stimuli[i] for i in pending],
                sim_faults,
                early_stop=stop_when_all_detected,
            )
            for i, detection in zip(pending, detections):
                inner = FaultSimResult(
                    detection_time=detection,
                    undetected=tuple(
                        f for f in sim_faults if f not in detection
                    ),
                    n_faults=len(sim_faults),
                )
                results[i] = inner
                if ctx is not None:
                    ctx.stats.full_simulations += 1
                    if keys is not None:
                        ctx.cache.put(keys[i], _result_payload(inner, False))
        if kept is None:
            return results  # type: ignore[return-value] — every slot filled
        final: List[FaultSimResult] = []
        for inner in results:
            detection = dict(inner.detection_time)  # type: ignore[union-attr]
            final.append(
                FaultSimResult(
                    detection_time=detection,
                    undetected=tuple(f for f in faults if f not in detection),
                    n_faults=len(faults),
                )
            )
        return final


class IncrementalFaultSimulator:
    """Pattern-at-a-time fault simulation with snapshot/restore.

    Used by the simulation-based test generator: candidate patterns are
    *peeked* (stepped on a copy of the state) and the best one is
    *committed*, so the growing sequence's prefix is never re-simulated.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Sequence[Fault],
        compiled: CompiledCircuit | None = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.comp = compiled or compile_circuit(circuit)
        self.backend = resolve_backend(backend)
        flop_pos = {name: i for i, name in enumerate(circuit.flops)}
        faults = list(faults)
        for fault in faults:
            validate_fault(circuit, fault)
        self._vec = None
        self._groups: List[_GroupSim] = []
        if self.backend == "vector":
            from repro.sim.vector.engine import VectorIncremental

            self._vec = VectorIncremental(self.comp, flop_pos, faults)
        else:
            self._groups = [
                _GroupSim(
                    self.comp, flop_pos, faults[start : start + GROUP_FAULTS]
                )
                for start in range(0, len(faults), GROUP_FAULTS)
            ]
        self._n_faults = len(faults)
        self._n_detected = 0

    @property
    def n_remaining(self) -> int:
        """Faults not yet detected."""
        return self._n_faults - self._n_detected

    def remaining_faults(self) -> List[Fault]:
        """The undetected faults, in group order."""
        if self._vec is not None:
            return self._vec.remaining_faults()
        out: List[Fault] = []
        for group in self._groups:
            out.extend(group.faults_of_mask(group.active))
        return out

    def step(self, pattern: Sequence[Value]) -> List[Fault]:
        """Commit one pattern; return the faults it newly detected."""
        if self._vec is not None:
            newly = self._vec.step(pattern)
            self._n_detected += len(newly)
            return newly
        newly = []
        for group in self._groups:
            bits = group.step(pattern)
            if bits:
                newly.extend(group.faults_of_mask(bits))
        self._n_detected += len(newly)
        return newly

    def peek(self, pattern: Sequence[Value]) -> int:
        """Count detections ``pattern`` would achieve, without committing."""
        if self._vec is not None:
            return self._vec.peek(pattern)
        count = 0
        for group in self._groups:
            snap = group.snapshot()
            bits = group.step(pattern)
            while bits:
                bits &= bits - 1
                count += 1
            group.restore(snap)
        return count

    def reset_state(self) -> None:
        """Reset the circuit state to all-X in every machine."""
        if self._vec is not None:
            self._vec.reset_state()
            return
        for group in self._groups:
            group.reset_state()

    def regroup(self) -> None:
        """Repack undetected faults into as few groups as possible.

        As faults are detected their machine bits go idle but their
        groups keep simulating; regrouping rebuilds dense groups while
        *preserving every remaining machine's flip-flop state*, so it is
        behaviourally invisible — only faster.
        """
        if self._vec is not None:
            self._vec.regroup()
            return
        if not self._groups:
            return
        n_ff = len(self.comp.ff_indices)
        # Good-machine state is identical in every group; take bit 0.
        good = [
            ((o & 1), (z & 1)) for o, z in self._groups[0].state
        ]
        survivors: List[Tuple[Fault, List[Tuple[int, int]]]] = []
        for group in self._groups:
            active = group.active
            while active:
                low = active & -active
                active ^= low
                bit = low.bit_length() - 1
                fault = group.bit_fault[bit]
                state = [
                    ((o >> bit) & 1, (z >> bit) & 1) for o, z in group.state
                ]
                survivors.append((fault, state))
        flop_pos = {name: i for i, name in enumerate(self.circuit.flops)}
        new_groups: List[_GroupSim] = []
        for start in range(0, len(survivors), GROUP_FAULTS):
            chunk = survivors[start : start + GROUP_FAULTS]
            sim = _GroupSim(self.comp, flop_pos, [f for f, _ in chunk])
            state: List[Tuple[int, int]] = []
            for slot in range(n_ff):
                ones_word = good[slot][0]
                zeros_word = good[slot][1]
                for offset, (_fault, fstate) in enumerate(chunk):
                    ones_word |= fstate[slot][0] << (offset + 1)
                    zeros_word |= fstate[slot][1] << (offset + 1)
                state.append((ones_word, zeros_word))
            sim.state = state
            new_groups.append(sim)
        self._groups = new_groups


def _eval_with_pin_forces(
    opcode: int,
    fanins: Tuple[int, ...],
    pf: Dict[int, List[int]],
    ones: List[int],
    zeros: List[int],
    full: int,
) -> Tuple[int, int]:
    """Evaluate a gate whose input pins carry branch-fault forces."""
    ins: List[Tuple[int, int]] = []
    for pin, f in enumerate(fanins):
        o, z = ones[f], zeros[f]
        force = pf.get(pin)
        if force is not None:
            f0, f1, fx = force
            o = ((o | f1) & ~f0) & ~fx
            z = ((z | f0) & ~f1) & ~fx
        ins.append((o, z))
    if opcode == OP_AND or opcode == OP_NAND:
        o, z = full, 0
        for fo, fz in ins:
            o &= fo
            z |= fz
        return (z, o) if opcode == OP_NAND else (o, z)
    if opcode == OP_OR or opcode == OP_NOR:
        o, z = 0, full
        for fo, fz in ins:
            o |= fo
            z &= fz
        return (z, o) if opcode == OP_NOR else (o, z)
    if opcode == OP_NOT:
        o, z = ins[0]
        return z, o
    if opcode == OP_BUF:
        return ins[0]
    # XOR / XNOR
    o, z = ins[0]
    for fo, fz in ins[1:]:
        o, z = (o & fz) | (z & fo), (o & fo) | (z & fz)
    if opcode == OP_XNOR:
        return z, o
    return o, z


def _result_payload(result: FaultSimResult, record_lines: bool) -> dict:
    """JSON-serializable cache payload for a :class:`FaultSimResult`."""
    payload: dict = {
        "n_faults": result.n_faults,
        "detection": sorted(
            ([fault_name(f), u] for f, u in result.detection_time.items()),
        ),
    }
    if record_lines:
        payload["lines"] = {
            fault_name(f): sorted(nets) for f, nets in result.lines.items()
        }
    return payload


def _result_from_payload(
    payload: dict, faults: Sequence[Fault], record_lines: bool
) -> Optional[FaultSimResult]:
    """Rebuild a result from a cache payload against the caller's fault
    objects; None when the payload does not fit (treated as a miss)."""
    by_name = {fault_name(f): f for f in faults}
    try:
        if payload["n_faults"] != len(faults):
            return None
        detection = {by_name[name]: int(u) for name, u in payload["detection"]}
        lines: Dict[Fault, Set[str]] = {}
        if record_lines:
            lines = {f: set() for f in faults}
            for name, nets in payload["lines"].items():
                lines[by_name[name]] = set(nets)
    except (KeyError, TypeError, ValueError):
        return None
    undetected = tuple(f for f in faults if f not in detection)
    return FaultSimResult(
        detection_time=detection,
        undetected=undetected,
        n_faults=len(faults),
        lines=lines,
    )


def detection_times(
    circuit: Circuit,
    stimulus: Sequence[Sequence[Value]],
    faults: Sequence[Fault],
    simulator: FaultSimulator | None = None,
) -> Dict[Fault, int]:
    """First detection time of each fault of ``faults`` under ``stimulus``.

    Faults not detected are absent from the result.  This is the
    ``u_det(f)`` map the paper's weight-selection procedure is driven by.
    """
    sim = simulator or FaultSimulator(circuit)
    return sim.run(stimulus, faults).detection_time
