"""Scalar 3-valued logic.

Values are plain ints: ``0``, ``1`` and ``VX`` (unknown, encoded as 2).
This module provides the scalar evaluation used by the reference logic
simulator and by tests that cross-check the bit-parallel engine.
"""

from __future__ import annotations

from typing import Iterable

Value = int
"""Type alias for a ternary value: one of :data:`V0`, :data:`V1`, :data:`VX`."""

V0: Value = 0
V1: Value = 1
VX: Value = 2

_CHARS = {V0: "0", V1: "1", VX: "x"}
_FROM_CHAR = {"0": V0, "1": V1, "x": VX, "X": VX}


def is_binary(value: Value) -> bool:
    """True for 0 or 1 (not X)."""
    return value in (V0, V1)


def invert(value: Value) -> Value:
    """Ternary NOT."""
    if value == VX:
        return VX
    return V1 - value


def and_reduce(values: Iterable[Value]) -> Value:
    """Ternary AND over one or more values.

    A controlling 0 dominates X; an all-1 input set gives 1.
    """
    saw_x = False
    for value in values:
        if value == V0:
            return V0
        if value == VX:
            saw_x = True
    return VX if saw_x else V1


def or_reduce(values: Iterable[Value]) -> Value:
    """Ternary OR over one or more values."""
    saw_x = False
    for value in values:
        if value == V1:
            return V1
        if value == VX:
            saw_x = True
    return VX if saw_x else V0


def xor_reduce(values: Iterable[Value]) -> Value:
    """Ternary XOR over one or more values (any X makes the result X)."""
    acc = V0
    for value in values:
        if value == VX:
            return VX
        acc ^= value
    return acc


def to_char(value: Value) -> str:
    """Render a ternary value as ``'0'``, ``'1'`` or ``'x'``."""
    try:
        return _CHARS[value]
    except KeyError:
        raise ValueError(f"not a ternary value: {value!r}") from None


def resolve_char(char: str) -> Value:
    """Parse ``'0'``/``'1'``/``'x'``/``'X'`` into a ternary value."""
    try:
        return _FROM_CHAR[char]
    except KeyError:
        raise ValueError(f"not a ternary character: {char!r}") from None
