"""Compilation of a :class:`~repro.circuit.netlist.Circuit` into the
integer-indexed form both simulators execute.

Net names are mapped to dense indices once; gates become ``(opcode,
out_index, fanin_indices)`` triples in topological order.  Both the
scalar reference simulator and the bit-parallel fault simulator execute
this compiled form, so they agree on evaluation order by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

# Opcodes, kept as plain ints for speed in the inner loops.
OP_AND = 0
OP_NAND = 1
OP_OR = 2
OP_NOR = 3
OP_XOR = 4
OP_XNOR = 5
OP_NOT = 6
OP_BUF = 7

_OPCODES = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
}

OPCODE_NAMES = {v: k.value for k, v in _OPCODES.items()}


@dataclass(frozen=True)
class CompiledCircuit:
    """Execution-ready form of a circuit.

    Attributes
    ----------
    circuit:
        The source netlist (kept for name lookups and fault mapping).
    index:
        Net name → dense index.
    names:
        Dense index → net name.
    ops:
        Combinational gates in evaluation order:
        ``(opcode, out_index, fanin_indices)``.
    pi_indices / po_indices:
        Primary input/output indices, in port order.
    ff_indices:
        Flip-flop output indices, in :attr:`Circuit.flops` order.
    ff_next_indices:
        For each flip-flop (same order), the index of its next-state net.
    const0_indices / const1_indices:
        Indices of constant nets.
    """

    circuit: Circuit
    index: Dict[str, int]
    names: Tuple[str, ...]
    ops: Tuple[Tuple[int, int, Tuple[int, ...]], ...]
    pi_indices: Tuple[int, ...]
    po_indices: Tuple[int, ...]
    ff_indices: Tuple[int, ...]
    ff_next_indices: Tuple[int, ...]
    const0_indices: Tuple[int, ...]
    const1_indices: Tuple[int, ...]

    @property
    def n_nets(self) -> int:
        """Total number of nets."""
        return len(self.names)


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile ``circuit`` into a :class:`CompiledCircuit`."""
    names = circuit.nets
    index = {name: i for i, name in enumerate(names)}
    ops = []
    for net in circuit.combinational_order:
        gate = circuit.gate(net)
        ops.append(
            (
                _OPCODES[gate.gtype],
                index[net],
                tuple(index[f] for f in gate.fanins),
            )
        )
    const0 = []
    const1 = []
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.CONST0:
            const0.append(index[net])
        elif gate.gtype is GateType.CONST1:
            const1.append(index[net])
    return CompiledCircuit(
        circuit=circuit,
        index=index,
        names=names,
        ops=tuple(ops),
        pi_indices=tuple(index[n] for n in circuit.inputs),
        po_indices=tuple(index[n] for n in circuit.outputs),
        ff_indices=tuple(index[n] for n in circuit.flops),
        ff_next_indices=tuple(
            index[circuit.gate(n).fanins[0]] for n in circuit.flops
        ),
        const0_indices=tuple(const0),
        const1_indices=tuple(const1),
    )
