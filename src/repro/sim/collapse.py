"""Structural equivalence collapsing of stuck-at faults.

Two faults are structurally equivalent when every test for one is a
test for the other.  The classic local rules are applied with a
union-find over the fault universe:

* ``BUF``: input s-a-v ≡ output s-a-v; ``NOT``: input s-a-v ≡ output
  s-a-(1-v).
* ``AND``: any input s-a-0 ≡ output s-a-0; ``NAND``: any input s-a-0 ≡
  output s-a-1; ``OR``/``NOR`` dually with s-a-1 inputs.
* Across a fanout-free connection, the input-pin fault *is* the
  driver's stem fault (no separate branch fault exists).

We deliberately do not collapse across flip-flops: with an unknown
initial state, a stuck-at on a flip-flop output is observable one cycle
earlier than the same fault on its D input, so they are not strictly
equivalent under the no-reset detection criterion.

Applied to s27, these rules reduce the 52-fault universe to the 32
equivalence classes the paper enumerates as ``f_0 .. f_31``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.sim.faults import Fault, all_faults

_Key = Tuple


def _key(fault: Fault) -> _Key:
    if fault.is_branch:
        return ("b", fault.gate, fault.pin, fault.stuck)
    return ("s", fault.net, fault.stuck)


class _UnionFind:
    """Minimal union-find over hashable keys."""

    def __init__(self) -> None:
        self._parent: Dict[_Key, _Key] = {}

    def add(self, key: _Key) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: _Key) -> _Key:
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(self, a: _Key, b: _Key) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def collapse_faults(circuit: Circuit) -> List[Fault]:
    """Return one representative fault per equivalence class.

    The representative is the lexicographically smallest fault in its
    class, so the result is deterministic.  Representatives are sorted.
    """
    classes = equivalence_classes(circuit)
    return sorted(min(members) for members in classes)


def equivalence_classes(circuit: Circuit) -> List[List[Fault]]:
    """Group the full fault universe into equivalence classes."""
    universe = all_faults(circuit)
    by_key = {_key(f): f for f in universe}
    uf = _UnionFind()
    for fault in universe:
        uf.add(_key(fault))

    const_nets = {
        n
        for n, g in circuit.gates.items()
        if g.gtype in (GateType.CONST0, GateType.CONST1)
    }

    def input_key(gate_name: str, pin: int, stuck: int) -> _Key | None:
        """Key of the fault at a gate input pin: the branch fault when
        the driver fans out, otherwise the driver's stem fault.  Pins
        driven by constants carry no fault (None)."""
        driver = circuit.gate(gate_name).fanins[pin]
        if driver in const_nets and circuit.fanout_count(driver) <= 1:
            return None
        if circuit.fanout_count(driver) > 1:
            return ("b", gate_name, pin, stuck)
        return ("s", driver, stuck)

    def merge(in_key: _Key | None, out_key: _Key) -> None:
        if in_key is not None:
            uf.union(in_key, out_key)

    for net, gate in circuit.gates.items():
        gtype = gate.gtype
        out0, out1 = ("s", net, 0), ("s", net, 1)
        if gtype is GateType.BUF:
            merge(input_key(net, 0, 0), out0)
            merge(input_key(net, 0, 1), out1)
        elif gtype is GateType.NOT:
            merge(input_key(net, 0, 0), out1)
            merge(input_key(net, 0, 1), out0)
        elif gtype is GateType.AND:
            for pin in range(gate.arity):
                merge(input_key(net, pin, 0), out0)
        elif gtype is GateType.NAND:
            for pin in range(gate.arity):
                merge(input_key(net, pin, 0), out1)
        elif gtype is GateType.OR:
            for pin in range(gate.arity):
                merge(input_key(net, pin, 1), out1)
        elif gtype is GateType.NOR:
            for pin in range(gate.arity):
                merge(input_key(net, pin, 1), out0)
        # XOR/XNOR/DFF/INPUT: no structural equivalences.

    groups: Dict[_Key, List[Fault]] = {}
    for fault in universe:
        groups.setdefault(uf.find(_key(fault)), []).append(fault)
    return list(groups.values())


def collapse_ratio(circuit: Circuit) -> float:
    """Collapsed-to-total fault ratio (a standard collapsing metric)."""
    total = len(all_faults(circuit))
    if not total:
        return 1.0
    return len(collapse_faults(circuit)) / total
