"""HTML experiment report generation.

Collects the plain-text artifacts the benchmark harness writes to
``benchmarks/results/`` into a single self-contained HTML page —
the shareable summary of a reproduction run.  No external assets, no
JavaScript; just the tables, titled and ordered to follow the paper.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Tuple

#: Display order and headings; artifacts not listed are appended last.
_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("section2_tables1_5", "Tables 1-5 — the worked example (s27)"),
    ("table6", "Table 6 — main experimental results"),
    ("tables7_16", "Tables 7-16 — observation point insertion"),
    ("figure1_tpg", "Figure 1 — synthesized test pattern generators"),
    ("baseline_comparison", "Baselines — LFSR / 3-weight / weighted-random"),
    ("ablations", "Ablations — Section 4.1 design choices"),
    ("complexity_scaling", "Section 4.2 — complexity scaling"),
    ("atpg_substrate", "E12 — deterministic test-generation substrate"),
    ("misr_response", "E13 — MISR response compaction"),
    ("testability_analysis", "E14 — COP/SCOAP testability analysis"),
    ("flop_modification", "E15 — flip-flop-modifying DFT"),
    ("seed_robustness", "E16 — seed robustness"),
    ("scan_comparison", "E17 — full scan comparison"),
    ("transition_faults", "E18 — transition (delay) faults"),
)

_STYLE = """
body { font-family: Georgia, serif; max-width: 72rem; margin: 2rem auto;
       padding: 0 1rem; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; color: #334; }
pre { background: #f7f7f4; border: 1px solid #ddd; border-radius: 4px;
      padding: .8rem 1rem; overflow-x: auto; font-size: .85rem;
      line-height: 1.35; }
p.meta { color: #666; font-style: italic; }
"""


def collect_results(results_dir: str | Path) -> Dict[str, str]:
    """Read every ``*.txt`` artifact in ``results_dir``."""
    directory = Path(results_dir)
    artifacts: Dict[str, str] = {}
    if not directory.is_dir():
        return artifacts
    for path in sorted(directory.glob("*.txt")):
        artifacts[path.stem] = path.read_text().rstrip()
    return artifacts


def render_report(
    artifacts: Dict[str, str],
    title: str = "Built-In Generation of Weighted Test Sequences — reproduction report",
) -> str:
    """Render the artifacts as a self-contained HTML page."""
    ordered: List[Tuple[str, str]] = []
    seen = set()
    for key, heading in _SECTIONS:
        if key in artifacts:
            ordered.append((heading, artifacts[key]))
            seen.add(key)
    for key in sorted(artifacts):
        if key not in seen:
            ordered.append((key, artifacts[key]))

    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p class='meta'>Pomeranz &amp; Reddy, DATE 2000 — regenerated "
        "artifacts from <code>pytest benchmarks/ --benchmark-only</code>. "
        "See EXPERIMENTS.md for the paper-vs-measured discussion.</p>",
    ]
    if not ordered:
        parts.append(
            "<p>No artifacts found — run the benchmark suite first.</p>"
        )
    for heading, body in ordered:
        parts.append(f"<h2>{html.escape(heading)}</h2>")
        parts.append(f"<pre>{html.escape(body)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(
    results_dir: str | Path, output: str | Path
) -> Path:
    """Collect artifacts and write the HTML report; returns the path."""
    artifacts = collect_results(results_dir)
    out_path = Path(output)
    out_path.write_text(render_report(artifacts))
    return out_path
