"""The 3-weight {0, 0.5, 1} baseline ([10]) extended to sequences.

The method of [10] computes weight assignments for combinational
circuits by *intersecting* subsets of deterministic test patterns:
positions agreeing on 0 (or 1) get weight 0 (or 1); positions that
disagree get 0.5 (pseudo-random).  The paper's introduction explains
why the direct sequential extension is awkward — intersecting test
*subsequences* yields per-time-unit weight assignments that must change
every cycle.

This module implements the *held-constant* naive variant used as a
baseline: the deterministic sequence is cut into windows, each window's
patterns are intersected into a single {0, 0.5, 1} assignment, and
``n_per_assignment`` pseudo-random patterns are applied under each
assignment.  It reproduces the flavor of [10] while staying applicable
to a single test sequence — and its weaker results against the
subsequence-weight method are exactly the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimResult, FaultSimulator
from repro.sim.values import V0, V1
from repro.tgen.sequence import TestSequence
from repro.util.rng import DeterministicRng

#: Sentinel weight values.
W0 = 0.0
W1 = 1.0
WHALF = 0.5


@dataclass(frozen=True)
class ThreeWeightAssignment:
    """One {0, 0.5, 1} weight assignment.

    Attributes
    ----------
    weights:
        Per primary input: 0.0 (held at 0), 1.0 (held at 1), or 0.5
        (pseudo-random).
    """

    weights: Tuple[float, ...]

    def sample(self, rng: DeterministicRng) -> Tuple[int, ...]:
        """Draw one input pattern under this assignment."""
        pattern = []
        for w in self.weights:
            if w == W0:
                pattern.append(V0)
            elif w == W1:
                pattern.append(V1)
            else:
                pattern.append(rng.bit())
        return tuple(pattern)


def three_weight_assignments(
    sequence: TestSequence, window: int
) -> List[ThreeWeightAssignment]:
    """Intersect ``sequence``'s patterns window-by-window into
    {0, 0.5, 1} assignments (the [10]-style computation)."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    assignments = []
    for start in range(0, len(sequence), window):
        chunk = sequence.patterns[start : start + window]
        weights = []
        for i in range(sequence.width):
            values = {row[i] for row in chunk}
            if values == {V0}:
                weights.append(W0)
            elif values == {V1}:
                weights.append(W1)
            else:
                weights.append(WHALF)
        assignments.append(ThreeWeightAssignment(tuple(weights)))
    return assignments


def three_weight_bist(
    circuit: Circuit,
    sequence: TestSequence,
    faults: Sequence[Fault],
    window: int = 8,
    n_per_assignment: int = 256,
    seed: int = 1,
    compiled: CompiledCircuit | None = None,
) -> FaultSimResult:
    """Fault-simulate the 3-weight baseline end to end.

    The weighted patterns of all assignments are applied back-to-back
    as one long session (matching how the hardware would run), and the
    whole session is fault-simulated once.
    """
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp)
    rng = DeterministicRng(seed)
    stimulus: List[Tuple[int, ...]] = []
    for assignment in three_weight_assignments(sequence, window):
        stimulus.extend(
            assignment.sample(rng) for _ in range(n_per_assignment)
        )
    return sim.run(stimulus, list(faults))
