"""Baseline on-chip test generation methods the paper positions against.

* :mod:`repro.baselines.lfsr` — pure pseudo-random BIST ([16]/[17]
  class: no storage, but no coverage guarantee).
* :mod:`repro.baselines.threeweight` — the 3-weight {0, 0.5, 1} method
  of [10], naively extended to sequential circuits by intersecting
  windows of the deterministic sequence (the extension the paper's
  introduction critiques and improves upon).
* :mod:`repro.baselines.flopmod` — the flip-flop-modifying class the
  paper positions against: hold mode ([21]) and partial reset ([22]).
"""

from repro.baselines.lfsr import Lfsr, lfsr_patterns, lfsr_bist
from repro.baselines.threeweight import (
    ThreeWeightAssignment,
    three_weight_assignments,
    three_weight_bist,
)
from repro.baselines.flopmod import (
    add_hold_mode,
    add_partial_reset,
    hold_mode_bist,
    modification_cost,
    partial_reset_bist,
)

__all__ = [
    "Lfsr",
    "lfsr_patterns",
    "lfsr_bist",
    "ThreeWeightAssignment",
    "three_weight_assignments",
    "three_weight_bist",
    "add_hold_mode",
    "add_partial_reset",
    "hold_mode_bist",
    "modification_cost",
    "partial_reset_bist",
]
