"""Flip-flop-modifying DFT baselines ([21] hold mode, [22] partial
reset).

The paper's introduction sorts prior BIST schemes into two classes;
the second class *modifies the circuit flip-flops*:

* **Hold mode** (Muradali et al. [21]): selected flip-flops gain a
  hold input; while held, their value does not change, letting biased
  random patterns reach the combinational logic.
* **Partial reset** (Flottes et al. [22]): selected flip-flops gain a
  synchronous reset, used to drive the circuit into states needed by
  hard-to-detect faults.

The proposed method's selling point is avoiding these modifications
("it avoids the routing overhead for controlling the flip-flops").
This module implements both transforms and simple random-test drivers
on top of them, so the tradeoff — extra per-flop hardware + control
routing vs. weight FSMs — can be measured instead of argued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimResult, FaultSimulator
from repro.util.rng import DeterministicRng


def add_hold_mode(
    circuit: Circuit,
    flops: Sequence[str] | None = None,
    hold_input: str = "hold",
) -> Circuit:
    """Add a hold input to the selected flip-flops ([21]).

    Each selected flip-flop's next state becomes
    ``hold ? Q : D`` (a 2:1 mux built from AND/OR/NOT).  The new
    primary input ``hold_input`` is appended after the existing inputs.
    """
    selected = _validate_flops(circuit, flops, hold_input)
    # Original gates first so the control input lands *after* the
    # existing primary inputs in port order.
    gates: List[Gate] = []
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.DFF and net in selected:
            d_net = gate.fanins[0]
            gates.append(
                Gate(f"{net}_holdq", GateType.AND, (hold_input, net))
            )
            gates.append(
                Gate(f"{net}_passd", GateType.AND, (f"{hold_input}_n", d_net))
            )
            gates.append(
                Gate(f"{net}_next", GateType.OR, (f"{net}_holdq", f"{net}_passd"))
            )
            gates.append(Gate(net, GateType.DFF, (f"{net}_next",)))
        else:
            gates.append(gate)
    gates.append(Gate(hold_input, GateType.INPUT, ()))
    gates.append(Gate(f"{hold_input}_n", GateType.NOT, (hold_input,)))
    return Circuit(f"{circuit.name}_hold", gates, circuit.outputs)


def add_partial_reset(
    circuit: Circuit,
    flops: Sequence[str] | None = None,
    reset_input: str = "preset",
) -> Circuit:
    """Add a synchronous reset-to-0 to the selected flip-flops ([22])."""
    selected = _validate_flops(circuit, flops, reset_input)
    gates: List[Gate] = []
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.DFF and net in selected:
            d_net = gate.fanins[0]
            gates.append(
                Gate(f"{net}_next", GateType.AND, (f"{reset_input}_n", d_net))
            )
            gates.append(Gate(net, GateType.DFF, (f"{net}_next",)))
        else:
            gates.append(gate)
    gates.append(Gate(reset_input, GateType.INPUT, ()))
    gates.append(Gate(f"{reset_input}_n", GateType.NOT, (reset_input,)))
    return Circuit(f"{circuit.name}_preset", gates, circuit.outputs)


def _validate_flops(
    circuit: Circuit, flops: Sequence[str] | None, new_input: str
) -> set:
    if new_input in circuit:
        raise NetlistError(f"net {new_input!r} already exists")
    if flops is None:
        return set(circuit.flops)
    selected = set(flops)
    unknown = selected - set(circuit.flops)
    if unknown:
        raise NetlistError(f"not flip-flops: {sorted(unknown)}")
    return selected


@dataclass(frozen=True)
class FlopModCost:
    """Hardware cost of a flip-flop modification.

    Attributes
    ----------
    extra_gates:
        Combinational gates added.
    extra_inputs:
        Control inputs added (each needs chip-level routing — the
        overhead the paper's method avoids).
    flops_touched:
        Flip-flops whose datapath was modified.
    """

    extra_gates: int
    extra_inputs: int
    flops_touched: int


def modification_cost(original: Circuit, modified: Circuit) -> FlopModCost:
    """Cost delta between a circuit and its flop-modified version."""
    return FlopModCost(
        extra_gates=(
            modified.num_gates(combinational_only=True)
            - original.num_gates(combinational_only=True)
        ),
        extra_inputs=len(modified.inputs) - len(original.inputs),
        flops_touched=len(original.flops),
    )


def hold_mode_bist(
    circuit: Circuit,
    faults: Sequence[Fault],
    n_patterns: int,
    hold_probability: float = 0.3,
    seed: int = 1,
) -> FaultSimResult:
    """Random BIST on a hold-modified circuit ([21]-style).

    Every cycle applies a random pattern; the hold input is asserted
    with ``hold_probability``, freezing the state so several patterns
    hit the same combinational context.  Faults are simulated on the
    *modified* circuit but only the original fault list (the added DFT
    logic is not graded).
    """
    modified = add_hold_mode(circuit)
    return _random_session(modified, faults, n_patterns, hold_probability, seed)


def partial_reset_bist(
    circuit: Circuit,
    faults: Sequence[Fault],
    n_patterns: int,
    reset_probability: float = 0.05,
    seed: int = 1,
) -> FaultSimResult:
    """Random BIST on a partial-reset circuit ([22]-style).

    Occasional reset pulses re-synchronize the state, which both
    initializes the circuit quickly and re-visits the reset state's
    neighbourhood — the mechanism [22] exploits.
    """
    modified = add_partial_reset(circuit)
    return _random_session(modified, faults, n_patterns, reset_probability, seed)


def _random_session(
    modified: Circuit,
    faults: Sequence[Fault],
    n_patterns: int,
    control_probability: float,
    seed: int,
) -> FaultSimResult:
    rng = DeterministicRng(seed)
    n_orig = len(modified.inputs) - 1  # the control input is last
    stimulus: List[Tuple[int, ...]] = []
    for _ in range(n_patterns):
        pattern = rng.bits(n_orig)
        control = 1 if rng.random() < control_probability else 0
        stimulus.append(pattern + (control,))
    sim = FaultSimulator(modified)
    return sim.run(stimulus, list(faults))
