"""Linear feedback shift register pseudo-random BIST baseline.

The paper's introduction places the proposed method against schemes
that drive the circuit inputs from free-running pseudo-random sources
([16], [17]): zero storage, but no coverage guarantee — exactly what
this module lets the benchmarks demonstrate.

The LFSR is a Fibonacci-style register with primitive feedback
polynomials (maximum-length sequences) for every width up to 32.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimResult, FaultSimulator

#: Primitive polynomial tap positions (1-based, including the width) for
#: maximum-length LFSRs.  Source: standard LFSR tap tables.
PRIMITIVE_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 25, 24, 20),
    27: (27, 26, 25, 22),
    28: (28, 25),
    29: (29, 27),
    30: (30, 29, 28, 7),
    31: (31, 28),
    32: (32, 31, 30, 10),
}


class Lfsr:
    """A Fibonacci LFSR producing a maximum-length bit stream.

    Parameters
    ----------
    width:
        Register width (2..32 for the built-in primitive taps).
    seed:
        Initial state; must be non-zero (the all-zero state is the
        LFSR's fixed point).  Reduced modulo ``2^width``.
    taps:
        Optional explicit tap positions (1-based); defaults to a
        primitive polynomial for the width.
    """

    def __init__(
        self, width: int, seed: int = 1, taps: Sequence[int] | None = None
    ) -> None:
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ReproError(
                    f"no built-in primitive polynomial for width {width}"
                )
            taps = PRIMITIVE_TAPS[width]
        for tap in taps:
            if tap < 1 or tap > width:
                raise ReproError(f"tap {tap} outside 1..{width}")
        self.width = width
        self.taps = tuple(taps)
        self._mask = (1 << width) - 1
        self.state = seed & self._mask
        if self.state == 0:
            self.state = 1

    def step(self) -> int:
        """Advance one cycle; return the shifted-out bit.

        Left-shift Fibonacci form: the new LSB is the XOR of the tap
        bits (1-based positions of the feedback polynomial), and the
        old MSB shifts out.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        out = (self.state >> (self.width - 1)) & 1
        self.state = ((self.state << 1) | feedback) & self._mask
        return out

    def bits(self, count: int) -> Tuple[int, ...]:
        """The next ``count`` output bits."""
        return tuple(self.step() for _ in range(count))

    @property
    def period(self) -> int:
        """Maximum-length period for primitive taps."""
        return (1 << self.width) - 1


def lfsr_patterns(
    n_inputs: int, n_patterns: int, seed: int = 1, width: int = 23
) -> List[Tuple[int, ...]]:
    """Generate ``n_patterns`` pseudo-random input patterns.

    A single wide LFSR is sampled ``n_inputs`` bits per pattern — the
    standard cheap BIST configuration (one register, serially tapped).
    """
    lfsr = Lfsr(width, seed)
    return [lfsr.bits(n_inputs) for _ in range(n_patterns)]


def lfsr_bist(
    circuit: Circuit,
    faults: Sequence[Fault],
    n_patterns: int,
    seed: int = 1,
    compiled: CompiledCircuit | None = None,
) -> FaultSimResult:
    """Fault-simulate pure LFSR BIST on ``circuit``.

    Returns the full simulation result; ``result.coverage`` is the
    headline number and ``result.detection_time`` gives the coverage
    curve.
    """
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp)
    patterns = lfsr_patterns(len(circuit.inputs), n_patterns, seed)
    return sim.run(patterns, list(faults))


def coverage_curve(
    result: FaultSimResult, n_points: int = 20, length: int | None = None
) -> List[Tuple[int, float]]:
    """Sampled (patterns applied, coverage) points from a run."""
    if result.n_faults == 0:
        return []
    times = sorted(result.detection_time.values())
    horizon = length if length is not None else (times[-1] + 1 if times else 1)
    points = []
    for k in range(1, n_points + 1):
        t = max(1, horizon * k // n_points)
        detected = sum(1 for u in times if u < t)
        points.append((t, detected / result.n_faults))
    return points
