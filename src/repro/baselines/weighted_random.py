"""Classic weighted-random-pattern BIST (the [1]-[9] class).

The oldest weighted-testing idea: give every primary input an
independent probability of being 1, chosen from the statistics of a
deterministic test set — here the frequency of 1s in ``T_i``.  One
weight assignment for the whole session (single-distribution WRBIST);
optionally several assignments from windows of ``T`` (multiple
distributions, Wunderlich [4]-style).

This is the paper's deepest ancestor baseline: it captures *per-input
bias* but no *temporal structure*, which is exactly what the paper's
subsequence weights add.  The benchmarks show the resulting gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimResult, FaultSimulator
from repro.sim.values import V1
from repro.tgen.sequence import TestSequence
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class InputWeights:
    """Per-input probabilities of applying a 1.

    Attributes
    ----------
    probabilities:
        One probability per primary input, in port order.
    """

    probabilities: Tuple[float, ...]

    def sample(self, rng: DeterministicRng) -> Tuple[int, ...]:
        """Draw one input pattern."""
        return tuple(
            1 if rng.random() < p else 0 for p in self.probabilities
        )


def weights_from_sequence(
    sequence: TestSequence, quantize: int | None = 8
) -> InputWeights:
    """Per-input 1-frequencies of ``sequence``.

    ``quantize`` rounds each probability to multiples of
    ``1/quantize``, mirroring the coarse weight sets hardware weighted
    pattern generators implement ([13]); ``None`` keeps exact
    frequencies.
    """
    if not len(sequence):
        raise ValueError("cannot derive weights from an empty sequence")
    probabilities = []
    for i in range(sequence.width):
        column = sequence.restrict(i)
        p = sum(1 for v in column if v == V1) / len(column)
        if quantize:
            p = round(p * quantize) / quantize
        probabilities.append(min(1.0, max(0.0, p)))
    return InputWeights(tuple(probabilities))


def windowed_weights(
    sequence: TestSequence, n_windows: int, quantize: int | None = 8
) -> List[InputWeights]:
    """Multiple distributions from contiguous windows of ``T`` ([4])."""
    if n_windows < 1:
        raise ValueError(f"need at least one window, got {n_windows}")
    size = max(1, (len(sequence) + n_windows - 1) // n_windows)
    out = []
    for start in range(0, len(sequence), size):
        window = TestSequence(sequence.patterns[start : start + size])
        out.append(weights_from_sequence(window, quantize))
    return out


def weighted_random_bist(
    circuit: Circuit,
    sequence: TestSequence,
    faults: Sequence[Fault],
    n_patterns: int,
    n_distributions: int = 1,
    seed: int = 1,
    compiled: CompiledCircuit | None = None,
) -> FaultSimResult:
    """Run weighted-random BIST derived from ``sequence``'s statistics.

    ``n_patterns`` total patterns are split evenly over
    ``n_distributions`` weight assignments (windowed when more than
    one).
    """
    comp = compiled or compile_circuit(circuit)
    rng = DeterministicRng(seed)
    if n_distributions <= 1:
        distributions = [weights_from_sequence(sequence)]
    else:
        distributions = windowed_weights(sequence, n_distributions)
    per_distribution = max(1, n_patterns // len(distributions))
    stimulus: List[Tuple[int, ...]] = []
    for weights in distributions:
        stimulus.extend(
            weights.sample(rng) for _ in range(per_distribution)
        )
    return FaultSimulator(circuit, comp).run(stimulus, list(faults))
