"""TPG hardware lint rules (the ``T`` family).

These check a :class:`~repro.hw.tpg.TpgDesign` — synthesized in-process
or reloaded from disk — for the consistency invariants the Figure-1
construction promises:

* the weight-assignment set ``Ω`` covers every CUT input exactly once
  per assignment (T001/T002) and every deterministic weight has an FSM
  generator (T003);
* the mined modulo-``L_S`` FSM bank carries no dead output columns
  (T004), no reducible columns that should have been merged to a
  shorter period (T005) and no duplicate columns (T006) — the
  Section-5 merging rules, enforced statically;
* the phase (cycle) counter and the mux-select (assignment) counter in
  the netlist have exactly the widths ``ceil(log2 L_G)`` and
  ``ceil(log2 m)`` the selection logic decodes (T007);
* pseudo-random weights have an on-chip LFSR to draw from (T008).

T009 is informational: it reports each FSM's unreachable binary-encoded
states — the don't-cares the QM minimizer exploits (the paper's
Section 3, observation 2).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import HardwareError, LintError
from repro.hw.design_io import design_from_dict, validate_design_dict
from repro.hw.fsm import find_output
from repro.hw.tpg import TpgDesign
from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    make_diagnostic,
    register,
)

MIXED_WIDTH = register(Rule(
    "T001", "mixed-assignment-width", Severity.ERROR,
    "Weight assignments in Ω cover different numbers of inputs.",
))
PORT_WIDTH_MISMATCH = register(Rule(
    "T002", "port-width-mismatch", Severity.ERROR,
    "The TPG's output port count differs from the assignment width, so "
    "some CUT input is uncovered or doubly covered.",
))
MISSING_FSM_OUTPUT = register(Rule(
    "T003", "missing-fsm-output", Severity.ERROR,
    "A deterministic weight in Ω has no generating FSM output column.",
))
DEAD_FSM_OUTPUT = register(Rule(
    "T004", "dead-fsm-output", Severity.WARNING,
    "An FSM output column is not referenced by any weight assignment "
    "or by the design's declared weight alphabet.",
))
REDUCIBLE_FSM_OUTPUT = register(Rule(
    "T005", "reducible-fsm-output", Severity.WARNING,
    "An FSM output column has a period shorter than the FSM's state "
    "count; the subsequence should have been canonicalized.",
))
DUPLICATE_FSM_OUTPUT = register(Rule(
    "T006", "duplicate-fsm-output", Severity.WARNING,
    "Two FSM output columns expand to the same infinite sequence; they "
    "should have been merged (Section 5).",
))
COUNTER_WIDTH_MISMATCH = register(Rule(
    "T007", "counter-width-mismatch", Severity.ERROR,
    "The phase or mux-select counter register width in the netlist "
    "does not match what the decode logic expects.",
))
MISSING_LFSR = register(Rule(
    "T008", "missing-lfsr", Severity.ERROR,
    "Ω contains pseudo-random weights but the design carries no LFSR "
    "specification.",
))
UNREACHABLE_STATES = register(Rule(
    "T009", "fsm-unreachable-states", Severity.NOTE,
    "An FSM's binary state encoding leaves states unreachable; they "
    "are don't-cares for the output logic.",
))


def lint_design(design: TpgDesign, artifact: Optional[str] = None) -> LintReport:
    """Lint a TPG design for Ω / FSM-bank / counter consistency."""
    where = artifact if artifact is not None else f"tpg:{design.circuit.name}"
    diagnostics: List[Diagnostic] = []

    widths = sorted({a.width for a in design.assignments})
    if len(widths) > 1:
        diagnostics.append(make_diagnostic(
            MIXED_WIDTH,
            f"assignments cover {widths} inputs; every assignment must "
            f"cover each CUT input exactly once",
            where,
        ))
    elif widths and widths[0] != len(design.output_ports):
        diagnostics.append(make_diagnostic(
            PORT_WIDTH_MISMATCH,
            f"design exposes {len(design.output_ports)} output ports for "
            f"width-{widths[0]} assignments",
            where,
        ))

    used: Set[Tuple[int, int]] = set()
    needs_lfsr = False
    for j, assignment in enumerate(design.assignments):
        for i, weight in enumerate(assignment.weights):
            if weight.is_random:
                needs_lfsr = True
                continue
            try:
                used.add(find_output(design.fsms, weight))
            except HardwareError:
                diagnostics.append(make_diagnostic(
                    MISSING_FSM_OUTPUT,
                    f"assignment {j}, input {i}: weight {weight} has no "
                    f"FSM output column",
                    where, location=f"assignment{j}/input{i}",
                ))
    if needs_lfsr and design.lfsr is None:
        diagnostics.append(make_diagnostic(
            MISSING_LFSR,
            "assignments contain pseudo-random weights but the design "
            "has no LfsrSpec",
            where,
        ))

    # Columns backing a declared quantized alphabet are intentional
    # capacity, not dead logic: the hardware must realize *any*
    # assignment over the alphabet, so an optimizer-produced design
    # with currently-unreferenced alphabet weights lints clean.
    if design.alphabet is not None:
        for weight in design.alphabet:
            if weight.is_random:
                continue
            try:
                used.add(find_output(design.fsms, weight))
            except HardwareError:
                pass  # T003 territory only when Ω references it

    seen: Dict[Tuple[int, ...], str] = {}
    for fsm_index, fsm in enumerate(design.fsms):
        for out_index, weight in enumerate(fsm.outputs):
            column = f"fsm{fsm_index}/z{out_index}"
            if (fsm_index, out_index) not in used:
                diagnostics.append(make_diagnostic(
                    DEAD_FSM_OUTPUT,
                    f"output column {column} ({weight}) is not used by "
                    f"any assignment or the declared alphabet",
                    where, location=column,
                ))
            canonical = weight.canonical()
            if canonical.length < fsm.length:
                diagnostics.append(make_diagnostic(
                    REDUCIBLE_FSM_OUTPUT,
                    f"output column {column} ({weight}) has period "
                    f"{canonical.length} < {fsm.length} states; it "
                    f"reduces to {canonical}",
                    where, location=column,
                ))
            key = canonical.bits
            if key in seen:
                diagnostics.append(make_diagnostic(
                    DUPLICATE_FSM_OUTPUT,
                    f"output columns {seen[key]} and {column} expand to "
                    f"the same sequence ({canonical})",
                    where, location=column,
                ))
            else:
                seen[key] = column
        if fsm.n_unreachable_states:
            diagnostics.append(make_diagnostic(
                UNREACHABLE_STATES,
                f"fsm{fsm_index} (L_S={fsm.length}) leaves "
                f"{fsm.n_unreachable_states} of {1 << fsm.n_state_bits} "
                f"encoded states unreachable (don't-cares)",
                where, location=f"fsm{fsm_index}",
            ))

    diagnostics.extend(_counter_widths(design, where))
    return LintReport.from_iterable(diagnostics)


def lint_design_path(path: str | Path) -> LintReport:
    """Lint a saved TPG design (:mod:`repro.hw.design_io` JSON).

    The embedded netlist is linted first with the raw-gates circuit
    rules (so a hand-corrupted ``.bench`` section reports its defects
    instead of crashing the loader); only a buildable netlist proceeds
    to the design-level T rules.

    Raises
    ------
    LintError
        If the file is not valid JSON or not a saved TPG design at all
        — there is nothing meaningful to lint then.
    """
    from repro.lint.circuit_rules import lint_bench_text

    path = Path(path)
    try:
        payload = validate_design_dict(json.loads(path.read_text()))
    except ValueError as exc:
        raise LintError(f"{path}: not valid JSON: {exc}") from exc
    except HardwareError as exc:
        raise LintError(f"{path}: {exc}") from exc
    report = lint_bench_text(str(payload["bench"]), str(path))
    if report.error_count:
        return report
    design = design_from_dict(payload)
    return report.merge(lint_design(design, artifact=str(path)))


def _counter_widths(design: TpgDesign, where: str) -> List[Diagnostic]:
    """Check phase/select register widths against the decode logic.

    :func:`~repro.hw.tpg.synthesize_tpg` names the cycle-counter bits
    ``cyc_q*`` and the assignment-counter bits ``sel_q*``; the decoders
    assume exactly ``ceil(log2 L_G)`` and ``ceil(log2 m)`` of them.  A
    design whose netlist was edited or reloaded against different
    parameters trips this before any simulation would.
    """
    expected = {
        "cyc": (design.l_g - 1).bit_length() if design.l_g > 1 else 0,
        "sel": (
            (design.n_assignments - 1).bit_length()
            if design.n_assignments > 1
            else 0
        ),
    }
    actual = {"cyc": 0, "sel": 0}
    for flop in design.circuit.flops:
        for prefix in actual:
            if flop.startswith(f"{prefix}_q"):
                actual[prefix] += 1
    labels = {"cyc": "phase (cycle) counter", "sel": "mux-select counter"}
    params = {
        "cyc": f"L_G={design.l_g}",
        "sel": f"{design.n_assignments} assignments",
    }
    diagnostics = []
    for prefix in ("cyc", "sel"):
        if actual[prefix] != expected[prefix]:
            diagnostics.append(make_diagnostic(
                COUNTER_WIDTH_MISMATCH,
                f"{labels[prefix]} has {actual[prefix]} register bits "
                f"({prefix}_q*), expected {expected[prefix]} for "
                f"{params[prefix]}",
                where, location=prefix,
            ))
    return diagnostics
