"""Rendering lint reports: plain text, JSON, and SARIF 2.1.0.

The SARIF output follows the OASIS *Static Analysis Results Interchange
Format* 2.1.0 layout (one run, one tool driver, rule metadata inlined,
results referencing rules by index) so it can be uploaded to code
scanning services as-is.  Severities map onto SARIF levels:
``NOTE → note``, ``WARNING → warning``, ``ERROR → error``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro import __version__
from repro.lint.core import REGISTRY, Diagnostic, LintReport, Severity

TOOL_NAME = "repro-lint"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def format_text(report: LintReport) -> str:
    """Human-readable listing with a one-line summary footer."""
    lines = [d.format() for d in report.diagnostics]
    summary = (
        f"{len(report)} finding{'s' if len(report) != 1 else ''} "
        f"({report.error_count} error, {report.warning_count} warning, "
        f"{report.count(Severity.NOTE)} note)"
    )
    if report.suppressed_count:
        summary += f", {report.suppressed_count} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def to_json_dict(report: LintReport) -> Dict[str, object]:
    """A stable JSON-ready rendering (diagnostics + counters)."""
    return {
        "tool": TOOL_NAME,
        "version": __version__,
        "diagnostics": [
            {
                "rule_id": d.rule_id,
                "rule_name": REGISTRY[d.rule_id].name,
                "severity": str(d.severity),
                "message": d.message,
                "artifact": d.artifact,
                "location": d.location,
                "line": d.line,
                "column": d.column,
                "end_column": d.end_column,
            }
            for d in report.diagnostics
        ],
        "summary": {
            "errors": report.error_count,
            "warnings": report.warning_count,
            "notes": report.count(Severity.NOTE),
            "suppressed": report.suppressed_count,
        },
    }


def format_json(report: LintReport) -> str:
    """The :func:`to_json_dict` rendering, pretty-printed."""
    return json.dumps(to_json_dict(report), indent=2, sort_keys=True)


def _sarif_location(diagnostic: Diagnostic) -> Dict[str, object]:
    physical: Dict[str, object] = {
        "artifactLocation": {"uri": diagnostic.artifact}
    }
    if diagnostic.line is not None:
        region: Dict[str, object] = {"startLine": diagnostic.line}
        if diagnostic.column is not None:
            region["startColumn"] = diagnostic.column
            # SARIF's endColumn points one past the region; when the
            # analyzer recorded no end, the region is one character
            # wide — omitting endColumn would make consumers default it
            # to end-of-line.
            region["endColumn"] = (
                diagnostic.end_column
                if diagnostic.end_column is not None
                else diagnostic.column + 1
            )
        physical["region"] = region
    location: Dict[str, object] = {"physicalLocation": physical}
    if diagnostic.location:
        location["logicalLocations"] = [{"name": diagnostic.location}]
    return location


def to_sarif_dict(report: LintReport) -> Dict[str, object]:
    """Render ``report`` as a SARIF 2.1.0 log object.

    Every registered rule is described in the driver metadata (not just
    the violated ones), so a clean run still documents what was
    checked.
    """
    rule_ids = list(REGISTRY)
    rules: List[Dict[str, object]] = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in REGISTRY.values()
    ]
    results: List[Dict[str, object]] = [
        {
            "ruleId": d.rule_id,
            "ruleIndex": rule_ids.index(d.rule_id),
            "level": _SARIF_LEVELS[d.severity],
            "message": {"text": d.message},
            "locations": [_sarif_location(d)],
        }
        for d in report.diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": __version__,
                        "informationUri": (
                            "https://github.com/repro/repro#lint"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(report: LintReport) -> str:
    """The :func:`to_sarif_dict` rendering, pretty-printed."""
    return json.dumps(to_sarif_dict(report), indent=2)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "sarif": format_sarif,
}
"""Formatter registry used by the ``repro lint`` CLI."""
