"""Static diagnostics for circuits, TPG hardware and the package itself.

The lint subsystem moves whole error classes from "wrong Table-6
numbers after minutes of fault simulation" to "one-second failure
before anything runs":

* **Circuit rules (C…)** — structural defects beyond the netlist's
  hard build errors: dead nets, unused inputs, constant-driven flops,
  and (on raw gate lists) undriven nets, duplicate drivers and
  combinational cycles with *full* SCC membership reported.
* **TPG rules (T…)** — consistency of a synthesized or reloaded
  :class:`~repro.hw.tpg.TpgDesign`: Ω coverage, FSM output columns
  (dead / reducible / duplicate), phase- and mux-select counter
  widths, LFSR presence.
* **Static-analysis rules (C010–C013)** — opt-in semantic checks
  backed by the implication engine (:func:`lint_static`): provably
  constant nets, unobservable cones, redundant gate inputs and
  never-computable values.
* **Determinism rules (D…)** — a Python AST pass over
  :mod:`repro` enforcing the runtime's bit-identical contract: no set
  iteration, no unseeded randomness, no wall-clock or environment
  dependence in result paths, no mutable default arguments.

Reports render as text, JSON or SARIF 2.1.0 (:mod:`repro.lint.emit`),
and the ``repro lint`` CLI command plus the CI gate wire it all
together.  Rule IDs are stable; suppress per artifact via
:class:`Suppressions` or inline with ``# lint: ignore[D104]``.
"""

from repro.lint.core import (
    Diagnostic,
    LintReport,
    REGISTRY,
    Rule,
    Severity,
    Suppressions,
    all_rules,
    get_rule,
    make_diagnostic,
    register,
)
from repro.lint.circuit_rules import (
    lint_bench_path,
    lint_bench_text,
    lint_circuit,
    lint_gates,
)
from repro.lint.tpg_rules import lint_design, lint_design_path
from repro.lint.pyast import (
    lint_package,
    lint_python_path,
    lint_python_source,
)

# Imported after pyast so REGISTRY keeps its historical order (SARIF
# ruleIndex values key on registration order): C001–C009, T…, D…, then
# the opt-in static-analysis block C010–C013.
from repro.lint.static_rules import lint_static
from repro.lint.emit import (
    FORMATTERS,
    format_json,
    format_sarif,
    format_text,
    to_json_dict,
    to_sarif_dict,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "REGISTRY",
    "Rule",
    "Severity",
    "Suppressions",
    "all_rules",
    "get_rule",
    "make_diagnostic",
    "register",
    "lint_bench_path",
    "lint_bench_text",
    "lint_circuit",
    "lint_gates",
    "lint_design",
    "lint_design_path",
    "lint_package",
    "lint_python_path",
    "lint_python_source",
    "lint_static",
    "FORMATTERS",
    "format_json",
    "format_sarif",
    "format_text",
    "to_json_dict",
    "to_sarif_dict",
]
