"""Python AST determinism rules (the ``D`` family).

The runtime layer promises bit-identical results for any worker count
and any cache state.  That contract is only as strong as the code it
covers: one ``for fault in some_set`` in a result-producing path makes
output order depend on hash seeds, one bare ``random.random()`` makes
it depend on interpreter state.  These rules flag the constructions
that historically break determinism:

* **D101** — iterating directly over a set literal, set comprehension
  or ``set()``/``frozenset()`` call (including ``list(...)``/
  ``tuple(...)`` conversions): the order is unspecified; sort first.
* **D102** — drawing from the process-global ``random`` module or from
  ``numpy.random`` without an explicit seed.  All randomness must
  funnel through :mod:`repro.util.rng`.
* **D103** — wall-clock reads (``time.time``, ``datetime.now``, …) —
  fine for metrics, never for anything that feeds a result.
  (``time.perf_counter`` / ``monotonic`` are duration measurements and
  are deliberately not flagged.)
* **D104** — ``os.environ`` / ``os.getenv`` dependence: results must
  not change with the caller's environment.
* **D105** — mutable default arguments: state shared across calls is
  ordering-dependent state.
* **D106** — iterating directly over ``os.listdir`` / ``os.scandir`` /
  ``glob.glob`` / ``glob.iglob`` results: the filesystem returns
  entries in platform- and filesystem-dependent order; sort first.
  (``Path.glob`` *method* calls on arbitrary objects are not flagged —
  only the module-level functions are unambiguous.)

Findings are silenced inline with ``# lint: ignore[D104]`` on the
flagged line, or for a whole file with ``# lint: ignore-file[D104]``
on any line.  Both accept a comma-separated ID list.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    Suppressions,
    make_diagnostic,
    register,
)

SET_ITERATION = register(Rule(
    "D101", "set-iteration", Severity.ERROR,
    "Iteration over an unordered set; order depends on hash seeds.",
))
UNSEEDED_RANDOM = register(Rule(
    "D102", "unseeded-random", Severity.ERROR,
    "Unseeded random/numpy.random use outside repro.util.rng.",
))
WALL_CLOCK = register(Rule(
    "D103", "wall-clock", Severity.ERROR,
    "Wall-clock read in code that may feed a result.",
))
ENVIRON_DEPENDENCE = register(Rule(
    "D104", "environ-dependence", Severity.WARNING,
    "os.environ / os.getenv dependence; results must not change with "
    "the caller's environment.",
))
MUTABLE_DEFAULT = register(Rule(
    "D105", "mutable-default", Severity.ERROR,
    "Mutable default argument; state is shared across calls.",
))
UNSORTED_DIR_LISTING = register(Rule(
    "D106", "unsorted-dir-listing", Severity.ERROR,
    "Iteration over os.listdir/os.scandir/glob results; filesystem "
    "order is platform-dependent — sort first.",
))

_IGNORE_LINE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_IGNORE_FILE_RE = re.compile(r"#\s*lint:\s*ignore-file\[([A-Z0-9,\s]+)\]")

#: Seedable constructors: allowed when called with at least one argument.
_SEEDABLE = {"Random", "SystemRandom", "default_rng", "RandomState",
             "Generator", "SeedSequence"}

#: ``time`` module attributes that read the wall clock unconditionally.
_CLOCK_ALWAYS = {"time", "time_ns", "ctime"}
#: ``time`` module attributes that read the clock only when called bare.
_CLOCK_NO_ARGS = {"localtime", "gmtime"}
#: Methods that read the clock on datetime/date classes.
_DATETIME_NOW = {"now", "utcnow", "today"}

#: ``os`` module functions that list a directory in filesystem order.
_OS_LISTING = {"listdir", "scandir"}
#: ``glob`` module functions that expand patterns in filesystem order.
_GLOB_LISTING = {"glob", "iglob"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _DeterminismVisitor(ast.NodeVisitor):
    """Single-pass collector for every D rule."""

    def __init__(self, artifact: str) -> None:
        self.artifact = artifact
        self.diagnostics: List[Diagnostic] = []
        self.random_modules: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.datetime_like: Set[str] = set()
        self.random_funcs: Set[str] = set()
        self.seedable_names: Set[str] = set()
        self.time_funcs: Set[str] = set()
        self.environ_names: Set[str] = set()
        self.glob_modules: Set[str] = set()
        self.listing_funcs: Set[str] = set()

    # -- bookkeeping --------------------------------------------------------

    def _emit(self, rule: Rule, message: str, node: ast.AST,
              location: str = "") -> None:
        # AST offsets are 0-based; diagnostics (and SARIF) are 1-based.
        col = getattr(node, "col_offset", None)
        end_col = getattr(node, "end_col_offset", None)
        self.diagnostics.append(make_diagnostic(
            rule, message, self.artifact,
            location=location, line=getattr(node, "lineno", None),
            column=None if col is None else col + 1,
            end_column=None if end_col is None else end_col + 1,
        ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_modules.add(bound)
            elif alias.name.split(".")[0] == "numpy":
                self.numpy_modules.add(bound)
            elif alias.name == "time":
                self.time_modules.add(bound)
            elif alias.name == "os":
                self.os_modules.add(bound)
            elif alias.name == "glob":
                self.glob_modules.add(bound)
            elif alias.name == "datetime":
                self.datetime_like.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                if alias.name in _SEEDABLE:
                    self.seedable_names.add(bound)
                else:
                    self.random_funcs.add(bound)
            elif node.module == "numpy":
                if alias.name == "random":
                    self.numpy_modules.add(bound)
            elif node.module == "numpy.random":
                if alias.name in _SEEDABLE:
                    self.seedable_names.add(bound)
                else:
                    self.random_funcs.add(bound)
            elif node.module == "time":
                if alias.name in _CLOCK_ALWAYS | _CLOCK_NO_ARGS:
                    self.time_funcs.add(bound)
            elif node.module == "os":
                if alias.name in ("environ", "getenv"):
                    self.environ_names.add(bound)
                elif alias.name in _OS_LISTING:
                    self.listing_funcs.add(bound)
            elif node.module == "glob":
                if alias.name in _GLOB_LISTING:
                    self.listing_funcs.add(bound)
            elif node.module == "datetime":
                if alias.name in ("datetime", "date"):
                    self.datetime_like.add(bound)
        self.generic_visit(node)

    # -- D101 / D106: unordered iteration -----------------------------------

    def _listing_call_name(self, node: ast.AST) -> Optional[str]:
        """The dotted name of a directory-listing call, or None.

        Only *module-level* functions qualify (``os.listdir(p)``,
        ``glob.glob(p)``, or their from-imports): a ``.glob`` method on
        an arbitrary object (``Path.glob``) may well be ordered.
        """
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.listing_funcs:
            return func.id
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in self.os_modules and func.attr in _OS_LISTING:
                return f"{base}.{func.attr}"
            if base in self.glob_modules and func.attr in _GLOB_LISTING:
                return f"{base}.{func.attr}"
        return None

    def _check_iterable(self, iterable: ast.AST) -> None:
        if _is_set_expr(iterable):
            self._emit(
                SET_ITERATION,
                "iteration over an unordered set; wrap in sorted(...) to "
                "fix the order",
                iterable,
            )
            return
        listing = self._listing_call_name(iterable)
        if listing is not None:
            self._emit(
                UNSORTED_DIR_LISTING,
                f"iteration over {listing}(...) in filesystem order; "
                f"wrap in sorted(...) to fix the order",
                iterable,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension]) -> None:
        for generator in generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    # -- D105: mutable defaults ---------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (
                ast.List, ast.Dict, ast.Set,
                ast.ListComp, ast.DictComp, ast.SetComp,
            )) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._emit(
                    MUTABLE_DEFAULT,
                    f"function {node.name!r} has a mutable default "
                    f"argument; use None and create inside",
                    default, location=node.name,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- D102 / D103 / D104: calls and attributes ---------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        has_args = bool(node.args or node.keywords)

        if isinstance(func, ast.Name):
            if func.id in ("list", "tuple") and len(node.args) == 1:
                if _is_set_expr(node.args[0]):
                    self._emit(
                        SET_ITERATION,
                        f"{func.id}(...) over an unordered set; use "
                        f"sorted(...) instead",
                        node,
                    )
            if func.id in self.random_funcs:
                self._emit(
                    UNSEEDED_RANDOM,
                    f"call to unseeded random function {func.id!r}; use "
                    f"repro.util.rng.DeterministicRng",
                    node,
                )
            elif func.id in self.seedable_names and not has_args:
                self._emit(
                    UNSEEDED_RANDOM,
                    f"{func.id}() constructed without a seed",
                    node,
                )
            elif func.id in self.environ_names:
                self._emit(
                    ENVIRON_DEPENDENCE,
                    f"environment read via {func.id!r}",
                    node,
                )
            elif func.id in self.time_funcs:
                self._emit(
                    WALL_CLOCK,
                    f"wall-clock read via {func.id!r}",
                    node,
                )

        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in self.random_modules:
                    if func.attr in _SEEDABLE or func.attr == "seed":
                        if not has_args:
                            self._emit(
                                UNSEEDED_RANDOM,
                                f"{base.id}.{func.attr}() called without "
                                f"a seed",
                                node,
                            )
                    else:
                        self._emit(
                            UNSEEDED_RANDOM,
                            f"call to process-global {base.id}."
                            f"{func.attr}(); use "
                            f"repro.util.rng.DeterministicRng",
                            node,
                        )
                elif base.id in self.time_modules:
                    if func.attr in _CLOCK_ALWAYS or (
                        func.attr in _CLOCK_NO_ARGS and not has_args
                    ):
                        self._emit(
                            WALL_CLOCK,
                            f"wall-clock read via {base.id}.{func.attr}()",
                            node,
                        )
                elif base.id in self.os_modules and func.attr == "getenv":
                    self._emit(
                        ENVIRON_DEPENDENCE,
                        f"environment read via {base.id}.getenv()",
                        node,
                    )
                elif (
                    base.id in self.datetime_like
                    and func.attr in _DATETIME_NOW
                ):
                    self._emit(
                        WALL_CLOCK,
                        f"wall-clock read via {base.id}.{func.attr}()",
                        node,
                    )
            elif isinstance(base, ast.Attribute):
                root = base.value
                if isinstance(root, ast.Name):
                    if (
                        root.id in self.numpy_modules
                        and base.attr == "random"
                    ):
                        if func.attr in _SEEDABLE:
                            if not has_args:
                                self._emit(
                                    UNSEEDED_RANDOM,
                                    f"{root.id}.random.{func.attr}() "
                                    f"constructed without a seed",
                                    node,
                                )
                        else:
                            self._emit(
                                UNSEEDED_RANDOM,
                                f"call to global {root.id}.random."
                                f"{func.attr}(); seed an explicit "
                                f"generator instead",
                                node,
                            )
                    elif (
                        root.id in self.datetime_like
                        and func.attr in _DATETIME_NOW
                    ):
                        self._emit(
                            WALL_CLOCK,
                            f"wall-clock read via {root.id}.{base.attr}."
                            f"{func.attr}()",
                            node,
                        )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.os_modules
            and node.attr == "environ"
        ):
            self._emit(
                ENVIRON_DEPENDENCE,
                f"environment read via {node.value.id}.environ",
                node,
            )
        self.generic_visit(node)


def _inline_suppressions(source: str) -> Dict[Optional[int], Set[str]]:
    """Per-line (and file-level, keyed by ``None``) ignored rule IDs."""
    ignored: Dict[Optional[int], Set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_LINE_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            ignored.setdefault(line_no, set()).update(i for i in ids if i)
        match = _IGNORE_FILE_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            ignored.setdefault(None, set()).update(i for i in ids if i)
    return ignored


def lint_python_source(source: str, artifact: str) -> LintReport:
    """Run every D rule over one Python source text.

    Inline ``# lint: ignore[...]`` comments on the flagged line (or
    ``# lint: ignore-file[...]`` anywhere) silence findings; silenced
    findings are counted in the report's ``suppressed_count``.  A
    syntactically invalid file raises :class:`SyntaxError` to the
    caller — it cannot be analyzed at all.
    """
    tree = ast.parse(source, filename=artifact)
    visitor = _DeterminismVisitor(artifact)
    visitor.visit(tree)
    ignored = _inline_suppressions(source)
    file_level = ignored.get(None, set())
    kept = []
    suppressed = 0
    for diagnostic in visitor.diagnostics:
        line_ids = ignored.get(diagnostic.line, set())
        if diagnostic.rule_id in line_ids or diagnostic.rule_id in file_level:
            suppressed += 1
            continue
        kept.append(diagnostic)
    return LintReport(diagnostics=tuple(kept), suppressed_count=suppressed)


def lint_python_path(path: str | Path) -> LintReport:
    """Lint one Python file from disk."""
    path = Path(path)
    return lint_python_source(path.read_text(), str(path))


def package_root() -> Path:
    """The installed :mod:`repro` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_package(
    root: Optional[str | Path] = None,
    suppressions: Optional[Suppressions] = None,
) -> LintReport:
    """Lint every ``*.py`` file under ``root`` (default: the installed
    :mod:`repro` package), enforcing the determinism contract
    package-wide.

    Artifacts are recorded relative to ``root``'s parent (e.g.
    ``repro/runtime/cache.py``) so reports are stable across machines.
    """
    base = Path(root) if root is not None else package_root()
    report = LintReport()
    for path in sorted(base.rglob("*.py")):
        artifact = str(path.relative_to(base.parent))
        report = report.merge(lint_python_source(path.read_text(), artifact))
    if suppressions is not None:
        report = report.apply_suppressions(suppressions)
    return report
