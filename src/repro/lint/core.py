"""Shared diagnostics core of the lint subsystem.

Every analyzer family (circuit structural rules, TPG hardware rules,
the Python-AST determinism rules) reports through the same vocabulary:

* a :class:`Rule` — a stable ID (``C006``), a kebab-case name
  (``dead-net``), a default :class:`Severity` and a one-line summary,
  registered once in the module-level :data:`REGISTRY`;
* a :class:`Diagnostic` — one finding of one rule against one artifact
  (a circuit net, a TPG design, a source line);
* a :class:`LintReport` — an ordered, immutable collection of
  diagnostics with severity roll-ups;
* :class:`Suppressions` — per-artifact / per-rule silencing, both from
  configuration (fnmatch patterns) and from inline
  ``# lint: ignore[D104]`` comments (handled by the AST analyzer).

Rule IDs are **stable contracts**: tests, suppression files and SARIF
consumers key on them, so an ID is never reused for a different check.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import LintError


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally.

    ``NOTE`` is informational (never gates anything), ``WARNING`` marks
    questionable-but-functional structure, ``ERROR`` marks defects that
    invalidate results or hardware.
    """

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"note"`` / ``"warning"`` / ``"error"`` (any case)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise LintError(
                f"unknown severity {text!r}; expected note, warning or error"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered lint check.

    Attributes
    ----------
    rule_id:
        Stable identifier (``C006``, ``T004``, ``D101``).  The prefix
        names the family: ``C`` circuit structure, ``T`` TPG hardware,
        ``D`` Python determinism.
    name:
        Kebab-case human name (``dead-net``).
    severity:
        Default severity of every diagnostic the rule emits.
    summary:
        One-line description for catalogues and SARIF rule metadata.
    """

    rule_id: str
    name: str
    severity: Severity
    summary: str


#: Every known rule, keyed by ID, in registration order.
REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry; IDs and names must be unique."""
    if rule.rule_id in REGISTRY:
        raise LintError(f"duplicate rule ID {rule.rule_id!r}")
    if any(r.name == rule.name for r in REGISTRY.values()):
        raise LintError(f"duplicate rule name {rule.name!r}")
    REGISTRY[rule.rule_id] = rule
    return rule


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in registration order."""
    return tuple(REGISTRY.values())


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by ID."""
    try:
        return REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown rule ID {rule_id!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated by one artifact location.

    Attributes
    ----------
    rule_id:
        The violated rule.
    severity:
        Effective severity (usually the rule's default).
    message:
        Human-readable description with the concrete names/values.
    artifact:
        What was linted: a circuit name, a file path, a design name.
    location:
        Logical location inside the artifact (a net, an FSM output,
        a function name); empty when the artifact itself is the
        location.
    line:
        1-based source line for file artifacts (None otherwise).
    column / end_column:
        1-based column range on ``line`` (None when the finding spans
        the whole line).  ``end_column`` follows the SARIF convention:
        it points one past the last character, so a single-character
        region at column ``c`` is ``(c, c + 1)``.
    """

    rule_id: str
    severity: Severity
    message: str
    artifact: str
    location: str = ""
    line: Optional[int] = None
    column: Optional[int] = None
    end_column: Optional[int] = None

    def format(self) -> str:
        """Render as ``artifact[:line]: severity[RULE] message``."""
        where = self.artifact
        if self.line is not None:
            where += f":{self.line}"
        return f"{where}: {self.severity}[{self.rule_id}] {self.message}"


def make_diagnostic(
    rule: Rule,
    message: str,
    artifact: str,
    location: str = "",
    line: Optional[int] = None,
    column: Optional[int] = None,
    end_column: Optional[int] = None,
) -> Diagnostic:
    """Build a diagnostic carrying ``rule``'s default severity."""
    return Diagnostic(
        rule_id=rule.rule_id,
        severity=rule.severity,
        message=message,
        artifact=artifact,
        location=location,
        line=line,
        column=column,
        end_column=end_column,
    )


class Suppressions:
    """Per-artifact, per-rule silencing.

    A mapping from fnmatch pattern (matched against the diagnostic's
    ``artifact``) to the rule IDs silenced there; ``"*"`` as a rule ID
    silences every rule for matching artifacts.

    >>> s = Suppressions({"*/cache.py": ["D104"], "legacy_*": ["*"]})
    >>> s.is_suppressed("src/repro/runtime/cache.py", "D104")
    True
    >>> s.is_suppressed("src/repro/runtime/cache.py", "D101")
    False
    """

    def __init__(
        self, rules_by_pattern: Optional[Mapping[str, Sequence[str]]] = None
    ) -> None:
        self._patterns: Tuple[Tuple[str, FrozenSet[str]], ...] = tuple(
            (pattern, frozenset(rule_ids))
            for pattern, rule_ids in (rules_by_pattern or {}).items()
        )

    def is_suppressed(self, artifact: str, rule_id: str) -> bool:
        """True if ``rule_id`` findings on ``artifact`` are silenced."""
        for pattern, rule_ids in self._patterns:
            if not fnmatch.fnmatch(artifact, pattern):
                continue
            if "*" in rule_ids or rule_id in rule_ids:
                return True
        return False

    def __bool__(self) -> bool:
        return bool(self._patterns)


@dataclass(frozen=True)
class LintReport:
    """An immutable, ordered collection of diagnostics.

    Attributes
    ----------
    diagnostics:
        Findings in discovery order.
    suppressed_count:
        Findings removed by :meth:`apply_suppressions` (kept so a
        clean report can still show work was silenced, not absent).
    """

    diagnostics: Tuple[Diagnostic, ...] = ()
    suppressed_count: int = 0

    @classmethod
    def from_iterable(cls, diagnostics: Iterable[Diagnostic]) -> "LintReport":
        """Build a report from any diagnostic iterable."""
        return cls(diagnostics=tuple(diagnostics))

    def merge(self, other: "LintReport") -> "LintReport":
        """Concatenate two reports (diagnostics and suppression counts)."""
        return LintReport(
            diagnostics=self.diagnostics + other.diagnostics,
            suppressed_count=self.suppressed_count + other.suppressed_count,
        )

    def apply_suppressions(self, suppressions: Suppressions) -> "LintReport":
        """Drop silenced findings, counting them in ``suppressed_count``."""
        if not suppressions:
            return self
        kept = tuple(
            d
            for d in self.diagnostics
            if not suppressions.is_suppressed(d.artifact, d.rule_id)
        )
        return LintReport(
            diagnostics=kept,
            suppressed_count=self.suppressed_count
            + len(self.diagnostics)
            - len(kept),
        )

    # -- roll-ups -----------------------------------------------------------

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def error_count(self) -> int:
        """Findings at ERROR severity."""
        return self.count(Severity.ERROR)

    @property
    def warning_count(self) -> int:
        """Findings at WARNING severity."""
        return self.count(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        """The worst severity present, or None for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_least(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        """Findings at or above ``severity``."""
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        """Findings grouped by rule ID, in first-seen order."""
        grouped: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            grouped.setdefault(d.rule_id, []).append(d)
        return grouped

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)
