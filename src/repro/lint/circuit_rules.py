"""Circuit structural lint rules (the ``C`` family).

Two entry points:

* :func:`lint_circuit` — rules that apply to a *valid* (already built)
  :class:`~repro.circuit.netlist.Circuit`: dead nets, unused inputs,
  constant-driven flip-flops.  These go beyond what construction
  enforces — the netlist builds fine, the structure is just wasteful or
  suspicious.
* :func:`lint_gates` / :func:`lint_bench_text` /
  :func:`lint_bench_path` — the same rules over a *raw* gate list, plus
  the hard structural defects (undriven nets, duplicate drivers,
  undriven or duplicated outputs, combinational cycles with full SCC
  membership) reported as diagnostics instead of a single thrown
  exception, so one lint pass surfaces every problem at once.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.circuit.bench import parse_bench_gates
from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import (
    MAX_SCC_NETS_IN_ERROR,
    Circuit,
    combinational_sccs,
)
from repro.errors import BenchParseError
from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    make_diagnostic,
    register,
)

UNDRIVEN_NET = register(Rule(
    "C001", "undriven-net", Severity.ERROR,
    "A gate fanin references a net that no gate drives.",
))
DUPLICATE_DRIVER = register(Rule(
    "C002", "duplicate-driver", Severity.ERROR,
    "Two or more gates drive the same net.",
))
UNDRIVEN_OUTPUT = register(Rule(
    "C003", "undriven-output", Severity.ERROR,
    "A primary output names a net that no gate drives.",
))
DUPLICATE_OUTPUT = register(Rule(
    "C004", "duplicate-output", Severity.ERROR,
    "The same net is listed as a primary output more than once.",
))
COMBINATIONAL_CYCLE = register(Rule(
    "C005", "combinational-cycle", Severity.ERROR,
    "The combinational core contains a cycle (full SCC reported).",
))
DEAD_NET = register(Rule(
    "C006", "dead-net", Severity.WARNING,
    "A non-input net drives nothing and is not a primary output.",
))
UNUSED_INPUT = register(Rule(
    "C007", "unused-input", Severity.WARNING,
    "A primary input drives nothing and is not a primary output.",
))
CONSTANT_FLOP = register(Rule(
    "C008", "constant-flop", Severity.WARNING,
    "A flip-flop's next-state cone contains no input or flip-flop, so "
    "its value is constant after the first cycle.",
))
PARSE_ERROR = register(Rule(
    "C009", "parse-error", Severity.ERROR,
    "The .bench source could not be parsed at all.",
))


def lint_circuit(circuit: Circuit, artifact: Optional[str] = None) -> LintReport:
    """Lint a valid circuit for wasteful or suspicious structure.

    Construction already rules out C001–C005, so only the soft rules
    (C006–C008) can fire here.
    """
    where = artifact if artifact is not None else circuit.name
    outputs = set(circuit.outputs)
    diagnostics: List[Diagnostic] = []
    for name in circuit.nets:
        gate = circuit.gate(name)
        if circuit.fanout_count(name) or name in outputs:
            continue
        if gate.gtype is GateType.INPUT:
            diagnostics.append(make_diagnostic(
                UNUSED_INPUT,
                f"primary input {name!r} drives nothing and is not a "
                f"primary output",
                where, location=name,
            ))
        else:
            diagnostics.append(make_diagnostic(
                DEAD_NET,
                f"net {name!r} ({gate.gtype.value}) drives nothing and is "
                f"not a primary output",
                where, location=name,
            ))
    diagnostics.extend(_constant_flops(circuit.gates, where, None))
    return LintReport.from_iterable(diagnostics)


def lint_gates(
    gates: Sequence[Gate],
    outputs: Sequence[str],
    artifact: str,
    lines: Optional[Mapping[str, int]] = None,
) -> LintReport:
    """Lint a raw gate list: hard structural rules plus the soft ones.

    Unlike :class:`Circuit` construction, this never raises on a
    structural defect — every violation becomes a diagnostic, so a
    netlist with three independent problems reports all three.
    """
    lines = lines or {}

    def at(net: str) -> Optional[int]:
        return lines.get(net)

    diagnostics: List[Diagnostic] = []
    by_name: Dict[str, Gate] = {}
    counts: Dict[str, int] = {}
    for gate in gates:
        by_name.setdefault(gate.name, gate)
        counts[gate.name] = counts.get(gate.name, 0) + 1
    for name, n in counts.items():
        if n > 1:
            diagnostics.append(make_diagnostic(
                DUPLICATE_DRIVER,
                f"net {name!r} has {n} drivers",
                artifact, location=name, line=at(name),
            ))

    missing: Dict[str, List[str]] = {}
    for gate in gates:
        for fanin in gate.fanins:
            if fanin not in by_name:
                missing.setdefault(fanin, []).append(gate.name)
    for net in sorted(missing):
        sinks = ", ".join(sorted(set(missing[net])))
        diagnostics.append(make_diagnostic(
            UNDRIVEN_NET,
            f"net {net!r} is referenced by {sinks} but never driven",
            artifact, location=net, line=at(net),
        ))

    seen_outputs: Set[str] = set()
    for out in outputs:
        if out in seen_outputs:
            diagnostics.append(make_diagnostic(
                DUPLICATE_OUTPUT,
                f"primary output {out!r} is listed more than once",
                artifact, location=out, line=at(out),
            ))
            continue
        seen_outputs.add(out)
        if out not in by_name:
            diagnostics.append(make_diagnostic(
                UNDRIVEN_OUTPUT,
                f"primary output {out!r} is not driven by any gate",
                artifact, location=out, line=at(out),
            ))

    resolvable = {
        name: gate
        for name, gate in by_name.items()
        if all(f in by_name for f in gate.fanins)
    }
    for component in combinational_sccs(resolvable):
        shown = component[:MAX_SCC_NETS_IN_ERROR]
        text = ", ".join(shown)
        if len(component) > len(shown):
            text += f", … and {len(component) - len(shown)} more"
        diagnostics.append(make_diagnostic(
            COMBINATIONAL_CYCLE,
            f"combinational cycle through {len(component)} nets: {text}",
            artifact, location=component[0], line=at(component[0]),
        ))

    # Soft rules on whatever structure is sound enough to inspect.
    fanout: Dict[str, int] = {name: 0 for name in by_name}
    for gate in gates:
        for fanin in gate.fanins:
            if fanin in fanout:
                fanout[fanin] += 1
    outputs_set = set(outputs)
    for name in sorted(by_name):
        gate = by_name[name]
        if fanout[name] or name in outputs_set:
            continue
        if gate.gtype is GateType.INPUT:
            diagnostics.append(make_diagnostic(
                UNUSED_INPUT,
                f"primary input {name!r} drives nothing and is not a "
                f"primary output",
                artifact, location=name, line=at(name),
            ))
        else:
            diagnostics.append(make_diagnostic(
                DEAD_NET,
                f"net {name!r} ({gate.gtype.value}) drives nothing and is "
                f"not a primary output",
                artifact, location=name, line=at(name),
            ))
    diagnostics.extend(_constant_flops(by_name, artifact, lines))
    return LintReport.from_iterable(diagnostics)


def lint_bench_text(text: str, artifact: str) -> LintReport:
    """Lint ``.bench`` source; a parse failure becomes one C009 error."""
    try:
        gates, outputs, lines = parse_bench_gates(text)
    except BenchParseError as exc:
        return LintReport.from_iterable([make_diagnostic(
            PARSE_ERROR, str(exc), artifact, line=exc.line_no,
        )])
    return lint_gates(gates, outputs, artifact, lines)


def lint_bench_path(path: str | Path) -> LintReport:
    """Lint a ``.bench`` file from disk."""
    path = Path(path)
    return lint_bench_text(path.read_text(), str(path))


def _constant_flops(
    gates: Mapping[str, Gate],
    artifact: str,
    lines: Optional[Mapping[str, int]],
) -> List[Diagnostic]:
    """Find flip-flops whose next-state value cannot ever vary.

    A flop is constant-driven when the transitive fanin cone of its D
    pin contains no primary input and no flip-flop — only gates and
    constants.  After the power-up X settles, such a flop holds one
    value forever; it contributes state bits but no behaviour.

    Computed by forward propagation: inputs, flip-flop outputs and
    undriven nets (already an error, not re-reported here) seed the
    "can vary" set, which then flows through combinational sinks.
    """
    fanout: Dict[str, List[str]] = {}
    for gate in gates.values():
        for fanin in gate.fanins:
            fanout.setdefault(fanin, []).append(gate.name)

    varying: Set[str] = {
        name
        for name, gate in gates.items()
        if gate.gtype in (GateType.INPUT, GateType.DFF)
    }
    varying.update(
        fanin
        for gate in gates.values()
        for fanin in gate.fanins
        if fanin not in gates
    )
    work = list(varying)
    while work:
        net = work.pop()
        for sink in fanout.get(net, ()):
            gate = gates.get(sink)
            if gate is None or not gate.gtype.is_combinational:
                continue
            if sink not in varying:
                varying.add(sink)
                work.append(sink)

    diagnostics = []
    for name in sorted(gates):
        gate = gates[name]
        if gate.gtype is not GateType.DFF or not gate.fanins:
            continue
        d_net = gate.fanins[0]
        if d_net in gates and d_net not in varying:
            diagnostics.append(make_diagnostic(
                CONSTANT_FLOP,
                f"flip-flop {name!r} is driven by a constant cone "
                f"(via net {d_net!r}); it holds one value after cycle 1",
                artifact, location=name,
                line=lines.get(name) if lines else None,
            ))
    return diagnostics
