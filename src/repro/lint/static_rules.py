"""Static-analysis lint rules (the ``C010``–``C013`` block).

These rules are powered by the static implication engine
(:mod:`repro.analysis.static`): value-set constant propagation over the
sequential structure, observability analysis and implication learning.
They find *semantic* redundancy the structural C001–C009 family cannot
see — a net that is provably constant in every reachable state, a cone
with no path to any output, a gate input that can never influence its
gate.

Because they run the full analysis (seconds, not milliseconds, on the
larger benchmarks) they are **opt-in**: :func:`lint_static` is not part
of :func:`repro.lint.circuit_rules.lint_circuit`, and the CLI exposes
them behind ``repro lint --static``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    make_diagnostic,
    register,
)

PROVABLY_CONSTANT = register(Rule(
    "C010", "provably-constant-net", Severity.WARNING,
    "A non-constant gate's output provably holds one binary value in "
    "every reachable state under every stimulus.",
))
UNOBSERVABLE_CONE = register(Rule(
    "C011", "unobservable-cone", Severity.WARNING,
    "Nets with no structural path to any primary output; faults there "
    "are untestable and logic is wasted.",
))
REDUNDANT_GATE_INPUT = register(Rule(
    "C012", "redundant-gate-input", Severity.WARNING,
    "A gate input pin driven by a constant at its non-controlling "
    "value; the pin never influences the gate.",
))
IMPLICATION_CONTRADICTION = register(Rule(
    "C013", "implication-contradiction", Severity.NOTE,
    "A net value the implication engine proves the ternary machine can "
    "never compute.",
))

#: Non-controlling input value per gate type: a pin stuck there is
#: removable without changing the gate's function.
_NONCONTROLLING: Dict[GateType, int] = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
    GateType.XOR: 0,
    GateType.XNOR: 0,
}

_MAX_CONE_NETS_SHOWN = 8


def lint_static(
    circuit: Circuit,
    artifact: Optional[str] = None,
    max_frames: Optional[int] = None,
) -> LintReport:
    """Run the implication-engine-backed rules over ``circuit``.

    One analysis pass feeds all four rules.  C011 aggregates to a
    single diagnostic per circuit (a dead cone is one defect, not one
    defect per net it swallows).
    """
    from repro.analysis.static import RedundancyProver, constants_of

    where = artifact if artifact is not None else circuit.name
    prover = RedundancyProver(circuit, max_frames=max_frames)
    constants = constants_of(prover.value_sets)
    diagnostics: List[Diagnostic] = []

    for net in sorted(constants):
        gate = circuit.gate(net)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        diagnostics.append(make_diagnostic(
            PROVABLY_CONSTANT,
            f"net {net!r} ({gate.gtype.value}) provably holds constant "
            f"{constants[net]} in every reachable state",
            where, location=net,
        ))

    unobservable = sorted(
        net for net in circuit.gates if net not in prover.observable
    )
    if unobservable:
        shown = ", ".join(unobservable[:_MAX_CONE_NETS_SHOWN])
        if len(unobservable) > _MAX_CONE_NETS_SHOWN:
            shown += f", … and {len(unobservable) - _MAX_CONE_NETS_SHOWN} more"
        diagnostics.append(make_diagnostic(
            UNOBSERVABLE_CONE,
            f"{len(unobservable)} net(s) have no structural path to any "
            f"primary output: {shown}",
            where, location=unobservable[0],
        ))

    for name in sorted(circuit.gates):
        gate = circuit.gate(name)
        noncontrolling = _NONCONTROLLING.get(gate.gtype)
        if noncontrolling is None or len(gate.fanins) < 2:
            continue
        for pin, driver in enumerate(gate.fanins):
            if constants.get(driver) == noncontrolling:
                diagnostics.append(make_diagnostic(
                    REDUNDANT_GATE_INPUT,
                    f"{gate.gtype.value} gate {name!r} pin {pin} is driven "
                    f"by {driver!r} = constant {noncontrolling} "
                    f"(non-controlling); the pin never influences the gate",
                    where, location=name,
                ))

    for net, value in sorted(prover.engine.contradictions):
        diagnostics.append(make_diagnostic(
            IMPLICATION_CONTRADICTION,
            f"the ternary machine can never compute {net} = {value}: "
            f"assuming it implies a contradiction",
            where, location=net,
        ))

    return LintReport.from_iterable(diagnostics)
