"""Fault diagnosis from observed test responses.

A fault-dictionary diagnosis layer on top of the fault simulator: build
the full pass/fail syndrome of every modeled fault under the applied
test sequence once, then locate an observed failing response by exact
or nearest-syndrome match.  This is the classic companion of any BIST
scheme — once the signature mismatches, diagnosis tells you *where*.
"""

from repro.diag.dictionary import (
    Diagnosis,
    FaultDictionary,
    Syndrome,
    observed_syndrome,
)

__all__ = [
    "Diagnosis",
    "FaultDictionary",
    "Syndrome",
    "observed_syndrome",
]
