"""Fault dictionaries and syndrome-based diagnosis.

A *syndrome* is the set of ``(time unit, output index)`` positions at
which a faulty machine's response provably differs from the fault-free
response (binary vs complementary binary — the same criterion the
detection machinery uses).  Structurally equivalent faults share a
syndrome by construction, so diagnosis resolves down to equivalence
classes, exactly as physical diagnosis theory predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import GROUP_FAULTS, _GroupSim
from repro.sim.logicsim import LogicSimulator
from repro.sim.values import V0, V1, Value

Syndrome = FrozenSet[Tuple[int, int]]
"""Failing positions: ``(time unit, primary output index)``."""


@dataclass(frozen=True)
class Diagnosis:
    """Ranked diagnosis outcome.

    Attributes
    ----------
    exact:
        Faults whose dictionary syndrome equals the observed one.
    ranked:
        All candidate faults with a nonzero match score, best first,
        as ``(fault, score)`` with Jaccard similarity in [0, 1].
    """

    exact: Tuple[Fault, ...]
    ranked: Tuple[Tuple[Fault, float], ...]

    @property
    def best(self) -> Fault | None:
        """The top candidate (None when nothing matches at all)."""
        if self.exact:
            return self.exact[0]
        return self.ranked[0][0] if self.ranked else None


class FaultDictionary:
    """Precomputed syndromes of a fault list under one test sequence."""

    def __init__(self, syndromes: Dict[Fault, Syndrome]) -> None:
        self._syndromes = dict(syndromes)

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        stimulus: Sequence[Sequence[Value]],
        faults: Sequence[Fault],
        compiled: CompiledCircuit | None = None,
    ) -> "FaultDictionary":
        """Simulate every fault and record its full syndrome."""
        comp = compiled or compile_circuit(circuit)
        flop_pos = {name: i for i, name in enumerate(circuit.flops)}
        syndromes: Dict[Fault, set] = {f: set() for f in faults}
        for start in range(0, len(faults), GROUP_FAULTS):
            group = list(faults[start : start + GROUP_FAULTS])
            sim = _GroupSim(comp, flop_pos, group)
            for u, pattern in enumerate(stimulus):
                sim.step(pattern)
                for po, idx in enumerate(comp.po_indices):
                    ones, zeros = sim.ones[idx], sim.zeros[idx]
                    if ones & 1:
                        failing = zeros
                    elif zeros & 1:
                        failing = ones
                    else:
                        continue
                    failing &= ~1
                    while failing:
                        low = failing & -failing
                        failing ^= low
                        fault = sim.bit_fault[low.bit_length() - 1]
                        syndromes[fault].add((u, po))
        return cls({f: frozenset(s) for f, s in syndromes.items()})

    @property
    def faults(self) -> Tuple[Fault, ...]:
        """The dictionary's fault list."""
        return tuple(self._syndromes)

    def syndrome(self, fault: Fault) -> Syndrome:
        """The stored syndrome of ``fault``."""
        return self._syndromes[fault]

    def equivalence_groups(self) -> List[Tuple[Fault, ...]]:
        """Faults indistinguishable under this sequence (same syndrome),
        excluding undetected faults (empty syndrome)."""
        by_syndrome: Dict[Syndrome, List[Fault]] = {}
        for fault, syndrome in self._syndromes.items():
            if syndrome:
                by_syndrome.setdefault(syndrome, []).append(fault)
        return [tuple(sorted(group)) for group in by_syndrome.values()]

    def diagnose(self, observed: Syndrome) -> Diagnosis:
        """Locate the fault(s) matching an observed failing syndrome."""
        exact = []
        scored: List[Tuple[Fault, float]] = []
        for fault, syndrome in self._syndromes.items():
            if not syndrome and not observed:
                continue
            union = len(syndrome | observed)
            inter = len(syndrome & observed)
            if union == 0 or inter == 0:
                continue
            score = inter / union
            if syndrome == observed:
                exact.append(fault)
            scored.append((fault, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return Diagnosis(exact=tuple(sorted(exact)), ranked=tuple(scored))


def observed_syndrome(
    circuit: Circuit,
    faulty_circuit: Circuit,
    stimulus: Sequence[Sequence[Value]],
) -> Syndrome:
    """The syndrome a tester would observe from a defective device.

    Simulates the good and "physically defective" circuits and records
    every position where both respond with definite, different values.
    """
    good = LogicSimulator(circuit).run(stimulus)
    bad = LogicSimulator(faulty_circuit).run(stimulus)
    failing = set()
    for u, (g_row, b_row) in enumerate(zip(good.outputs, bad.outputs)):
        for po, (g, b) in enumerate(zip(g_row, b_row)):
            if g in (V0, V1) and b in (V0, V1) and g != b:
                failing.add((u, po))
    return frozenset(failing)
