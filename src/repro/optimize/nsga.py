"""NSGA-II machinery: Pareto dominance, fast non-dominated sorting,
crowding distance.

Objective vectors are *minimization* tuples; the search encodes
coverage as ``-detected_count`` so all three objectives minimize
uniformly.  Everything here is pure and deterministic: fronts preserve
input order, crowding sums per-objective normalized gaps, and the
caller breaks remaining ties with the genome's own total order — no
float comparisons ever decide between equal individuals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Objectives = Tuple[float, ...]


def dominates(a: Objectives, b: Objectives) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (minimization)."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def fast_non_dominated_sort(objectives: Sequence[Objectives]) -> List[List[int]]:
    """Indices grouped into fronts: front 0 is the Pareto front of the
    input, front 1 the Pareto front of the remainder, and so on.

    Within a front, indices keep input order (deterministic).
    """
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current = sorted(nxt)
    return fronts


def crowding_distance(
    objectives: Sequence[Objectives], front: Sequence[int]
) -> Dict[int, float]:
    """Crowding distance of each index in ``front``.

    Boundary individuals per objective get ``inf``; interior ones sum
    the normalized gap between their neighbours.  Ties in an objective
    are broken by index so the sort (hence the distance) is
    deterministic.
    """
    distance: Dict[int, float] = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    n_obj = len(objectives[front[0]])
    for k in range(n_obj):
        ordered = sorted(front, key=lambda i: (objectives[i][k], i))
        lo = objectives[ordered[0]][k]
        hi = objectives[ordered[-1]][k]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for pos in range(1, len(ordered) - 1):
            i = ordered[pos]
            if distance[i] == float("inf"):
                continue
            gap = (
                objectives[ordered[pos + 1]][k]
                - objectives[ordered[pos - 1]][k]
            )
            distance[i] += gap / span
    return distance


def pareto_front(objectives: Sequence[Objectives]) -> List[int]:
    """Indices of the non-dominated members of ``objectives``."""
    fronts = fast_non_dominated_sort(objectives)
    return fronts[0] if fronts else []
