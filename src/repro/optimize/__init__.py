"""Seeded multi-objective search over weight assignments.

The paper's Section-4 procedure mines ``Ω`` greedily, one assignment at
a time, optimizing fault coverage alone.  This package goes beyond it
(ROADMAP item 3, in the style of the evolutionary functional-BIST line
of work): a fully deterministic (μ+λ) genetic search whose genome is a
*schedule* of weight assignments — per-input weight choices drawn from
a quantized hardware alphabet, plus a per-phase window length — scored
on three objectives at once:

* **fault coverage** of the paper's target faults ``F`` (from
  :mod:`repro.sim` fault simulation),
* **TPG area** from the :mod:`repro.hw` FSM-sharing cost model, and
* **test length** (the sum of the phase windows).

Non-dominated sorting with crowding distance (NSGA-II) ranks the
population; the final Pareto front is reported against the greedy ``Ω``
baseline, which seeds the initial population — so the front always
contains a point matching or dominating the paper's procedure.

Determinism contract: given ``(circuit, config, baseline flow)`` the
search result is byte-identical for any worker count, cache state, and
across an interrupt-then-resume run (generation-level checkpoints in
the resilience journal; per-generation rng forked from the root seed,
so resumption is history-independent).
"""

from repro.optimize.alphabet import build_alphabet, derive_windows
from repro.optimize.genome import (
    Genome,
    Phase,
    crossover,
    genome_assignments,
    mutate,
    random_genome,
)
from repro.optimize.nsga import (
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
)
from repro.optimize.evaluate import PhaseEvaluator
from repro.optimize.search import (
    FrontPoint,
    OptimizeConfig,
    OptimizeResult,
    run_optimize,
)
from repro.optimize.report import (
    front_comparison,
    optimize_payload,
    render_front,
    render_front_table,
)

__all__ = [
    "Genome",
    "Phase",
    "OptimizeConfig",
    "OptimizeResult",
    "FrontPoint",
    "PhaseEvaluator",
    "build_alphabet",
    "derive_windows",
    "random_genome",
    "crossover",
    "mutate",
    "genome_assignments",
    "dominates",
    "fast_non_dominated_sort",
    "crowding_distance",
    "run_optimize",
    "optimize_payload",
    "render_front",
    "render_front_table",
    "front_comparison",
]
