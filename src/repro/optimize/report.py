"""Pareto-front reporting and the greedy-Ω comparison.

The canonical payload (:func:`optimize_payload` /
:func:`render_front`) is what every surface emits — the CLI's
``--output`` file, the serve layer's stored job result, and the
benchmark's ``optimize_pareto.json`` artifact — rendered as canonical
JSON so the CI byte-identity gate can compare a ``--jobs 1`` run
against a ``--jobs 4`` run with ``diff``.

The comparison answers the paper-facing question both ways round
(same-budget framing):

* **coverage at equal area** — the best coverage of any front point
  whose TPG is no larger than the greedy baseline's;
* **area at equal coverage** — the smallest TPG of any front point
  whose coverage is no worse than the baseline's;

plus the headline verdict: does some front point dominate or match the
baseline on all three objectives at once?  (By construction it always
should — the baseline seeds the archive — so a ``false`` here is a
determinism bug, and the benchmark asserts on it.)
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.optimize.search import FrontPoint, OptimizeResult

OPTIMIZE_FORMAT = 1
"""Version of the optimize payload layout."""


def _point_dict(point: FrontPoint) -> Dict[str, object]:
    return {
        "assignments": [list(a) for a in point.assignments],
        "windows": list(point.windows),
        "detected": point.detected,
        "coverage": round(point.coverage, 6),
        "area": point.area,
        "length": point.length,
    }


def front_comparison(result: OptimizeResult) -> Dict[str, object]:
    """The same-budget comparison against the greedy baseline."""
    base = result.baseline
    at_area = [p for p in result.front if p.area <= base.area]
    at_coverage = [p for p in result.front if p.detected >= base.detected]
    best_cov: Optional[FrontPoint] = max(
        at_area, key=lambda p: (p.detected, -p.area, -p.length), default=None
    )
    best_area: Optional[FrontPoint] = min(
        at_coverage, key=lambda p: (p.area, p.length), default=None
    )
    dominates = any(
        p.detected >= base.detected
        and p.area <= base.area
        and p.length <= base.length
        for p in result.front
    )
    return {
        "baseline": _point_dict(base),
        "coverage_at_equal_area": (
            _point_dict(best_cov) if best_cov is not None else None
        ),
        "area_at_equal_coverage": (
            _point_dict(best_area) if best_area is not None else None
        ),
        "dominates_or_matches_baseline": dominates,
    }


def optimize_payload(result: OptimizeResult) -> Dict[str, object]:
    """The canonical JSON-ready payload for one search result."""
    cfg = result.config
    return {
        "format": OPTIMIZE_FORMAT,
        "kind": "optimize-front",
        "circuit": result.circuit_name,
        "seed": cfg.seed,
        "population": cfg.population,
        "generations": cfg.generations,
        "alphabet": [str(w) for w in result.alphabet],
        "windows": list(result.windows),
        "n_target_faults": result.n_target_faults,
        "evaluations": result.evaluations,
        "front": [_point_dict(p) for p in result.front],
        "comparison": front_comparison(result),
    }


def render_front(result: OptimizeResult) -> str:
    """Canonical byte-comparable rendering of the payload."""
    return json.dumps(optimize_payload(result), sort_keys=True, indent=2) + "\n"


def render_front_table(result: OptimizeResult) -> str:
    """A human-readable summary table of the front vs the baseline."""
    lines: List[str] = []
    base = result.baseline
    lines.append(
        f"{result.circuit_name}: Pareto front after "
        f"{result.generations_run} generations "
        f"({result.evaluations} genomes evaluated, "
        f"{result.n_target_faults} target faults)"
    )
    header = (
        f"{'point':>8} {'phases':>6} {'detected':>8} {'coverage':>8} "
        f"{'area_ge':>8} {'length':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    lines.append(
        f"{'greedy':>8} {len(base.assignments):>6} {base.detected:>8} "
        f"{base.coverage:>8.4f} {base.area:>8.1f} {base.length:>7}"
    )
    for k, point in enumerate(result.front):
        lines.append(
            f"{k:>8} {len(point.assignments):>6} {point.detected:>8} "
            f"{point.coverage:>8.4f} {point.area:>8.1f} {point.length:>7}"
        )
    comparison = front_comparison(result)
    verdict = (
        "dominates or matches"
        if comparison["dominates_or_matches_baseline"]
        else "DOES NOT match"
    )
    lines.append(f"front {verdict} the greedy baseline")
    return "\n".join(lines)
