"""The seeded (μ+λ) NSGA-II search loop.

Structure of one run:

1. The greedy baseline flow (Section 4's ``Ω`` after reverse-order
   simulation) supplies the weight alphabet, the window grid, the
   target faults and the **baseline genome** — which seeds generation
   0, so the search starts from the paper's solution and can only
   improve on it.
2. Each generation ``g`` draws every random decision from
   ``DeterministicRng(seed).fork(g)``: selection, crossover and
   mutation for generation ``g`` depend only on the population entering
   it — which makes resumption history-independent.
3. All fitness evaluation goes through :class:`PhaseEvaluator`
   (deduplicated, cached, executor-fanned-out); an **archive** of every
   genome ever evaluated accumulates, and the final Pareto front is
   the non-dominated set of the archive — so the baseline (or
   something dominating it) is always on the front.
4. After every generation the population and archive are checkpointed
   to the resilience journal; an interrupted run rerun with
   ``--resume`` continues at the next generation and produces a
   byte-identical final front.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.library import load_circuit
from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.core.procedure import ProcedureConfig
from repro.core.weight import Weight
from repro.errors import OptimizeError
from repro.flows.full_flow import FlowConfig, FlowResult, run_full_flow
from repro.optimize.alphabet import build_alphabet, derive_windows
from repro.optimize.evaluate import PhaseEvaluator
from repro.optimize.genome import (
    Genome,
    crossover,
    genome_assignments,
    genome_from_jsonable,
    genome_to_jsonable,
    mutate,
    random_genome,
)
from repro.optimize.nsga import (
    crowding_distance,
    fast_non_dominated_sort,
)
from repro.trace import trace_event, traced
from repro.util.rng import DeterministicRng

Objectives = Tuple[float, ...]


@dataclass(frozen=True)
class OptimizeConfig:
    """Search knobs.

    Attributes
    ----------
    seed:
        Root seed; also seeds the baseline flow when none is supplied.
    population:
        μ — survivors per generation (λ offspring are bred each round).
    generations:
        Offspring rounds after the seeded generation 0.
    crossover_rate / mutation_rate:
        Variation probabilities (crossover per child; mutation per
        gene/phase/schedule move).
    max_phases:
        Schedule length cap; 0 derives it from the baseline (its phase
        count, at least 2).
    max_alphabet:
        Weight-alphabet size cap (baseline weights are always kept).
    tgen_mode / tgen_max_len / compaction_sims / l_g:
        Baseline-flow knobs, used only when ``run_optimize`` computes
        the flow itself.
    static_prune:
        Exclude statically-certified untestable faults from phase
        fault simulation (and from the baseline flow's simulations).
        Scores, fronts and cached artifacts are identical either way —
        pruned faults are never detectable — so this is purely a
        speed/reporting knob.
    sim_backend:
        Fault-simulation backend for phase evaluation and the baseline
        flow (``"auto"``/``"python"``/``"vector"``).  Backends are
        bit-identical, so scores and fronts never depend on it.
    """

    seed: int = 1
    population: int = 16
    generations: int = 8
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    max_phases: int = 0
    max_alphabet: int = 12
    tgen_mode: str = "random"
    tgen_max_len: int = 2000
    compaction_sims: int = 60
    l_g: int = 512
    static_prune: bool = False
    sim_backend: str = "auto"

    def __post_init__(self) -> None:
        from repro.sim.backend import validate_backend

        validate_backend(self.sim_backend)
        if self.population < 2:
            raise OptimizeError(
                f"population must be at least 2, got {self.population}"
            )
        if self.generations < 0:
            raise OptimizeError(
                f"generations must be non-negative, got {self.generations}"
            )
        for name in ("crossover_rate", "mutation_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise OptimizeError(f"{name} must be in [0, 1], got {rate}")
        if self.max_phases < 0:
            raise OptimizeError(
                f"max_phases must be non-negative, got {self.max_phases}"
            )


@dataclass(frozen=True)
class FrontPoint:
    """One point of the Pareto front (or the baseline).

    ``assignments``/``windows`` are the genome decoded against the
    alphabet and window grid: per phase, the weight strings applied and
    the cycles they run for.
    """

    genome: Genome
    assignments: Tuple[Tuple[str, ...], ...]
    windows: Tuple[int, ...]
    detected: int
    coverage: float
    area: float
    length: int

    @property
    def objectives(self) -> Objectives:
        """The minimization vector NSGA-II ranked this point by."""
        return (-float(self.detected), self.area, float(self.length))


@dataclass
class OptimizeResult:
    """Everything one search produced."""

    circuit_name: str
    config: OptimizeConfig
    alphabet: Tuple[Weight, ...]
    windows: Tuple[int, ...]
    baseline: FrontPoint
    front: List[FrontPoint]
    generations_run: int
    evaluations: int
    n_target_faults: int
    journal_key: str
    resumed_from: Optional[int] = None
    flow: Optional[FlowResult] = field(default=None, repr=False)


def _flow_config(config: OptimizeConfig) -> FlowConfig:
    """The baseline-flow configuration ``run_optimize`` uses when the
    caller does not supply a flow."""
    return FlowConfig(
        seed=config.seed,
        tgen_max_len=config.tgen_max_len,
        tgen_mode=config.tgen_mode,
        compaction_sims=config.compaction_sims,
        procedure=ProcedureConfig(l_g=config.l_g),
        static_prune=config.static_prune,
        sim_backend=config.sim_backend,
    )


def optimize_journal_key(
    circuit_name: str,
    config: OptimizeConfig,
    l_g: int,
    alphabet: Sequence[Weight],
    windows: Sequence[int],
    baseline: Genome,
) -> str:
    """Checkpoint key: any change to the search space starts fresh."""
    from repro.runtime.keys import config_fingerprint

    fields = {
        "config": asdict(config),
        "l_g": l_g,
        "alphabet": [str(w) for w in alphabet],
        "windows": list(windows),
        "baseline": genome_to_jsonable(baseline),
    }
    return f"optimize:{circuit_name}:{config_fingerprint(fields)[:32]}"


class _Search:
    """One search's mutable state (population, archive, evaluator)."""

    def __init__(
        self,
        circuit: Circuit,
        config: OptimizeConfig,
        flow: FlowResult,
        runtime,
    ) -> None:
        self.circuit = circuit
        self.config = config
        self.runtime = runtime
        kept = list(flow.reverse_order.kept)
        if not kept:
            raise OptimizeError(
                f"the greedy baseline kept no assignments on "
                f"{circuit.name}; nothing to seed the search with"
            )
        self.alphabet = build_alphabet(
            kept, flow.procedure.weight_set, config.max_alphabet
        )
        self.l_g = flow.procedure.l_g
        self.windows = derive_windows(self.l_g)
        self._index = {w: i for i, w in enumerate(self.alphabet)}
        lg_slot = self.windows.index(self.l_g)
        self.baseline_genome: Genome = tuple(
            (tuple(self._index[w] for w in a.weights), lg_slot) for a in kept
        )
        self.max_phases = config.max_phases or max(len(kept), 2)
        self.n_inputs = len(circuit.inputs)
        pruner = None
        if config.static_prune:
            from repro.sim.faults import FaultPruner

            # The analysis is content-addressed, so when the baseline
            # flow already ran it (static_prune flows do) this is a
            # cache hit, not a second multi-second pass.
            pruner = FaultPruner(circuit, runtime=runtime)
        self.evaluator = PhaseEvaluator(
            circuit, flow.procedure.target_faults, runtime=runtime,
            pruner=pruner, backend=config.sim_backend,
        )
        self.archive: Dict[Genome, Objectives] = {}
        self.population: List[Genome] = []
        self.journal_key = optimize_journal_key(
            circuit.name,
            config,
            self.l_g,
            self.alphabet,
            self.windows,
            self.baseline_genome,
        )

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, genomes: Sequence[Genome]) -> None:
        """Score every not-yet-archived genome (one batched fan-out)."""
        fresh = []
        seen = set()
        for genome in genomes:
            if genome in self.archive or genome in seen:
                continue
            seen.add(genome)
            fresh.append(genome)
        phases = [
            (WeightAssignment(tuple(self.alphabet[g] for g in genes)),
             self.windows[slot])
            for genome in fresh
            for genes, slot in genome
        ]
        detected_sets = self.evaluator.evaluate_phases(phases)
        pos = 0
        for genome in fresh:
            union: set = set()
            for _ in genome:
                union |= detected_sets[pos]
                pos += 1
            assignments = genome_assignments(genome, self.alphabet)
            max_window = max(self.windows[slot] for _, slot in genome)
            area = self.evaluator.area(assignments, max_window)
            length = sum(self.windows[slot] for _, slot in genome)
            self.archive[genome] = (
                -float(len(union)), area, float(length)
            )

    # -- selection ----------------------------------------------------------

    def _ranking(
        self, genomes: Sequence[Genome]
    ) -> Dict[Genome, Tuple[int, float]]:
        """(rank, -crowding) per genome, for tournament comparison."""
        objs = [self.archive[g] for g in genomes]
        ranking: Dict[Genome, Tuple[int, float]] = {}
        for rank, front in enumerate(fast_non_dominated_sort(objs)):
            distance = crowding_distance(objs, front)
            for i in front:
                ranking[genomes[i]] = (rank, -distance[i])
        return ranking

    def survivors(self, combined: Sequence[Genome]) -> List[Genome]:
        """NSGA-II environmental selection of μ from ``combined``."""
        unique: List[Genome] = []
        seen = set()
        for genome in combined:
            if genome not in seen:
                seen.add(genome)
                unique.append(genome)
        objs = [self.archive[g] for g in unique]
        chosen: List[Genome] = []
        for front in fast_non_dominated_sort(objs):
            if len(chosen) + len(front) <= self.config.population:
                chosen.extend(unique[i] for i in front)
                if len(chosen) == self.config.population:
                    break
                continue
            distance = crowding_distance(objs, front)
            ordered = sorted(
                front, key=lambda i: (-distance[i], unique[i])
            )
            chosen.extend(
                unique[i]
                for i in ordered[: self.config.population - len(chosen)]
            )
            break
        return chosen

    def offspring(self, rng: DeterministicRng) -> List[Genome]:
        """Breed λ = μ children from the current population."""
        ranking = self._ranking(self.population)

        def tournament() -> Genome:
            a = self.population[rng.randint(0, len(self.population) - 1)]
            b = self.population[rng.randint(0, len(self.population) - 1)]
            return min(a, b, key=lambda g: (ranking[g], g))

        children: List[Genome] = []
        for _ in range(self.config.population):
            mother, father = tournament(), tournament()
            if rng.random() < self.config.crossover_rate:
                child = crossover(rng, mother, father)
            else:
                child = mother
            child = child[: self.max_phases]
            child = mutate(
                rng,
                child,
                len(self.alphabet),
                len(self.windows),
                self.max_phases,
                self.config.mutation_rate,
            )
            children.append(child)
        return children

    def initial_population(self, rng: DeterministicRng) -> List[Genome]:
        """Generation 0: the greedy baseline plus random genomes."""
        population = [self.baseline_genome]
        while len(population) < self.config.population:
            population.append(
                random_genome(
                    rng,
                    self.n_inputs,
                    len(self.alphabet),
                    len(self.windows),
                    self.max_phases,
                )
            )
        return population

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self, generation: int) -> None:
        journal = getattr(self.runtime, "journal", None)
        if journal is None:
            return
        journal.record(
            self.journal_key,
            {
                "kind": "optimize",
                "generation": generation,
                "population": [genome_to_jsonable(g) for g in self.population],
                "archive": [
                    [genome_to_jsonable(g), list(self.archive[g])]
                    for g in sorted(self.archive)
                ],
            },
        )

    def restore(self) -> Optional[int]:
        """Load the latest checkpoint; return its generation (or None).

        Payloads are validated field by field — anything stale, foreign
        or corrupt is ignored and the search starts from scratch.
        """
        runtime = self.runtime
        if runtime is None or not getattr(runtime, "resume", False):
            return None
        journal = getattr(runtime, "journal", None)
        if journal is None:
            return None
        payload = journal.get(self.journal_key)
        if not isinstance(payload, dict) or payload.get("kind") != "optimize":
            return None
        try:
            generation = int(payload["generation"])
            population = [
                genome_from_jsonable(g) for g in payload["population"]
            ]
            archive = {
                genome_from_jsonable(g): tuple(objs)
                for g, objs in payload["archive"]
            }
        except (KeyError, TypeError, ValueError):
            return None
        if not population or not all(g in archive for g in population):
            return None
        n_alpha, n_win = len(self.alphabet), len(self.windows)
        for genome in archive:
            for genes, slot in genome:
                if len(genes) != self.n_inputs or not 0 <= slot < n_win:
                    return None
                if any(not 0 <= g < n_alpha for g in genes):
                    return None
        self.population = population
        self.archive = archive
        return generation


def run_optimize(
    circuit: Circuit | str,
    config: OptimizeConfig | None = None,
    runtime=None,
    flow: FlowResult | None = None,
) -> OptimizeResult:
    """Run the full multi-objective search on ``circuit``.

    ``flow`` is the greedy baseline to seed from and compare against;
    when omitted it is computed with the config's flow knobs (and the
    same ``runtime``).  Results are bit-identical for any worker count
    and cache state, and across an interrupt-then-``--resume`` rerun.
    """
    cfg = config or OptimizeConfig()
    if isinstance(circuit, str):
        circuit = load_circuit(circuit)
    if flow is None:
        flow = run_full_flow(circuit, _flow_config(cfg), runtime=runtime)

    search = _Search(circuit, cfg, flow, runtime)
    with traced(
        runtime,
        "optimize",
        circuit=circuit.name,
        population=cfg.population,
        generations=cfg.generations,
        seed=cfg.seed,
    ):
        resumed_from = search.restore()
        start = 0 if resumed_from is None else resumed_from + 1
        root = DeterministicRng(cfg.seed)
        for g in range(start, cfg.generations + 1):
            rng = root.fork(g)
            with traced(runtime, "generation", index=g):
                if g == 0:
                    search.population = search.initial_population(rng)
                    search.evaluate(search.population)
                else:
                    children = search.offspring(rng)
                    search.evaluate(children)
                    search.population = search.survivors(
                        list(search.population) + children
                    )
                _generation_event(runtime, search, g)
            search.checkpoint(g)
        result = _finalize(search, cfg, resumed_from)
        trace_event(
            runtime,
            "front",
            circuit=circuit.name,
            size=len(result.front),
            evaluations=result.evaluations,
        )
    result.flow = flow
    return result


def _generation_event(runtime, search: _Search, g: int) -> None:
    """One deterministic progress event per generation."""
    objs = [search.archive[genome] for genome in search.population]
    fronts = fast_non_dominated_sort(objs)
    front = fronts[0] if fronts else []
    best_detected = max((int(-objs[i][0]) for i in front), default=0)
    min_area = min((objs[i][1] for i in front), default=0.0)
    trace_event(
        runtime,
        "generation",
        gen=g,
        evaluated=len(search.archive),
        front=len(front),
        best_detected=best_detected,
        min_area=min_area,
    )


def _point(search: _Search, genome: Genome) -> FrontPoint:
    objs = search.archive[genome]
    detected = int(-objs[0])
    n_faults = len(search.evaluator.faults)
    return FrontPoint(
        genome=genome,
        assignments=tuple(
            tuple(str(search.alphabet[g]) for g in genes)
            for genes, _slot in genome
        ),
        windows=tuple(search.windows[slot] for _genes, slot in genome),
        detected=detected,
        coverage=detected / n_faults if n_faults else 1.0,
        area=float(objs[1]),
        length=int(objs[2]),
    )


def _finalize(
    search: _Search, cfg: OptimizeConfig, resumed_from: Optional[int]
) -> OptimizeResult:
    """The non-dominated set of the archive, deterministically ordered."""
    genomes = sorted(search.archive)
    objs = [search.archive[g] for g in genomes]
    front_idx = fast_non_dominated_sort(objs)[0]
    points = sorted(
        (_point(search, genomes[i]) for i in front_idx),
        key=lambda p: (p.objectives, p.genome),
    )
    return OptimizeResult(
        circuit_name=search.circuit.name,
        config=cfg,
        alphabet=search.alphabet,
        windows=search.windows,
        baseline=_point(search, search.baseline_genome),
        front=points,
        generations_run=cfg.generations + 1,
        evaluations=len(search.archive),
        n_target_faults=len(search.evaluator.faults),
        journal_key=search.journal_key,
        resumed_from=resumed_from,
    )
