"""The quantized weight alphabet and window grid the search moves on.

The optimizer never invents free-form weights: every gene indexes into
a fixed **alphabet** of deterministic subsequence weights that the
Figure-1 FSM bank can realize, and every phase window comes from a
small **grid** of ``L_G`` values (so the cycle counter's terminal-count
decode stays a constant).  Both are mined from the greedy baseline:

* the alphabet starts with the weights of the kept (reverse-order
  surviving) assignments — guaranteeing the greedy ``Ω`` is expressible
  as a genome — and is padded with the remaining weights of the mined
  weight set ``S`` up to a size cap;
* the window grid quantizes down from the baseline ``L_G``
  (``L_G/4, L_G/2, L_G``), always including ``L_G`` itself.

Everything here is a pure function of its inputs; order is canonical
(kept-assignment weights in first-appearance order, then ``S`` order),
so the same flow always produces the same search space.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.assignment import WeightAssignment
from repro.core.weight import Weight
from repro.core.weight_set import WeightSet
from repro.errors import OptimizeError


def build_alphabet(
    kept: Sequence[WeightAssignment],
    weight_set: WeightSet,
    max_alphabet: int = 12,
) -> Tuple[Weight, ...]:
    """The deterministic weight alphabet for one search.

    Kept-assignment weights come first (in first-appearance order —
    they are never dropped, whatever the cap, because the baseline
    genome must be expressible); the mined weight set ``S`` fills the
    remaining slots in its insertion order.

    Raises
    ------
    OptimizeError
        If a kept assignment uses the pseudo-random weight (the
        alphabet is the deterministic FSM bank) or the alphabet would
        be empty.
    """
    if max_alphabet < 1:
        raise OptimizeError(f"max_alphabet must be positive, got {max_alphabet}")
    alphabet: List[Weight] = []
    seen = set()
    for assignment in kept:
        for weight in assignment.weights:
            if weight.is_random:
                raise OptimizeError(
                    "baseline assignments use the pseudo-random weight; "
                    "the optimizer searches the deterministic alphabet only"
                )
            if weight not in seen:
                seen.add(weight)
                alphabet.append(weight)
    for weight in weight_set:
        if len(alphabet) >= max_alphabet:
            break
        if weight.is_random or weight in seen:
            continue
        seen.add(weight)
        alphabet.append(weight)
    if not alphabet:
        raise OptimizeError(
            "empty weight alphabet: the baseline kept no assignments and "
            "the mined weight set is empty"
        )
    return tuple(alphabet)


def derive_windows(l_g: int) -> Tuple[int, ...]:
    """The quantized ``L_G`` grid for ``l_g`` (ascending, includes ``l_g``)."""
    if l_g < 1:
        raise OptimizeError(f"l_g must be positive, got {l_g}")
    grid = sorted({max(1, l_g // 4), max(1, l_g // 2), l_g})
    return tuple(grid)
