"""Genome encoding and variation operators.

A genome is a *schedule* of weight-assignment phases:

.. code-block:: text

    genome  = (phase, phase, ...)            # 1 .. max_phases entries
    phase   = (gene_tuple, window_index)
    gene    = index into the weight alphabet  # one per CUT input

Phase ``(genes, k)`` means: apply the assignment whose input ``i``
weight is ``alphabet[genes[i]]`` for ``windows[k]`` cycles, FSMs
restarted at the phase boundary — exactly the hardware semantics of
the Figure-1 generator, so a genome maps 1:1 onto a
:class:`~repro.hw.tpg.TpgDesign`.

Genomes are nested tuples of ints: hashable (evaluation dedup keys),
totally ordered (deterministic tie-breaks), and trivially
JSON-serializable (generation checkpoints).

All operators draw exclusively from a
:class:`~repro.util.rng.DeterministicRng`, and every structural choice
(crossover cut, mutated gene, dropped phase) is quantized to the
alphabet/window grid — the search can never leave the space the
hardware supports.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.assignment import WeightAssignment
from repro.core.weight import Weight
from repro.util.rng import DeterministicRng

Phase = Tuple[Tuple[int, ...], int]
Genome = Tuple[Phase, ...]


def random_genome(
    rng: DeterministicRng,
    n_inputs: int,
    n_alphabet: int,
    n_windows: int,
    max_phases: int,
) -> Genome:
    """Draw a uniform random genome within the quantized search space."""
    n_phases = rng.randint(1, max_phases)
    phases: List[Phase] = []
    for _ in range(n_phases):
        genes = tuple(rng.randint(0, n_alphabet - 1) for _ in range(n_inputs))
        phases.append((genes, rng.randint(0, n_windows - 1)))
    return tuple(phases)


def crossover(rng: DeterministicRng, a: Genome, b: Genome) -> Genome:
    """Phase-level one-point crossover.

    The child takes a prefix of ``a``'s schedule and a suffix of
    ``b``'s; phase boundaries are hardware-meaningful cut points (each
    phase is a self-contained assignment window), so recombination
    never produces an out-of-alphabet gene.
    """
    cut_a = rng.randint(1, len(a))
    cut_b = rng.randint(0, len(b))
    child = a[:cut_a] + b[cut_b:]
    return child if child else a


def mutate(
    rng: DeterministicRng,
    genome: Genome,
    n_alphabet: int,
    n_windows: int,
    max_phases: int,
    rate: float,
) -> Genome:
    """Mutate ``genome`` within the quantized space.

    Three moves, all alphabet/grid-constrained:

    * **gene**: re-draw one input's weight index (probability ``rate``
      per gene);
    * **window**: re-draw a phase's window index (probability ``rate``
      per phase) — shrinking windows is how the search trades coverage
      for test length;
    * **schedule**: with probability ``rate``, drop a phase (if more
      than one) or clone-and-perturb one (if below ``max_phases``) —
      dropping phases is how it trades coverage for area.
    """
    phases: List[Phase] = []
    for genes, window in genome:
        new_genes = tuple(
            rng.randint(0, n_alphabet - 1) if rng.random() < rate else g
            for g in genes
        )
        if rng.random() < rate:
            window = rng.randint(0, n_windows - 1)
        phases.append((new_genes, window))
    if rng.random() < rate:
        if len(phases) > 1 and rng.bit():
            del phases[rng.randint(0, len(phases) - 1)]
        elif len(phases) < max_phases:
            source_genes, source_window = phases[rng.randint(0, len(phases) - 1)]
            genes = list(source_genes)
            genes[rng.randint(0, len(genes) - 1)] = rng.randint(
                0, n_alphabet - 1
            )
            phases.insert(
                rng.randint(0, len(phases)), (tuple(genes), source_window)
            )
    return tuple(phases)


def genome_assignments(
    genome: Genome, alphabet: Sequence[Weight]
) -> List[WeightAssignment]:
    """The distinct weight assignments a genome schedules, in
    first-appearance order (what :func:`~repro.hw.tpg.synthesize_tpg`
    takes)."""
    out: List[WeightAssignment] = []
    seen = set()
    for genes, _window in genome:
        if genes in seen:
            continue
        seen.add(genes)
        out.append(WeightAssignment(tuple(alphabet[g] for g in genes)))
    return out


def genome_to_jsonable(genome: Genome) -> List[List[object]]:
    """Checkpoint form: nested lists of ints."""
    return [[list(genes), window] for genes, window in genome]


def genome_from_jsonable(payload: object) -> Genome:
    """Rebuild a genome from :func:`genome_to_jsonable` output.

    Raises ``ValueError``/``TypeError`` on malformed payloads — the
    checkpoint loader treats those as a stale checkpoint, not a crash.
    """
    phases: List[Phase] = []
    for entry in payload:  # type: ignore[union-attr]
        genes_raw, window = entry
        phases.append((tuple(int(g) for g in genes_raw), int(window)))
    if not phases:
        raise ValueError("genome has no phases")
    return tuple(phases)
