"""Deduplicated, cached, parallel fitness evaluation.

The expensive part of the search is fault-simulating candidate phases.
Three layers keep it cheap without ever changing a result:

1. **In-memory memo** — a phase is ``(assignment, window)``; repeated
   occurrences across genomes and generations are simulated once per
   process.
2. **Content-addressed artifact cache** — uncached phases are looked up
   in the runtime's disk cache under
   ``simulation_key(circuit, T_G, F, {"kind": "optimize_phase"})``; a
   rerun (or another job on the same machine) reuses them.
3. **Executor fan-out** — phases still pending after both layers are
   flattened into per-fault-group simulation tasks and dispatched
   through ``RuntimeContext.executor.run_group_tasks``; results merge
   in task order, so the outcome is bit-identical for any worker count
   (and under the executor's whole failure-recovery repertoire).

The TPG-area objective is memoized per (assignment tuple, window):
synthesis is pure, so the memo is exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.circuit.bench import write_bench
from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.hw.cost import tpg_cost
from repro.hw.tpg import synthesize_tpg
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault, FaultPruner, fault_name
from repro.sim.faultsim import GROUP_FAULTS, FaultSimulator
from repro.trace import trace_event

#: A phase is one weight assignment applied for one window of cycles.
PhaseKey = Tuple[Tuple[str, ...], int]


def phase_key(assignment: WeightAssignment, window: int) -> PhaseKey:
    """Hashable content key of one phase."""
    return (tuple(str(w) for w in assignment.weights), window)


class PhaseEvaluator:
    """Evaluates phases to the sets of target faults they detect.

    Parameters
    ----------
    circuit:
        The circuit under test.
    target_faults:
        The paper's ``F`` — the faults coverage is counted over, in a
        fixed canonical order (group packing depends on it).
    runtime:
        Optional :class:`~repro.runtime.context.RuntimeContext`; plugs
        in the artifact cache and the worker pool.  Results never
        depend on it.
    pruner:
        Optional :class:`~repro.sim.faults.FaultPruner`.  Faults it
        certifies untestable are excluded from the simulation groups
        only; ``self.faults`` (and with it every cache key, payload
        denominator and coverage count) still spans the full target
        list, so results — and cached artifacts — are shared verbatim
        with unpruned evaluators.
    backend:
        Fault-simulation backend selector (resolved against ``runtime``
        and the environment, see
        :func:`repro.sim.backend.resolve_backend`).  The vector backend
        simulates every fault of a phase in one pass, so its tasks are
        per-phase rather than per-fault-group; detected sets — and the
        cache entries keyed purely by content — are identical.
    """

    def __init__(
        self,
        circuit: Circuit,
        target_faults: Sequence[Fault],
        runtime=None,
        compiled: CompiledCircuit | None = None,
        pruner: Optional[FaultPruner] = None,
        backend: Optional[str] = None,
    ) -> None:
        from repro.sim.backend import resolve_backend

        self.circuit = circuit
        self.comp = compiled or compile_circuit(circuit)
        self.faults: Tuple[Fault, ...] = tuple(target_faults)
        self.runtime = runtime
        self.backend = resolve_backend(backend, runtime)
        if pruner is not None:
            kept, _ = pruner.split(self.faults)
            self._sim_faults: Tuple[Fault, ...] = tuple(kept)
        else:
            self._sim_faults = self.faults
        self._bench_text = write_bench(circuit)
        self._memo: Dict[PhaseKey, FrozenSet[str]] = {}
        self._area_memo: Dict[Tuple[Tuple[Tuple[str, ...], ...], int], float] = {}
        self._fingerprints: Optional[Tuple[str, str]] = None

    # -- coverage -----------------------------------------------------------

    def evaluate_phases(
        self, phases: Sequence[Tuple[WeightAssignment, int]]
    ) -> List[FrozenSet[str]]:
        """Detected target-fault names for each phase, in phase order.

        Every phase starts from the all-X state (the hardware restarts
        its FSMs — and the CUT is not reset, but each window is
        simulated independently exactly as the greedy procedure
        simulated its candidate windows).
        """
        order: List[PhaseKey] = []
        stimuli: Dict[PhaseKey, Tuple[Tuple, ...]] = {}
        for assignment, window in phases:
            key = phase_key(assignment, window)
            if key in self._memo or key in stimuli:
                continue
            order.append(key)
            stimuli[key] = tuple(
                tuple(row) for row in assignment.generate(window)
            )
        pending = self._fill_from_cache(order, stimuli)
        self._simulate_pending(pending, stimuli)
        return [self._memo[phase_key(a, w)] for a, w in phases]

    def _cache_key(self, stimulus) -> Optional[str]:
        ctx = self.runtime
        if ctx is None or ctx.cache is None:
            return None
        from repro.runtime.keys import (
            faults_fingerprint,
            fingerprint,
            simulation_key,
            stimulus_fingerprint,
        )

        if self._fingerprints is None:
            self._fingerprints = (
                fingerprint(self._bench_text),
                faults_fingerprint(self.faults),
            )
        circuit_fp, faults_fp = self._fingerprints
        return simulation_key(
            circuit_fp,
            stimulus_fingerprint(stimulus),
            faults_fp,
            {"kind": "optimize_phase"},
        )

    def _fill_from_cache(
        self, order: List[PhaseKey], stimuli: Dict[PhaseKey, Tuple]
    ) -> List[PhaseKey]:
        """Resolve phases from the artifact cache; return the misses."""
        ctx = self.runtime
        pending: List[PhaseKey] = []
        for key in order:
            cache_key = self._cache_key(stimuli[key])
            payload = None if cache_key is None else ctx.cache.get(cache_key)
            detected = _detected_from_payload(payload, self.faults)
            if detected is not None:
                self._memo[key] = detected
                ctx.stats.full_sim_hits += 1
                trace_event(ctx, "cache_hit", op="optimize_phase", key=cache_key)
                continue
            if cache_key is not None:
                ctx.stats.cache_misses += 1
                trace_event(ctx, "cache_miss", op="optimize_phase", key=cache_key)
            pending.append(key)
        return pending

    def _simulate_pending(
        self, pending: List[PhaseKey], stimuli: Dict[PhaseKey, Tuple]
    ) -> None:
        """Simulate the remaining phases — fanned out per fault group.

        Tasks are built in (phase, group) order and results merged in
        the same order; the executor returns them positionally, so the
        merge is independent of scheduling.  The vector backend packs
        the whole kept fault list into one word-parallel pass, so its
        tasks are one per phase (serially it batches all pending phases
        through one engine); detected sets are identical either way.
        """
        if not pending:
            return
        ctx = self.runtime
        if ctx is not None:
            if self.backend == "vector":
                tasks = [
                    (
                        self._bench_text,
                        stimuli[key],
                        list(self._sim_faults),
                        False,
                        True,
                        self.backend,
                    )
                    for key in pending
                ]
                parts = ctx.executor.run_group_tasks(tasks)
                for key, part in zip(pending, parts):
                    names = [fault_name(f) for f in part.detection_time]
                    self._store(key, frozenset(names), stimuli[key])
                return
            # Group packing over the kept faults only — certified-
            # untestable faults cannot contribute detections, so the
            # detected-name sets (and everything cached under
            # self.faults) are unchanged.
            groups = [
                list(self._sim_faults[start : start + GROUP_FAULTS])
                for start in range(0, len(self._sim_faults), GROUP_FAULTS)
            ]
            tasks = [
                (self._bench_text, stimuli[key], group, False, True)
                for key in pending
                for group in groups
            ]
            parts = ctx.executor.run_group_tasks(tasks)
            for p, key in enumerate(pending):
                names: List[str] = []
                for part in parts[p * len(groups) : (p + 1) * len(groups)]:
                    names.extend(fault_name(f) for f in part.detection_time)
                self._store(key, frozenset(names), stimuli[key])
        else:
            sim = FaultSimulator(self.circuit, self.comp, backend=self.backend)
            if getattr(sim, "_use_vector", False) and len(pending) > 1:
                results = sim.run_batch(
                    [list(stimuli[key]) for key in pending],
                    list(self._sim_faults),
                )
                for key, result in zip(pending, results):
                    names = [fault_name(f) for f in result.detection_time]
                    self._store(key, frozenset(names), stimuli[key])
                return
            for key in pending:
                result = sim.run(stimuli[key], self._sim_faults)
                names = [fault_name(f) for f in result.detection_time]
                self._store(key, frozenset(names), stimuli[key])

    def _store(self, key: PhaseKey, detected: FrozenSet[str], stimulus) -> None:
        self._memo[key] = detected
        ctx = self.runtime
        if ctx is not None:
            ctx.stats.full_simulations += 1
            cache_key = self._cache_key(stimulus)
            if cache_key is not None:
                ctx.cache.put(
                    cache_key,
                    {"n_faults": len(self.faults), "detected": sorted(detected)},
                )

    # -- area ---------------------------------------------------------------

    def area(
        self, assignments: Sequence[WeightAssignment], l_g: int
    ) -> float:
        """Gate-equivalent TPG area for ``assignments`` at window ``l_g``.

        The genome's own assignments only — cheaper hardware for the
        schedule actually applied *is* the objective; the full-alphabet
        bank is stamped onto final saved designs, not charged to every
        candidate.
        """
        memo_key = (
            tuple(tuple(str(w) for w in a.weights) for a in assignments),
            l_g,
        )
        if memo_key not in self._area_memo:
            design = synthesize_tpg(
                list(assignments), l_g, input_names=self.circuit.inputs
            )
            self._area_memo[memo_key] = tpg_cost(design).gate_equivalents
        return self._area_memo[memo_key]


def _detected_from_payload(
    payload: object, faults: Sequence[Fault]
) -> Optional[FrozenSet[str]]:
    """Validate a cached phase payload; None = treat as a miss."""
    if not isinstance(payload, dict):
        return None
    if payload.get("n_faults") != len(faults):
        return None
    detected = payload.get("detected")
    if not isinstance(detected, list):
        return None
    known = {fault_name(f) for f in faults}
    names = [str(n) for n in detected]
    if not set(names) <= known:
        return None
    return frozenset(names)
