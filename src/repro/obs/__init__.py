"""Observation-point insertion (Section 5, Tables 7-16).

Observation points trade DFT area for TPG size: with fewer weight
assignments in a limited set ``Ω_lim``, some target faults stay
undetected at the primary outputs — but their effects do reach internal
lines, and observing those lines recovers the coverage.

* :mod:`repro.obs.selection` — greedy selection of ``Ω_lim`` from ``Ω``
  (most new detections first).
* :mod:`repro.obs.oppoints` — computation of ``OP(f)``: the lines where
  fault ``f``'s effect appears under ``Ω_lim``'s sequences.
* :mod:`repro.obs.cover` — minimal covering set of observation points
  (greedy set cover).
* :mod:`repro.obs.tradeoff` — the full sweep regenerating the paper's
  Tables 7-16.
"""

from repro.obs.selection import GreedyPick, greedy_select
from repro.obs.oppoints import compute_op_sets
from repro.obs.cover import greedy_cover
from repro.obs.insert import insert_observation_points
from repro.obs.tradeoff import TradeoffRow, observation_point_tradeoff, format_tradeoff

__all__ = [
    "GreedyPick",
    "greedy_select",
    "compute_op_sets",
    "greedy_cover",
    "insert_observation_points",
    "TradeoffRow",
    "observation_point_tradeoff",
    "format_tradeoff",
]
