"""Greedy minimal covering of observation points.

Given ``OP(f)`` for the faults to recover, pick a small set of lines
``OP`` such that every recoverable fault (``OP(f)`` non-empty) has at
least one of its lines observed.  Minimal set cover is NP-hard; the
paper uses "a covering procedure" — we use the standard greedy
algorithm (ln-n approximation), with deterministic tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.sim.faults import Fault


@dataclass(frozen=True)
class CoverResult:
    """Outcome of observation-point covering.

    Attributes
    ----------
    lines:
        The selected observation points, in pick order.
    covered:
        Faults recovered by the selected lines.
    uncoverable:
        Faults with empty ``OP(f)`` — no observation point helps.
    """

    lines: Tuple[str, ...]
    covered: Tuple[Fault, ...]
    uncoverable: Tuple[Fault, ...]


def greedy_cover(op_sets: Dict[Fault, Set[str]]) -> CoverResult:
    """Select observation points covering every recoverable fault."""
    uncoverable = tuple(sorted(f for f, lines in op_sets.items() if not lines))
    remaining: Set[Fault] = {f for f, lines in op_sets.items() if lines}

    # Invert: line -> faults it would recover.
    line_covers: Dict[str, Set[Fault]] = {}
    for fault, lines in op_sets.items():
        for line in lines:
            line_covers.setdefault(line, set()).add(fault)

    chosen: List[str] = []
    covered: Set[Fault] = set()
    while remaining:
        best_line = max(
            sorted(line_covers),
            key=lambda g: len(line_covers[g] & remaining),
        )
        gain = line_covers[best_line] & remaining
        if not gain:  # pragma: no cover — remaining faults always have lines
            break
        chosen.append(best_line)
        covered |= gain
        remaining -= gain
    return CoverResult(
        lines=tuple(chosen),
        covered=tuple(sorted(covered)),
        uncoverable=uncoverable,
    )
