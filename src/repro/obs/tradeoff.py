"""The observation-point tradeoff sweep (Tables 7-16).

For every prefix size ``k`` of the greedy assignment order, the sweep
reports the paper's row: number of sequences (``seq``), subsequences
(``sub``), longest subsequence (``len``), fault efficiency before
observation points (``f.e.``), observation points added (``obs``), and
fault efficiency with them (final ``f.e.``).

Fault efficiency is the paper's definition: faults detected by
``Ω_lim`` divided by faults detected by ``Ω`` (the full target set,
since ``Ω`` covers it by construction), in percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.circuit.netlist import Circuit
from repro.core.procedure import ProcedureResult
from repro.core.weight import Weight
from repro.obs.cover import greedy_cover
from repro.obs.oppoints import compute_op_sets
from repro.obs.selection import greedy_select
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.trace import traced
from repro.util.tables import format_table


@dataclass(frozen=True)
class TradeoffRow:
    """One row of a Table 7-16 style tradeoff table.

    Attributes
    ----------
    n_sequences / n_subsequences / max_length:
        Size of ``Ω_lim`` (the ``seq`` / ``sub`` / ``len`` columns).
    fault_efficiency:
        Percent of target faults ``Ω_lim`` detects at the POs.
    n_observation_points:
        Observation points the covering procedure added (``obs``).
    fault_efficiency_with_obs:
        Percent detected once those points are observed (final
        ``f.e.``; can stay below 100 when some faults' effects never
        reach any line).
    observation_points:
        The selected lines themselves.
    """

    n_sequences: int
    n_subsequences: int
    max_length: int
    fault_efficiency: float
    n_observation_points: int
    fault_efficiency_with_obs: float
    observation_points: tuple[str, ...]


def observation_point_tradeoff(
    circuit: Circuit,
    procedure: ProcedureResult,
    max_prefix: int | None = None,
    stop_at_full: bool = True,
    compiled: CompiledCircuit | None = None,
    runtime=None,
) -> List[TradeoffRow]:
    """Run the Section-5 observation-point experiment.

    Parameters
    ----------
    circuit:
        The circuit under test.
    procedure:
        The completed selection procedure (its ``Ω``, *before*
        reverse-order simulation, is the pick pool — as in the paper).
    max_prefix:
        Largest ``Ω_lim`` size to evaluate (default: the full greedy
        order).
    stop_at_full:
        Stop after the first row achieving 100% fault efficiency
        without observation points (the tables' last row).
    compiled:
        Optional pre-compiled circuit to reuse.
    runtime:
        Optional :class:`~repro.runtime.context.RuntimeContext` for
        cached / parallel fault simulation.
    """
    comp = compiled or compile_circuit(circuit)
    with traced(runtime, "greedy_select", circuit=circuit.name):
        picks = greedy_select(circuit, procedure, comp, runtime=runtime)
    if max_prefix is not None:
        picks = picks[:max_prefix]
    n_targets = len(procedure.target_faults)
    if not n_targets:
        return []

    rows: List[TradeoffRow] = []
    covered: Set[Fault] = set()
    for k, pick in enumerate(picks, start=1):
        covered |= set(pick.new_faults)
        assignments = [p.assignment for p in picks[:k]]
        undetected = [f for f in procedure.target_faults if f not in covered]
        fe = 100.0 * len(covered) / n_targets

        with traced(runtime, "tradeoff_row", k=k, undetected=len(undetected)):
            if undetected:
                with traced(runtime, "op_sets", k=k):
                    op_sets = compute_op_sets(
                        circuit,
                        assignments,
                        undetected,
                        procedure.l_g,
                        compiled=comp,
                        runtime=runtime,
                    )
                cover = greedy_cover(op_sets)
                n_obs = len(cover.lines)
                fe_obs = (
                    100.0 * (len(covered) + len(cover.covered)) / n_targets
                )
                obs_lines = cover.lines
            else:
                n_obs = 0
                fe_obs = 100.0
                obs_lines = ()

            distinct: Set[Weight] = set()
            for assignment in assignments:
                distinct.update(assignment.deterministic_weights())

            rows.append(
                TradeoffRow(
                    n_sequences=k,
                    n_subsequences=len(distinct),
                    max_length=max((w.length for w in distinct), default=0),
                    fault_efficiency=fe,
                    n_observation_points=n_obs,
                    fault_efficiency_with_obs=fe_obs,
                    observation_points=obs_lines,
                )
            )
        if stop_at_full and not undetected:
            break
    return rows


def format_tradeoff(circuit_name: str, rows: Sequence[TradeoffRow]) -> str:
    """Render rows in the paper's Tables 7-16 layout."""
    headers = ["circuit", "seq", "sub", "len", "f.e.", "obs", "f.e."]
    body = []
    for i, row in enumerate(rows):
        body.append(
            [
                circuit_name if i == 0 else "",
                row.n_sequences,
                row.n_subsequences,
                row.max_length,
                f"{row.fault_efficiency:.1f}",
                row.n_observation_points,
                f"{row.fault_efficiency_with_obs:.1f}",
            ]
        )
    return format_table(
        headers, body, title=f"Observation point insertion for {circuit_name}"
    )
