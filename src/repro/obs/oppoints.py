"""Computation of the observation-point candidate sets ``OP(f)``.

For every fault ``f`` left undetected by ``Ω_lim``'s weighted
sequences, ``OP(f)`` is the set of lines ``g`` such that adding an
observation point on ``g`` would detect ``f`` under one of those
sequences — i.e. the lines where ``f``'s machine holds the binary
complement of a binary fault-free value at some time unit.  The fault
simulator records exactly this when line recording is on.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator
from repro.util.rng import DeterministicRng


def compute_op_sets(
    circuit: Circuit,
    assignments: Sequence[WeightAssignment],
    faults: Sequence[Fault],
    l_g: int,
    rngs: Sequence[DeterministicRng | None] | None = None,
    compiled: CompiledCircuit | None = None,
    runtime=None,
) -> Dict[Fault, Set[str]]:
    """Compute ``OP(f)`` for every fault of ``faults`` under the
    weighted sequences of ``assignments``.

    Parameters
    ----------
    circuit:
        The circuit under test.
    assignments:
        The limited assignment set ``Ω_lim``.
    faults:
        The faults not detected by ``Ω_lim`` at the primary outputs.
    l_g:
        Length of each weighted sequence.
    rngs:
        Optional per-assignment rngs (needed only for pseudo-random
        weights); aligned with ``assignments``.
    compiled:
        Optional pre-compiled circuit to reuse.
    runtime:
        Optional :class:`~repro.runtime.context.RuntimeContext` for
        cached / parallel fault simulation.

    Returns
    -------
    ``fault → set of line names``.  A fault whose effect never reaches
    any line under any sequence maps to the empty set (no observation
    point can recover it; the paper's fault efficiency then saturates
    below 100%).
    """
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp, runtime=runtime)
    op_sets: Dict[Fault, Set[str]] = {f: set() for f in faults}
    for k, assignment in enumerate(assignments):
        rng = rngs[k] if rngs is not None else None
        t_g = assignment.generate(l_g, rng)
        result = sim.run(t_g.patterns, list(faults), record_lines=True)
        for fault, lines in result.lines.items():
            op_sets[fault].update(lines)
    return op_sets
