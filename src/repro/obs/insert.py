"""Physical insertion of observation points into a netlist.

The analysis in :mod:`repro.obs.oppoints` chooses *lines*; this module
applies them — producing a circuit whose primary outputs include the
chosen lines (optionally buffered, the way a real observation point
adds a sink without disturbing the observed net's fanout).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError


def insert_observation_points(
    circuit: Circuit,
    lines: Iterable[str],
    buffered: bool = True,
    prefix: str = "obs",
) -> Circuit:
    """Return a copy of ``circuit`` observing the given ``lines``.

    Parameters
    ----------
    circuit:
        The original circuit (unchanged).
    lines:
        Net names to observe.  Lines that are already primary outputs
        are skipped.
    buffered:
        Insert a buffer per observation point (named
        ``<prefix>_<line>``) so the new PO is a distinct net — matches
        how a physical observation point taps a wire.  When False the
        lines are appended to the output list directly.
    prefix:
        Name prefix for the buffer nets.

    Raises
    ------
    NetlistError
        If a line does not exist.
    """
    existing_outputs = set(circuit.outputs)
    gates: List[Gate] = list(circuit.gates.values())
    outputs: List[str] = list(circuit.outputs)
    taken = set(circuit.gates)

    for line in lines:
        if line not in circuit:
            raise NetlistError(f"cannot observe unknown net {line!r}")
        if line in existing_outputs:
            continue
        if buffered:
            name = f"{prefix}_{line}"
            if name in taken:
                raise NetlistError(f"observation net {name!r} collides")
            gates.append(Gate(name, GateType.BUF, (line,)))
            taken.add(name)
            outputs.append(name)
        else:
            outputs.append(line)
        existing_outputs.add(line)

    return Circuit(f"{circuit.name}_obs", gates, outputs)
