"""Greedy selection of limited assignment sets ``Ω_lim`` (Section 5).

The paper's observation-point experiment does not reuse reverse-order
simulation; it picks assignments out of ``Ω`` greedily — "we select the
weight assignment that detects the largest number of faults out of F"
— repeating until all target faults are covered.  The full greedy order
is computed once; every prefix of it is an ``Ω_lim``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.assignment import WeightAssignment
from repro.core.procedure import ProcedureResult
from repro.sim.compile import CompiledCircuit, compile_circuit
from repro.sim.faults import Fault
from repro.sim.faultsim import FaultSimulator


@dataclass(frozen=True)
class GreedyPick:
    """One greedy pick.

    Attributes
    ----------
    assignment:
        The picked weight assignment.
    new_faults:
        Target faults it covered that earlier picks had not.
    cumulative_detected:
        Total target faults covered after this pick.
    """

    assignment: WeightAssignment
    new_faults: Tuple[Fault, ...]
    cumulative_detected: int


def greedy_select(
    circuit: Circuit,
    procedure: ProcedureResult,
    compiled: CompiledCircuit | None = None,
    runtime=None,
) -> List[GreedyPick]:
    """Order ``Ω`` greedily by marginal fault coverage.

    Each assignment's weighted sequence is fault-simulated once against
    the full target set; the greedy loop then works on the cached
    detection sets.  The returned order covers every target fault (``Ω``
    does by construction).  ``runtime`` optionally plugs the simulator
    into the artifact cache / worker pool.
    """
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp, runtime=runtime)
    targets = list(procedure.target_faults)

    detection_sets: List[Set[Fault]] = []
    for index, entry in enumerate(procedure.omega):
        rng = (
            procedure.generation_rng(index)
            if entry.assignment.has_random
            else None
        )
        t_g = entry.assignment.generate(procedure.l_g, rng)
        detected = set(sim.run(t_g.patterns, targets).detection_time)
        detection_sets.append(detected)

    picks: List[GreedyPick] = []
    covered: Set[Fault] = set()
    available = list(range(len(procedure.omega)))
    while len(covered) < len(targets) and available:
        best_index = max(
            available, key=lambda k: (len(detection_sets[k] - covered), -k)
        )
        gain = detection_sets[best_index] - covered
        if not gain:
            break
        covered |= gain
        available.remove(best_index)
        picks.append(
            GreedyPick(
                assignment=procedure.omega[best_index].assignment,
                new_faults=tuple(sorted(gain)),
                cumulative_detected=len(covered),
            )
        )
    return picks


def detection_sets_by_pick(
    circuit: Circuit,
    procedure: ProcedureResult,
    picks: List[GreedyPick],
    compiled: CompiledCircuit | None = None,
) -> Dict[int, Set[Fault]]:
    """Faults detected by each pick's sequence against the full target
    set (prefix-cumulative sets are unions of these)."""
    comp = compiled or compile_circuit(circuit)
    sim = FaultSimulator(circuit, comp)
    targets = list(procedure.target_faults)
    out: Dict[int, Set[Fault]] = {}
    for k, pick in enumerate(picks):
        t_g = pick.assignment.generate(procedure.l_g)
        out[k] = set(sim.run(t_g.patterns, targets).detection_time)
    return out
