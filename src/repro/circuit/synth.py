"""Deterministic synthetic sequential circuit generation.

The paper evaluates on the ISCAS-89 benchmark suite, which we cannot
redistribute here beyond the tiny ``s27`` (whose full netlist is public
in countless papers, including the reproduced one).  This module builds
*stand-in* circuits with the same interface dimensions (PI / PO / DFF
counts) and comparable combinational gate counts.  Generation is fully
deterministic in the seed, so experiments are reproducible bit-for-bit.

Construction recipe
-------------------
1. Sources are the primary inputs and flip-flop outputs.
2. Combinational gates are created in sequence; each draws a gate type
   from a mix matching typical ISCAS profiles (heavy on NAND/NOR/AND/OR
   with some inverters and a little XOR) and draws fanins biased toward
   recently created nets, which produces realistic logic depth instead
   of a flat soup.
3. Each flip-flop's next-state function taps a distinct late gate, which
   closes sequential feedback loops through the state.
4. Primary outputs tap late gates; any net left with zero fanout is
   folded into an XOR observer tree that feeds one extra output, so no
   logic is structurally unobservable (which would make its faults
   trivially untestable and distort coverage statistics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.util.rng import DeterministicRng

#: Gate-type mix used during generation: (type, weight, max_arity).
_GATE_MIX = (
    (GateType.NAND, 5, 3),
    (GateType.NOR, 4, 3),
    (GateType.AND, 4, 4),
    (GateType.OR, 4, 4),
    (GateType.NOT, 4, 1),
    (GateType.XOR, 2, 2),
    (GateType.BUF, 1, 1),
)


@dataclass(frozen=True)
class SynthSpec:
    """Interface and size parameters for a synthetic circuit.

    Attributes
    ----------
    name:
        Circuit name.
    n_pi / n_po / n_ff:
        Primary input / output / flip-flop counts.
    n_gates:
        Combinational gate count (excluding the observer tree).
    seed:
        Seed for the deterministic generator.
    """

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    seed: int = 1


def synthesize(spec: SynthSpec) -> Circuit:
    """Build a synthetic sequential circuit from ``spec``.

    The result is a valid :class:`Circuit`: no dangling logic, all
    flip-flops participate in feedback, and the combinational core is a
    DAG by construction.
    """
    if spec.n_pi < 1 or spec.n_po < 1:
        raise ValueError("need at least one primary input and output")
    if spec.n_gates < max(spec.n_ff, spec.n_po, 2):
        raise ValueError("n_gates must cover flip-flop and output taps")

    rng = DeterministicRng(spec.seed)
    builder = CircuitBuilder(spec.name)

    pis = [builder.input(f"pi{i}") for i in range(spec.n_pi)]
    ff_outs = [f"ff{i}" for i in range(spec.n_ff)]
    # Nets eligible as fanins; flip-flop outputs are usable immediately
    # (their drivers are declared at the end, order does not matter).
    pool: list[str] = list(pis) + list(ff_outs)

    gate_names: list[str] = []
    types, weights, arities = zip(*_GATE_MIX)
    cumulative: list[int] = []
    total = 0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def draw_type() -> tuple[GateType, int]:
        point = rng.randint(1, total)
        for idx, bound in enumerate(cumulative):
            if point <= bound:
                return types[idx], arities[idx]
        raise AssertionError("unreachable")

    def draw_fanin() -> str:
        # Bias toward the most recent quarter of the pool to build depth.
        if len(pool) > 8 and rng.random() < 0.6:
            lo = max(0, len(pool) - max(8, len(pool) // 4))
            return pool[rng.randint(lo, len(pool) - 1)]
        return pool[rng.randint(0, len(pool) - 1)]

    for g in range(spec.n_gates):
        gtype, max_arity = draw_type()
        arity = 1 if max_arity == 1 else rng.randint(2, max_arity)
        fanins: list[str] = []
        for _ in range(arity):
            fanin = draw_fanin()
            # Avoid duplicate pins on one gate; retry a few times.
            for _retry in range(4):
                if fanin not in fanins:
                    break
                fanin = draw_fanin()
            fanins.append(fanin)
        name = f"n{g}"
        builder.gate(name, gtype, *fanins)
        gate_names.append(name)
        pool.append(name)

    # Flip-flop next states: tap distinct gates from the late half, each
    # gated with a primary input through an AND/OR gate.  The controlling
    # value of that gate initializes the flip-flop from the all-X
    # power-up state within one cycle — without this, X can persist in
    # the feedback loops forever and no fault is ever observable.
    half = len(gate_names) // 2
    candidates = gate_names[half:] if half else list(gate_names)
    taps = _distinct_taps(candidates, spec.n_ff, rng)
    used: set[str] = set()
    for ff_name, tap in zip(ff_outs, taps):
        gate_type = GateType.AND if rng.bit() else GateType.OR
        init_pi = pis[rng.randint(0, len(pis) - 1)]
        d_net = builder.gate(f"{ff_name}_d", gate_type, tap, init_pi)
        builder.dff(ff_name, d_net)
        used.add(tap)
        used.add(d_net)

    # Primary outputs: distinct late gates not already next-state taps
    # when possible.
    po_candidates = [g for g in gate_names[half:] if g not in used] or gate_names
    po_taps = _distinct_taps(po_candidates, spec.n_po, rng)
    for tap in po_taps:
        used.add(tap)

    # Observer tree over dangling nets: every net must reach a PO or DFF.
    fanned = _fanned_nets(builder)
    dangling = [
        g for g in gate_names if g not in fanned and g not in used
    ]
    observer = _xor_observer(builder, dangling, rng)
    for tap in po_taps:
        builder.output(tap)
    if observer is not None:
        builder.output(observer)
    return builder.build()


def _distinct_taps(candidates: list[str], count: int, rng: DeterministicRng) -> list[str]:
    """Pick ``count`` taps, distinct while candidates last, then cycling."""
    if not candidates:
        raise ValueError("no candidate nets to tap")
    if count <= len(candidates):
        return rng.sample(candidates, count)
    taps = list(candidates)
    while len(taps) < count:
        taps.append(rng.choice(candidates))
    return taps


def _fanned_nets(builder: CircuitBuilder) -> set[str]:
    """Nets referenced as a fanin by any gate declared so far."""
    fanned: set[str] = set()
    for gate in builder._gates:  # noqa: SLF001 — intra-package helper
        fanned.update(gate.fanins)
    return fanned


def _xor_observer(
    builder: CircuitBuilder, dangling: list[str], rng: DeterministicRng
) -> str | None:
    """Fold ``dangling`` nets into an XOR tree; return its root net.

    XOR propagates any single fault effect on its inputs, so the tree
    makes every folded net observable without masking.
    """
    if not dangling:
        return None
    if len(dangling) == 1:
        name = "obs_root"
        builder.buf(name, dangling[0])
        return name
    layer = list(dangling)
    counter = 0
    while len(layer) > 1:
        next_layer: list[str] = []
        for i in range(0, len(layer) - 1, 2):
            name = f"obs{counter}"
            counter += 1
            builder.xor(name, layer[i], layer[i + 1])
            next_layer.append(name)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
    return layer[0]
