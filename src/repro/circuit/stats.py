"""Circuit statistics, as reported in experiment tables and logs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Summary counts for a circuit.

    Attributes
    ----------
    name:
        Circuit name.
    n_pi / n_po / n_ff:
        Primary input / output / flip-flop counts.
    n_gates:
        Combinational gate count.
    n_nets:
        Total driven nets (sources + gates).
    depth:
        Maximum combinational level.
    gate_mix:
        Count of each combinational gate type present.
    """

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    n_nets: int
    depth: int
    gate_mix: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        """One-line human-readable summary."""
        mix = ", ".join(f"{t}:{c}" for t, c in self.gate_mix)
        return (
            f"{self.name}: {self.n_pi} PI, {self.n_po} PO, {self.n_ff} DFF, "
            f"{self.n_gates} gates (depth {self.depth}; {mix})"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for ``circuit``."""
    mix: dict[str, int] = {}
    for net in circuit.combinational_order:
        gtype = circuit.gate(net).gtype
        mix[gtype.value] = mix.get(gtype.value, 0) + 1
    return CircuitStats(
        name=circuit.name,
        n_pi=len(circuit.inputs),
        n_po=len(circuit.outputs),
        n_ff=len(circuit.flops),
        n_gates=circuit.num_gates(combinational_only=True),
        n_nets=len(circuit),
        depth=circuit.depth,
        gate_mix=tuple(sorted(mix.items())),
    )


def feedback_flops(circuit: Circuit) -> tuple[str, ...]:
    """Flip-flops whose next-state cone (transitively) includes any
    flip-flop output — i.e. state bits involved in sequential feedback."""
    involved: list[str] = []
    flop_set = set(circuit.flops)
    for flop in circuit.flops:
        frontier = [circuit.gate(flop).fanins[0]]
        seen: set[str] = set()
        found = False
        while frontier and not found:
            net = frontier.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in flop_set:
                found = True
                break
            gate = circuit.gate(net)
            if gate.gtype is not GateType.INPUT:
                frontier.extend(gate.fanins)
        if found:
            involved.append(flop)
    return tuple(involved)
