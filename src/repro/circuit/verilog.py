"""Structural Verilog export.

Emits a synthesizable Verilog-2001 module for any
:class:`~repro.circuit.Circuit` — including synthesized TPGs and MISRs
— so the generated BIST hardware can be taken into a standard flow.
Flip-flops become a single always-block with a positive-edge clock
(added as an implicit ``clk`` port); everything else is continuous
assignments.
"""

from __future__ import annotations

import re
from typing import List

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

_OPERATORS = {
    GateType.AND: ("&", False),
    GateType.NAND: ("&", True),
    GateType.OR: ("|", False),
    GateType.NOR: ("|", True),
    GateType.XOR: ("^", False),
    GateType.XNOR: ("^", True),
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "posedge", "negedge", "if", "else", "case",
}


def _ident(name: str) -> str:
    """Make a net name a legal Verilog identifier (escaped if needed)."""
    if _ID_RE.match(name) and name not in _KEYWORDS:
        return name
    return f"\\{name} "  # escaped identifier (trailing space required)


def write_verilog(circuit: Circuit, clock: str = "clk") -> str:
    """Render ``circuit`` as a structural Verilog module.

    The module name is the circuit name; ports are the primary inputs,
    primary outputs, and (when the circuit has flip-flops) the added
    ``clock`` input.
    """
    if clock in circuit:
        raise NetlistError(
            f"clock name {clock!r} collides with an existing net"
        )
    has_flops = bool(circuit.flops)
    ports: List[str] = []
    if has_flops:
        ports.append(_ident(clock))
    ports.extend(_ident(n) for n in circuit.inputs)
    ports.extend(_ident(n) for n in circuit.outputs)

    lines = [f"module {_ident(circuit.name.replace('-', '_'))} ("]
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    if has_flops:
        lines.append(f"  input {_ident(clock)};")
    for net in circuit.inputs:
        lines.append(f"  input {_ident(net)};")
    for net in circuit.outputs:
        lines.append(f"  output {_ident(net)};")

    output_set = set(circuit.outputs)
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            continue
        kind = "reg" if gate.gtype is GateType.DFF else "wire"
        if net in output_set and kind == "wire":
            continue  # outputs already declared; wire is implicit
        lines.append(f"  {kind} {_ident(net)};")

    lines.append("")
    for net in circuit.combinational_order:
        gate = circuit.gate(net)
        lines.append(f"  assign {_ident(net)} = {_expression(gate)};")
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {_ident(net)} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {_ident(net)} = 1'b1;")

    if has_flops:
        lines.append("")
        lines.append(f"  always @(posedge {_ident(clock)}) begin")
        for net in circuit.flops:
            d_net = circuit.gate(net).fanins[0]
            lines.append(f"    {_ident(net)} <= {_ident(d_net)};")
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _expression(gate) -> str:
    operands = [_ident(f) for f in gate.fanins]
    if gate.gtype is GateType.NOT:
        return f"~{operands[0]}"
    if gate.gtype is GateType.BUF:
        return operands[0]
    operator, invert = _OPERATORS[gate.gtype]
    body = f" {operator} ".join(operands)
    if len(operands) > 1:
        body = f"({body})"
    return f"~{body}" if invert else body
