"""Programmatic circuit construction.

:class:`CircuitBuilder` accumulates gates and produces an immutable
:class:`~repro.circuit.netlist.Circuit`.  It is used by the bench parser,
the synthetic benchmark generator, and the TPG synthesizer, and is also
the intended way for library users to describe their own designs:

>>> b = CircuitBuilder("toggler")
>>> _ = b.input("en")
>>> _ = b.dff("q", "d")
>>> _ = b.xor("d", "q", "en")
>>> b.output("q")
>>> circuit = b.build()
>>> circuit.flops
('q',)
"""

from __future__ import annotations

from typing import List

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError


class CircuitBuilder:
    """Accumulates gates, then builds a validated :class:`Circuit`.

    Gates may be declared in any order; fanins may reference nets that
    are declared later.  All structural validation happens in
    :meth:`build`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._gates: List[Gate] = []
        self._names: set[str] = set()
        self._outputs: List[str] = []

    def _add(self, name: str, gtype: GateType, fanins: tuple[str, ...]) -> str:
        if name in self._names:
            raise NetlistError(f"net {name!r} already driven")
        self._gates.append(Gate(name, gtype, fanins))
        self._names.add(name)
        return name

    # -- sources --------------------------------------------------------

    def input(self, name: str) -> str:
        """Declare a primary input net."""
        return self._add(name, GateType.INPUT, ())

    def dff(self, name: str, next_state: str) -> str:
        """Declare a flip-flop whose output is ``name`` and whose
        next-state (D pin) is the net ``next_state``."""
        return self._add(name, GateType.DFF, (next_state,))

    def const0(self, name: str) -> str:
        """Declare a constant-0 net."""
        return self._add(name, GateType.CONST0, ())

    def const1(self, name: str) -> str:
        """Declare a constant-1 net."""
        return self._add(name, GateType.CONST1, ())

    # -- combinational gates ---------------------------------------------

    def gate(self, name: str, gtype: GateType, *fanins: str) -> str:
        """Declare a combinational gate of arbitrary type."""
        return self._add(name, gtype, tuple(fanins))

    def and_(self, name: str, *fanins: str) -> str:
        """Declare an AND gate."""
        return self._add(name, GateType.AND, tuple(fanins))

    def nand(self, name: str, *fanins: str) -> str:
        """Declare a NAND gate."""
        return self._add(name, GateType.NAND, tuple(fanins))

    def or_(self, name: str, *fanins: str) -> str:
        """Declare an OR gate."""
        return self._add(name, GateType.OR, tuple(fanins))

    def nor(self, name: str, *fanins: str) -> str:
        """Declare a NOR gate."""
        return self._add(name, GateType.NOR, tuple(fanins))

    def xor(self, name: str, *fanins: str) -> str:
        """Declare an XOR gate."""
        return self._add(name, GateType.XOR, tuple(fanins))

    def xnor(self, name: str, *fanins: str) -> str:
        """Declare an XNOR gate."""
        return self._add(name, GateType.XNOR, tuple(fanins))

    def not_(self, name: str, fanin: str) -> str:
        """Declare an inverter."""
        return self._add(name, GateType.NOT, (fanin,))

    def buf(self, name: str, fanin: str) -> str:
        """Declare a buffer."""
        return self._add(name, GateType.BUF, (fanin,))

    # -- outputs and build ------------------------------------------------

    def output(self, name: str) -> None:
        """Mark ``name`` as a primary output (may precede its driver)."""
        self._outputs.append(name)

    def build(self) -> Circuit:
        """Validate and return the immutable circuit."""
        return Circuit(self.name, self._gates, self._outputs)
