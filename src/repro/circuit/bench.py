"""ISCAS-89 ``.bench`` format reader and writer.

The ``.bench`` dialect accepted here is the one the ISCAS-89 benchmark
distribution uses::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)

Gate names are matched case-insensitively (``dff``/``DFF``); net names
are preserved verbatim.  ``OUTPUT`` lines may appear before the driver of
the named net.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.builder import CircuitBuilder
from repro.errors import BenchParseError

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z01]+)\s*\(\s*([^()]*)\s*\)$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench_gates(
    text: str,
) -> Tuple[List[Gate], List[str], Dict[str, int]]:
    """Parse ``.bench`` source into raw gates, without netlist validation.

    This is the low-level entry the lint subsystem uses: a structurally
    defective netlist (duplicate drivers, undriven nets, combinational
    cycles) still parses, so every defect can be *reported* instead of
    aborting on the first one.  :func:`parse_bench_text` remains the
    strict path that builds a validated :class:`Circuit`.

    Returns
    -------
    ``(gates, outputs, lines)`` where ``gates`` are in declaration order
    (duplicates preserved), ``outputs`` are the ``OUTPUT`` nets in order,
    and ``lines`` maps each net to the 1-based source line that first
    declared it.

    Raises
    ------
    BenchParseError
        On a malformed line, unknown gate type, or a fanin count the
        gate type cannot accept — defects below the structural level.
    """
    gates: List[Gate] = []
    outputs: List[str] = []
    lines: Dict[str, int] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                gates.append(Gate(net, GateType.INPUT, ()))
                lines.setdefault(net, line_no)
            else:
                outputs.append(net)
                lines.setdefault(net, line_no)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            net, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchParseError(f"unknown gate type {type_name!r}", line_no)
            fanins = tuple(a.strip() for a in arg_text.split(",") if a.strip())
            try:
                gates.append(Gate(net, gtype, fanins))
            except ValueError as exc:  # arity violation
                raise BenchParseError(str(exc), line_no) from exc
            lines[net] = line_no
            continue
        raise BenchParseError(f"unparseable line: {line!r}", line_no)
    return gates, outputs, lines


def parse_bench_text(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source from a string.

    Parameters
    ----------
    text:
        The bench source.
    name:
        Name for the resulting :class:`Circuit`.

    Raises
    ------
    BenchParseError
        On any malformed line or unknown gate type.
    """
    builder = CircuitBuilder(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                builder.input(net)
            else:
                builder.output(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            net, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchParseError(f"unknown gate type {type_name!r}", line_no)
            fanins = tuple(a.strip() for a in arg_text.split(",") if a.strip())
            try:
                builder.gate(net, gtype, *fanins)
            except Exception as exc:  # arity / duplicate-driver errors
                raise BenchParseError(str(exc), line_no) from exc
            continue
        raise BenchParseError(f"unparseable line: {line!r}", line_no)
    try:
        return builder.build()
    except Exception as exc:
        raise BenchParseError(f"invalid netlist: {exc}") from exc


def parse_bench(path: str | Path, name: str | None = None) -> Circuit:
    """Parse a ``.bench`` file from disk.

    The circuit name defaults to the file's stem.
    """
    path = Path(path)
    return parse_bench_text(path.read_text(), name or path.stem)


def write_bench(circuit: Circuit) -> str:
    """Render ``circuit`` as ``.bench`` source.

    The output round-trips through :func:`parse_bench_text` to an
    identical circuit (same gates, same port order).
    """
    lines: list[str] = [f"# {circuit.name}"]
    lines.extend(f"INPUT({net})" for net in circuit.inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.outputs)
    for net in circuit.flops:
        gate = circuit.gate(net)
        lines.append(f"{net} = DFF({gate.fanins[0]})")
    for net in circuit.combinational_order:
        gate = circuit.gate(net)
        lines.append(f"{net} = {gate.gtype.value}({', '.join(gate.fanins)})")
    for net, gate in circuit.gates.items():
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            lines.append(f"{net} = {gate.gtype.value}()")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: str | Path) -> None:
    """Write ``circuit`` to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench(circuit))
