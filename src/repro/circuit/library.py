"""Embedded benchmark circuits.

``s27`` is the genuine ISCAS-89 circuit (its complete netlist appears in
the reproduced paper's own running example and throughout the testing
literature).  The remaining entries are *synthetic stand-ins* named
``g<N>`` whose interface dimensions (PI / PO / DFF counts) match the
ISCAS-89 circuit ``s<N>`` the paper evaluates, with comparable
combinational gate counts.  See DESIGN.md §2 for why this substitution
preserves the paper's claims.
"""

from __future__ import annotations

from repro.circuit.bench import parse_bench_text
from repro.circuit.netlist import Circuit
from repro.circuit.synth import SynthSpec, synthesize
from repro.errors import ReproError

#: The genuine ISCAS-89 s27 netlist — 4 PIs, 1 PO, 3 DFFs, 10 gates.
S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

#: Synthetic stand-ins: interface sizes mirror the ISCAS-89 circuit of
#: the same number (PI / PO / DFF); gate counts are comparable.
_SYNTH_SPECS: dict[str, SynthSpec] = {
    spec.name: spec
    for spec in (
        SynthSpec("g208", n_pi=10, n_po=1, n_ff=8, n_gates=96, seed=208),
        SynthSpec("g298", n_pi=3, n_po=6, n_ff=14, n_gates=119, seed=298),
        SynthSpec("g344", n_pi=9, n_po=11, n_ff=15, n_gates=160, seed=344),
        SynthSpec("g382", n_pi=3, n_po=6, n_ff=21, n_gates=158, seed=382),
        SynthSpec("g386", n_pi=7, n_po=7, n_ff=6, n_gates=159, seed=386),
        SynthSpec("g400", n_pi=3, n_po=6, n_ff=21, n_gates=162, seed=400),
        SynthSpec("g420", n_pi=18, n_po=1, n_ff=16, n_gates=196, seed=420),
        SynthSpec("g444", n_pi=3, n_po=6, n_ff=21, n_gates=181, seed=444),
        SynthSpec("g526", n_pi=3, n_po=6, n_ff=21, n_gates=193, seed=526),
        SynthSpec("g641", n_pi=35, n_po=24, n_ff=19, n_gates=379, seed=641),
        SynthSpec("g820", n_pi=18, n_po=19, n_ff=5, n_gates=289, seed=820),
        SynthSpec("g1196", n_pi=14, n_po=14, n_ff=18, n_gates=529, seed=1196),
        SynthSpec("g1423", n_pi=17, n_po=5, n_ff=74, n_gates=657, seed=1423),
        SynthSpec("g1488", n_pi=8, n_po=19, n_ff=6, n_gates=653, seed=1488),
    )
}

_CACHE: dict[str, Circuit] = {}


def available_circuits() -> tuple[str, ...]:
    """Names of every circuit the library can load."""
    return ("s27",) + tuple(sorted(_SYNTH_SPECS, key=lambda n: int(n[1:])))


def load_circuit(name: str) -> Circuit:
    """Load a benchmark circuit by name.

    ``"s27"`` returns the genuine ISCAS-89 circuit; ``"g<N>"`` returns
    the synthetic stand-in for ISCAS-89 ``s<N>``.  Results are cached —
    circuits are immutable, so sharing is safe.

    Raises
    ------
    ReproError
        If ``name`` is unknown.
    """
    if name in _CACHE:
        return _CACHE[name]
    if name == "s27":
        circuit = parse_bench_text(S27_BENCH, "s27")
    elif name in _SYNTH_SPECS:
        circuit = synthesize(_SYNTH_SPECS[name])
    else:
        raise ReproError(
            f"unknown circuit {name!r}; available: {', '.join(available_circuits())}"
        )
    _CACHE[name] = circuit
    return circuit


def synth_spec(name: str) -> SynthSpec:
    """Return the generation spec of a synthetic circuit.

    Raises :class:`ReproError` for ``s27`` or unknown names.
    """
    try:
        return _SYNTH_SPECS[name]
    except KeyError:
        raise ReproError(f"no synthetic spec for {name!r}") from None
