"""The :class:`Circuit` netlist graph.

A circuit is a set of named nets, each driven by exactly one
:class:`~repro.circuit.gates.Gate`.  Synchronous sequential semantics
follow the ISCAS-89 convention:

* ``INPUT`` nets are primary inputs, assigned a fresh value every cycle.
* ``DFF`` nets are flip-flop outputs (the present state); the DFF's
  single fanin is its next-state net, sampled at the end of each cycle.
* All other gates are combinational and must form a DAG once flip-flop
  outputs are cut.
* Primary outputs are a designated subset of nets.

The class exposes the structural queries every later stage relies on:
fanout maps, a levelized combinational evaluation order, and reachability
helpers.  It is immutable after construction (build with
:class:`~repro.circuit.builder.CircuitBuilder` or the bench parser).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from repro.circuit.gates import Gate, GateType
from repro.errors import NetlistError

#: Net names shown per strongly connected component in cycle errors
#: before falling back to an explicit "… and N more" tail.
MAX_SCC_NETS_IN_ERROR = 64


def combinational_sccs(gates: Mapping[str, Gate]) -> List[Tuple[str, ...]]:
    """Strongly connected components of the combinational subgraph.

    Only components that actually form cycles are returned: size >= 2,
    or a single gate feeding back into itself.  Members are sorted
    within each component and components are sorted among themselves,
    so the result is deterministic regardless of mapping order.

    Iterative Tarjan — combinational loops produced by generators or
    malformed netlists can be far deeper than Python's recursion limit.
    """
    comb = {n: g for n, g in gates.items() if g.gtype.is_combinational}

    def successors(name: str) -> List[str]:
        return [f for f in comb[name].fanins if f in comb]

    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = 0
    for root in sorted(comb):
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(successors(root)))]
        while work:
            node, edges = work[-1]
            pushed = False
            for succ in edges:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    pushed = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in successors(node):
                    sccs.append(tuple(sorted(component)))
    sccs.sort()
    return sccs


def format_cycle_error(
    sccs: Sequence[Tuple[str, ...]], fallback_nets: Sequence[str]
) -> str:
    """Render a combinational-cycle error listing whole SCCs.

    Every component is reported with its full membership up to
    :data:`MAX_SCC_NETS_IN_ERROR` names, then an explicit
    ``… and N more`` tail — large loops stay debuggable instead of
    being silently truncated.  ``fallback_nets`` is used when no SCC
    was isolated (it should not happen, but an error message must
    never come out empty).
    """
    if not sccs:
        return (
            "combinational cycle involving nets: "
            + ", ".join(fallback_nets)
        )
    parts = []
    for component in sccs:
        shown = component[:MAX_SCC_NETS_IN_ERROR]
        text = ", ".join(shown)
        if len(component) > len(shown):
            text += f", … and {len(component) - len(shown)} more"
        parts.append(f"[{len(component)} nets: {text}]")
    noun = "component" if len(sccs) == 1 else "components"
    return (
        f"combinational cycle: {len(sccs)} strongly connected "
        f"{noun}: " + "; ".join(parts)
    )


class Circuit:
    """An immutable gate-level synchronous sequential circuit.

    Parameters
    ----------
    name:
        Circuit name (e.g. ``"s27"``).
    gates:
        All gates, including ``INPUT`` and ``DFF`` nodes.  Each gate
        drives the net bearing its name; names must be unique.
    outputs:
        Names of primary output nets, in order.

    Raises
    ------
    NetlistError
        If a fanin is undriven, a name is duplicated, an output is
        undriven, or the combinational core contains a cycle.
    """

    def __init__(self, name: str, gates: Iterable[Gate], outputs: Sequence[str]) -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self._gates:
                raise NetlistError(f"duplicate driver for net {gate.name!r}")
            self._gates[gate.name] = gate
        self._outputs: Tuple[str, ...] = tuple(outputs)
        self._inputs: Tuple[str, ...] = tuple(
            g.name for g in self._gates.values() if g.gtype is GateType.INPUT
        )
        self._flops: Tuple[str, ...] = tuple(
            g.name for g in self._gates.values() if g.gtype is GateType.DFF
        )
        self._validate_references()
        self._fanouts = self._build_fanouts()
        self._comb_order = self._levelize()
        self._levels = self._compute_levels()

    # ------------------------------------------------------------------
    # Construction-time checks
    # ------------------------------------------------------------------

    def _validate_references(self) -> None:
        for gate in self._gates.values():
            for fanin in gate.fanins:
                if fanin not in self._gates:
                    raise NetlistError(
                        f"gate {gate.name!r} references undriven net {fanin!r}"
                    )
        for out in self._outputs:
            if out not in self._gates:
                raise NetlistError(f"primary output {out!r} is not driven")
        seen: set[str] = set()
        for out in self._outputs:
            if out in seen:
                raise NetlistError(f"primary output {out!r} listed twice")
            seen.add(out)

    def _build_fanouts(self) -> Dict[str, Tuple[Tuple[str, int], ...]]:
        fanouts: Dict[str, List[Tuple[str, int]]] = {name: [] for name in self._gates}
        for gate in self._gates.values():
            for pin, fanin in enumerate(gate.fanins):
                fanouts[fanin].append((gate.name, pin))
        return {name: tuple(sinks) for name, sinks in fanouts.items()}

    def _levelize(self) -> Tuple[str, ...]:
        """Topologically order the combinational gates.

        Sources (inputs, flip-flop outputs, constants) are not included;
        they are available before combinational evaluation begins.
        Raises :class:`NetlistError` on a combinational cycle.
        """
        pending: Dict[str, int] = {}
        for gate in self._gates.values():
            if not gate.gtype.is_combinational:
                continue
            count = sum(
                1 for f in gate.fanins if self._gates[f].gtype.is_combinational
            )
            pending[gate.name] = count
        ready = [name for name, count in pending.items() if count == 0]
        # Sort for determinism: evaluation order must not depend on dict order.
        ready.sort()
        order: List[str] = []
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            next_ready = []
            for sink, _pin in self._fanouts[name]:
                if sink in pending and self._gates[sink].gtype.is_combinational:
                    pending[sink] -= 1
                    if pending[sink] == 0:
                        next_ready.append(sink)
            ready.extend(sorted(next_ready))
        if len(order) != len(pending):
            stuck = sorted(set(pending) - set(order))
            sccs = combinational_sccs(
                {name: self._gates[name] for name in stuck}
            )
            raise NetlistError(format_cycle_error(sccs, stuck))
        return tuple(order)

    def _compute_levels(self) -> Dict[str, int]:
        levels: Dict[str, int] = {}
        for gate in self._gates.values():
            if gate.gtype.is_source:
                levels[gate.name] = 0
        for name in self._comb_order:
            gate = self._gates[name]
            levels[name] = 1 + max(levels[f] for f in gate.fanins)
        return levels

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input nets, in declaration order."""
        return self._inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output nets, in declaration order."""
        return self._outputs

    @property
    def flops(self) -> Tuple[str, ...]:
        """Flip-flop output nets (present-state lines)."""
        return self._flops

    @property
    def gates(self) -> Mapping[str, Gate]:
        """All gates, keyed by the net they drive."""
        return self._gates

    @property
    def combinational_order(self) -> Tuple[str, ...]:
        """Combinational gates in a valid evaluation order."""
        return self._comb_order

    @property
    def nets(self) -> Tuple[str, ...]:
        """Every net name: sources first, then combinational order."""
        sources = tuple(
            sorted(n for n, g in self._gates.items() if g.gtype.is_source)
        )
        return sources + self._comb_order

    def gate(self, name: str) -> Gate:
        """Return the gate driving ``name``."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def fanout(self, name: str) -> Tuple[Tuple[str, int], ...]:
        """Return the sinks of net ``name`` as ``(gate, pin)`` pairs."""
        try:
            return self._fanouts[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def fanout_count(self, name: str) -> int:
        """Number of gate pins the net ``name`` drives."""
        return len(self.fanout(name))

    def level(self, name: str) -> int:
        """Combinational depth of ``name`` (0 for sources)."""
        try:
            return self._levels[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    @property
    def depth(self) -> int:
        """Maximum combinational level in the circuit."""
        return max(self._levels.values()) if self._levels else 0

    def num_gates(self, combinational_only: bool = False) -> int:
        """Gate count; optionally only combinational gates."""
        if combinational_only:
            return len(self._comb_order)
        return len(self._gates)

    def is_output(self, name: str) -> bool:
        """True if ``name`` is a primary output."""
        return name in set(self._outputs)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}: {len(self._inputs)} PIs, "
            f"{len(self._outputs)} POs, {len(self._flops)} DFFs, "
            f"{len(self._comb_order)} gates)"
        )
