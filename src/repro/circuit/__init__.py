"""Gate-level netlist intermediate representation.

This package is the structural substrate of the reproduction: a small,
validated gate-level IR for synchronous sequential circuits in the style
of the ISCAS-89 benchmarks — primary inputs, primary outputs, D
flip-flops, and a combinational core of basic gates.

Public surface:

* :class:`~repro.circuit.gates.GateType` and
  :class:`~repro.circuit.gates.Gate` — gate vocabulary.
* :class:`~repro.circuit.netlist.Circuit` — the netlist graph with
  levelization and structural queries.
* :class:`~repro.circuit.builder.CircuitBuilder` — ergonomic programmatic
  construction.
* :func:`~repro.circuit.bench.parse_bench` /
  :func:`~repro.circuit.bench.write_bench` — ISCAS-89 ``.bench`` I/O.
* :func:`~repro.circuit.library.load_circuit` — embedded benchmark
  circuits (``s27`` plus synthetic stand-ins for the larger ISCAS-89
  circuits used by the paper).
"""

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.builder import CircuitBuilder
from repro.circuit.bench import parse_bench, parse_bench_text, write_bench
from repro.circuit.verilog import write_verilog
from repro.circuit.library import available_circuits, load_circuit
from repro.circuit.stats import CircuitStats, circuit_stats

__all__ = [
    "write_verilog",
    "Gate",
    "GateType",
    "Circuit",
    "CircuitBuilder",
    "parse_bench",
    "parse_bench_text",
    "write_bench",
    "available_circuits",
    "load_circuit",
    "CircuitStats",
    "circuit_stats",
]
