"""Gate vocabulary for the netlist IR.

The gate set mirrors what the ISCAS-89 ``.bench`` format uses: the basic
combinational gates, buffers/inverters, D flip-flops, and constants.
Evaluation semantics (including the 3-valued extension) live in
:mod:`repro.sim`; this module only defines structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class GateType(enum.Enum):
    """The kinds of netlist nodes the IR supports."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_combinational(self) -> bool:
        """True for gates evaluated inside a clock cycle."""
        return self not in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)

    @property
    def is_source(self) -> bool:
        """True for nodes that begin a combinational evaluation (no
        combinational fanin): primary inputs, flip-flop outputs and
        constants."""
        return self in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)

    @property
    def is_inverting(self) -> bool:
        """True for gates whose output inverts the natural function
        (NAND/NOR/XNOR/NOT)."""
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)


#: Allowed fanin counts: (minimum, maximum or None for unbounded).
_ARITY: dict[GateType, Tuple[int, int | None]] = {
    GateType.INPUT: (0, 0),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.DFF: (1, 1),
    GateType.AND: (1, None),
    GateType.NAND: (1, None),
    GateType.OR: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (2, None),
    GateType.XNOR: (2, None),
}


def arity_bounds(gtype: GateType) -> Tuple[int, int | None]:
    """Return the (min, max) fanin count for ``gtype``.

    ``max`` is ``None`` for gates accepting any number of inputs.
    """
    return _ARITY[gtype]


@dataclass(frozen=True)
class Gate:
    """One netlist node: a named output net driven by a typed function.

    Attributes
    ----------
    name:
        The net this gate drives.  Net names are unique in a circuit.
    gtype:
        The gate's function.
    fanins:
        Names of the driving nets, in pin order.  Pin order matters for
        fault modelling (branch faults are identified by ``(gate, pin)``).
    """

    name: str
    gtype: GateType
    fanins: Tuple[str, ...]

    def __post_init__(self) -> None:
        lo, hi = arity_bounds(self.gtype)
        n = len(self.fanins)
        if n < lo or (hi is not None and n > hi):
            raise ValueError(
                f"gate {self.name!r}: {self.gtype.value} accepts "
                f"{lo}..{hi if hi is not None else 'inf'} fanins, got {n}"
            )

    @property
    def arity(self) -> int:
        """Number of fanin pins."""
        return len(self.fanins)

    def describe(self) -> str:
        """Human-readable one-line description, bench-like."""
        if self.gtype is GateType.INPUT:
            return f"INPUT({self.name})"
        return f"{self.name} = {self.gtype.value}({', '.join(self.fanins)})"
