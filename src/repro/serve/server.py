"""The campaign server: queue + scheduler + admission + HTTP, one box.

``CampaignServer`` owns every component and wires the HTTP resources
onto them::

    POST   /jobs              submit a JobSpec (202 new / 200 dedup /
                              429 rate-limited / 503 saturated|draining)
    GET    /jobs              list all jobs in dispatch order
    GET    /jobs/{key}        inspect one job
    DELETE /jobs/{key}        cancel a queued job
    GET    /jobs/{key}/result canonical result bytes of a done job
    GET    /jobs/{key}/trace  the job's normalized trace
    GET    /healthz           liveness + drain state
    GET    /metrics           counters, histograms, queue + runtime stats

All state lives under one ``state_dir`` (queue journal, result store,
artifact cache), so restarting a — possibly SIGKILLed — server on the
same directory resumes exactly where it stopped: acknowledged jobs are
re-queued and complete with byte-identical results.

**Graceful drain.**  SIGINT/SIGTERM flips admission into draining
(503 + Retry-After), lets the in-flight job finish (its result and
checkpoint are persisted), flushes nothing — every journal write was
already atomic — and exits 0.  The e2e suite proves a drain in the
middle of a campaign loses no acknowledged job.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.errors import ServeError
from repro.resilience.chaos import ChaosSpec
from repro.serve.admission import (
    DEFAULT_BURST,
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_RATE_PER_S,
    AdmissionController,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    Router,
    handle_connection,
)
from repro.serve.job import DONE, FAILED, Job, JobSpec
from repro.serve.metrics import ServeMetrics
from repro.serve.progress import MAX_WAIT_S, ProgressBook
from repro.serve.queue import JobQueue
from repro.serve.results import ResultStore
from repro.serve.scheduler import ContextPool, Scheduler
from repro.serve.supervisor import (
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_WORKERS,
    Supervisor,
)
from repro.trace.span import Tracer


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune.

    ``port=0`` binds an ephemeral port (tests and parallel CI);
    ``cache_dir=None`` keeps the artifact cache inside ``state_dir`` so
    one directory carries the server's whole resumable state.

    ``workers=1`` (the default) executes jobs on the in-process
    scheduler; ``workers>=2`` forks that many supervised worker
    processes with leased ownership (``lease_ttl_s``) and heartbeat
    monitoring (``heartbeat_timeout_s``) — see
    :mod:`repro.serve.supervisor`.
    """

    state_dir: Union[str, Path]
    host: str = "127.0.0.1"
    port: int = 8037
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY
    rate_per_s: float = DEFAULT_RATE_PER_S
    burst: int = DEFAULT_BURST
    cache_dir: Optional[Union[str, Path]] = None
    enable_cache: bool = True
    chaos: Optional[str] = None
    drain_grace_s: float = 60.0
    trace_path: Optional[Union[str, Path]] = None
    trace_format: str = "json"
    workers: int = DEFAULT_WORKERS
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S


class CampaignServer:
    """One server instance; build, then :meth:`run` (or embed with
    :class:`ServerThread`)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        state = Path(config.state_dir)
        self.tracer: Optional[Tracer] = (
            Tracer() if config.trace_path is not None else None
        )
        self.metrics = ServeMetrics()
        if config.workers < 1:
            raise ServeError(f"workers must be >= 1, got {config.workers}")
        service_chaos = (
            ChaosSpec.parse(config.chaos) if config.chaos else None
        )
        self.queue = JobQueue(
            state / "queue" / "journal.json",
            tracer=self.tracer,
            # Always hand the queue its shard root: a single-worker
            # restart still merges shards a multi-worker life left.
            shard_root=state / "queue" / "shards",
            chaos=service_chaos,
        )
        self.results = ResultStore(state / "results")
        cache_dir = (
            Path(config.cache_dir)
            if config.cache_dir is not None
            else state / "cache"
        )
        self.contexts = ContextPool(
            cache_dir=str(cache_dir),
            enable_cache=config.enable_cache,
            chaos=config.chaos,
        )
        self.admission = AdmissionController(
            queue_capacity=config.queue_capacity,
            rate_per_s=config.rate_per_s,
            burst=config.burst,
        )
        self.progress = ProgressBook()
        self.scheduler: Union[Scheduler, Supervisor]
        if config.workers >= 2:
            self.scheduler = Supervisor(
                self.queue,
                self.results,
                self.metrics,
                server_tracer=self.tracer,
                progress=self.progress,
                workers=config.workers,
                lease_ttl_s=config.lease_ttl_s,
                heartbeat_timeout_s=config.heartbeat_timeout_s,
                cache_dir=str(cache_dir),
                enable_cache=config.enable_cache,
                chaos_text=config.chaos,
            )
        else:
            self.scheduler = Scheduler(
                self.queue,
                self.results,
                self.metrics,
                self.contexts,
                server_tracer=self.tracer,
                progress=self.progress,
            )
        requeued = len(self.queue.running()) + self.queue.depth()
        if requeued:
            self.metrics.count("requeued", requeued)
        self.router = self._build_router()
        self._drained: Optional[asyncio.Event] = None
        self._drain_requested = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.bound_address: Optional[Tuple[str, int]] = None

    # -- routing ------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("POST", "/jobs", self._post_jobs)
        router.add("GET", "/jobs", self._get_jobs)
        router.add("GET", "/jobs/{key}", self._get_job)
        router.add("DELETE", "/jobs/{key}", self._delete_job)
        router.add("GET", "/jobs/{key}/result", self._get_result)
        router.add("GET", "/jobs/{key}/trace", self._get_trace)
        router.add("GET", "/jobs/{key}/events", self._get_job_events)
        router.add("GET", "/healthz", self._get_healthz)
        router.add("GET", "/metrics", self._get_metrics)
        return router

    def _event(self, kind: str, **attrs: object) -> None:
        if self.tracer is not None and not self.tracer.finished:
            self.tracer.event(kind, **attrs)

    # -- handlers -----------------------------------------------------------

    async def _post_jobs(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        if not isinstance(payload, dict):
            raise ServeError("job spec must be a JSON object")
        spec = JobSpec.from_dict(payload)
        self.metrics.count("submissions")
        decision = self.admission.admit(spec, self.queue)
        if not decision.admitted:
            self.metrics.count(
                "rejected_rate_limited"
                if decision.status == 429
                else "rejected_saturated"
            )
            self._event(
                "job_rejected", key=spec.key(), client=spec.client,
                status=decision.status,
            )
            return HttpResponse.error(
                decision.status, decision.reason, decision.retry_after_s
            )
        job = decision.job
        assert job is not None  # admitted decisions carry the job
        if decision.shed is not None:
            self.metrics.count("shed")
            self._event("job_shed", key=decision.shed.key)
            self.progress.post(decision.shed.key, "job_shed")
            self.progress.close(decision.shed.key, "shed")
        if decision.status == 202:
            self.metrics.count("admitted")
            self.scheduler.note_submitted(job.key)
            self._event(
                "job_admitted", key=job.key, client=spec.client,
                priority=spec.priority,
            )
            self._event("job_queued", key=job.key)
            self.progress.post(
                job.key, "job_queued",
                {"circuit": spec.circuit, "priority": spec.priority},
            )
        else:
            self.metrics.count("deduplicated")
        body: Dict[str, object] = dict(job.to_dict())
        body["created"] = decision.status == 202
        if decision.shed is not None:
            body["shed"] = decision.shed.key
        return HttpResponse.json(decision.status, body)

    async def _get_jobs(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            200,
            {
                "jobs": [job.to_dict() for job in self.queue.jobs()],
                "queue_depth": self.queue.depth(),
            },
        )

    def _job_or_404(self, request: HttpRequest) -> Union[Job, HttpResponse]:
        key = request.params["key"]
        job = self.queue.get(key)
        if job is None:
            return HttpResponse.error(404, f"no such job: {key}")
        return job

    async def _get_job(self, request: HttpRequest) -> HttpResponse:
        job = self._job_or_404(request)
        if isinstance(job, HttpResponse):
            return job
        return HttpResponse.json(200, job.to_dict())

    async def _delete_job(self, request: HttpRequest) -> HttpResponse:
        job = self._job_or_404(request)
        if isinstance(job, HttpResponse):
            return job
        cancelled = self.queue.cancel(job.key)
        if cancelled is None:
            return HttpResponse.error(
                409,
                f"job {job.key} is {job.state}; only queued jobs cancel",
            )
        self.metrics.count("cancelled")
        self._event("job_cancelled", key=job.key)
        self.progress.post(job.key, "job_cancelled")
        self.progress.close(job.key, "cancelled")
        return HttpResponse.json(200, cancelled.to_dict())

    async def _get_result(self, request: HttpRequest) -> HttpResponse:
        job = self._job_or_404(request)
        if isinstance(job, HttpResponse):
            return job
        if job.state == FAILED:
            return HttpResponse.error(
                409, f"job {job.key} failed: {job.error}"
            )
        if job.state != DONE:
            return HttpResponse.error(
                409, f"job {job.key} is {job.state}; no result yet"
            )
        data = self.results.get_bytes(job.key)
        if data is None:
            return HttpResponse.error(
                500, f"job {job.key} is done but its result is missing"
            )
        return HttpResponse(status=200, body=data)

    async def _get_trace(self, request: HttpRequest) -> HttpResponse:
        job = self._job_or_404(request)
        if isinstance(job, HttpResponse):
            return job
        data = self.results.get_trace(job.key)
        if data is None:
            return HttpResponse.error(
                409, f"job {job.key} has no trace yet (state: {job.state})"
            )
        return HttpResponse(status=200, body=data)

    async def _get_job_events(self, request: HttpRequest) -> HttpResponse:
        """Long-poll the job's live progress feed.

        ``?since=<seq>`` returns events with ``seq >= since``;
        ``?timeout=<s>`` (capped) is how long the request parks when
        nothing new exists yet.  The response carries ``next`` (the
        cursor for the follow-up poll) and ``closed`` (no more events
        will ever come: poll no further).
        """
        job = self._job_or_404(request)
        if isinstance(job, HttpResponse):
            return job
        key = job.key
        since = request.query_int("since", 0)
        if since < 0:
            raise ServeError(f"since must be >= 0, got {since}")
        timeout_s = min(
            max(request.query_float("timeout", 25.0), 0.0), MAX_WAIT_S
        )
        events, book_closed = self.progress.snapshot(key, since)
        if not events and not book_closed and not job.terminal and timeout_s:
            # Park off the event loop; posts wake the condition.
            events, book_closed = await asyncio.to_thread(
                self.progress.wait, key, since, timeout_s
            )
        current = self.queue.get(key)
        state = current.state if current is not None else job.state
        terminal = current.terminal if current is not None else job.terminal
        next_seq = (
            max(int(e["seq"]) for e in events) + 1  # type: ignore[call-overload]
            if events
            else max(since, self.progress.next_seq(key))
        )
        return HttpResponse.json(
            200,
            {
                "key": key,
                "state": state,
                "closed": bool(book_closed or terminal),
                "next": next_seq,
                "events": events,
            },
        )

    async def _get_healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            200,
            {
                "status": "draining" if self.admission.draining else "ok",
                "queue_depth": self.queue.depth(),
                "scheduler_idle": self.scheduler.idle,
                "jobs": self.queue.counts(),
                "workers": self.scheduler.worker_snapshots(),
            },
        )

    async def _get_metrics(self, request: HttpRequest) -> HttpResponse:
        runtime = self.scheduler.runtime_stats_snapshot()
        payload = self.metrics.to_dict()
        payload["queue"] = {
            "depth": self.queue.depth(),
            "capacity": self.config.queue_capacity,
            "jobs": self.queue.counts(),
            "active_leases": len(self.queue.leases),
            "stale_finishes": self.queue.stale_finishes,
        }
        if self.queue.shards is not None:
            payload["queue"]["journal_tears"] = self.queue.shards.tears
        payload["runtime"] = runtime.snapshot()
        payload["runtime"]["jobs"] = runtime.jobs
        return HttpResponse.json(200, payload)

    # -- lifecycle ----------------------------------------------------------

    async def _serve(
        self, ready: Optional[Callable[[str, int], None]] = None
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        if self._drain_requested:  # drain asked for before start
            self._drained.set()
        self._install_signal_handlers()
        self.scheduler.start()
        # Connection handlers are tracked so a request accepted in the
        # last instant before shutdown is still *answered*: if the loop
        # exited while its task was mid-flight, asyncio would cancel it
        # and the client would hang on a socket nobody ever closes.
        conn_tasks: Set["asyncio.Task[None]"] = set()

        async def tracked(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            task = asyncio.current_task()
            if task is not None:
                conn_tasks.add(task)
                task.add_done_callback(conn_tasks.discard)
            await handle_connection(self.router, reader, writer)

        server = await asyncio.start_server(
            tracked, host=self.config.host, port=self.config.port
        )
        sockets = server.sockets or []
        if not sockets:  # pragma: no cover - start_server guarantees one
            raise ServeError("server bound no sockets")
        host, port = sockets[0].getsockname()[:2]
        self.bound_address = (host, port)
        # Workers respawned after this point would inherit the bound
        # listening socket (fork semantics) and keep the port alive
        # past the server's death — tell the supervisor which fds its
        # children must close.
        self.scheduler.set_inherited_fds(
            tuple(sock.fileno() for sock in sockets)
        )
        if ready is not None:
            ready(host, port)
        async with server:
            await self._drained.wait()
            await self._drain()
        await server.wait_closed()
        # The listener is gone, but a connection accepted in the last
        # loop iterations may only now materialise as a handler task —
        # give the loop a few beats and answer every straggler before
        # the loop (and with it any half-open socket) disappears.
        for _ in range(3):
            await asyncio.sleep(0.05)
            pending = {t for t in conn_tasks if not t.done()}
            if not pending:
                break
            await asyncio.wait(pending, timeout=5.0)

    def run(
        self, ready: Optional[Callable[[str, int], None]] = None
    ) -> int:
        """Serve until drained (by signal or :meth:`request_drain`);
        returns a process exit code."""
        try:
            asyncio.run(self._serve(ready))
        except OSError as exc:  # port in use, bad host, ...
            raise ServeError(
                f"cannot serve on {self.config.host}:{self.config.port}: "
                f"{exc}"
            ) from exc
        return 0

    def _install_signal_handlers(self) -> None:
        if self._loop is None:
            return
        if threading.current_thread() is not threading.main_thread():
            return  # embedded (ServerThread): drained programmatically
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(sig, self.request_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # exotic platform/embedding: rely on request_drain

    def request_drain(self) -> None:
        """Begin graceful drain (idempotent, thread-safe)."""
        self.admission.start_draining()
        self._drain_requested = True
        loop, drained = self._loop, self._drained
        if loop is not None and drained is not None:
            try:
                loop.call_soon_threadsafe(drained.set)
            except RuntimeError:
                pass  # loop already closed: the drain has happened

    async def _drain(self) -> None:
        """Finish the in-flight job, persist the trace, release pools."""
        self.admission.start_draining()
        stopped = await asyncio.to_thread(
            self.scheduler.stop, self.config.drain_grace_s
        )
        if not stopped:  # pragma: no cover - grace exhausted
            # The running job keeps its 'running' journal record; a
            # restart demotes it to 'queued' and reruns it — the flow
            # is deterministic, so nothing is lost either way.
            pass
        self._export_trace()
        self.contexts.close()

    def _export_trace(self) -> None:
        if self.tracer is None or self.config.trace_path is None:
            return
        from repro.trace.export import export_trace

        root = self.tracer.finish()
        export_trace(
            root,
            self.tracer.events,
            self.config.trace_path,
            self.config.trace_format,
        )


class ServerThread:
    """Run a :class:`CampaignServer` on a background thread (tests,
    benchmarks, the example script).

    >>> with ServerThread(ServerConfig(state_dir=d, port=0)) as url:
    ...     ServeClient(url).healthz()
    """

    def __init__(self, config: ServerConfig) -> None:
        self.server = CampaignServer(config)
        self._ready = threading.Event()
        self._error: List[BaseException] = []
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        try:
            self.server.run(ready=lambda host, port: self._ready.set())
        except BaseException as exc:  # surfaced by __enter__/stop
            self._error.append(exc)
            self._ready.set()

    @property
    def url(self) -> str:
        address = self.server.bound_address
        if address is None:
            raise ServeError("server is not listening yet")
        return f"http://{address[0]}:{address[1]}"

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServeError("server did not come up in time")
        if self._error:
            raise ServeError(f"server failed to start: {self._error[0]}")
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        self.server.request_drain()
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise ServeError("server did not drain in time")
        if self._error:
            raise ServeError(f"server crashed: {self._error[0]}")

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
