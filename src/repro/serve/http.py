"""Minimal asyncio HTTP/1.1 layer (stdlib only).

Just enough HTTP for the job API: request-line + headers parsing,
``Content-Length`` bodies, JSON responses, ``Retry-After`` support,
``Connection: close`` semantics.  Deliberately *not* a framework — the
service has six resources and a hard no-new-dependencies rule, so a
~150-line reader/writer beats dragging in an HTTP stack.

The router maps ``(method, path-pattern)`` pairs to handlers; patterns
capture one ``{name}`` segment at most (``/jobs/{key}/result``).
Handlers return an :class:`HttpResponse`; anything they raise as
:class:`~repro.errors.ServeError` becomes a clean 400.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote

from repro.errors import ServeError

MAX_REQUEST_BYTES = 1 * 1024 * 1024
"""Hard cap on header+body size; bigger requests are refused (413)."""

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes = b""
    params: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)

    def query_int(self, name: str, default: int) -> int:
        """An integer query parameter (:class:`ServeError` on garbage)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ServeError(
                f"query parameter {name!r} is not an integer: {raw!r}"
            ) from exc

    def query_float(self, name: str, default: float) -> float:
        """A float query parameter (:class:`ServeError` on garbage)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ServeError(
                f"query parameter {name!r} is not a number: {raw!r}"
            ) from exc

    def json(self) -> object:
        """The body parsed as JSON (:class:`ServeError` on garbage)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc


@dataclass
class HttpResponse:
    """One response: status, payload, extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> "HttpResponse":
        headers: Dict[str, str] = {}
        payload: Dict[str, object] = {"error": message, "status": status}
        if retry_after_s is not None:
            # Retry-After is delta-seconds; ceil to stay conservative
            # but keep sub-second precision in the JSON body.
            headers["Retry-After"] = str(max(1, int(retry_after_s + 0.999)))
            payload["retry_after_s"] = round(retry_after_s, 3)
        return cls.json(status, payload, headers)

    def render(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in sorted(self.headers.items()))
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + self.body


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class Router:
    """``(method, pattern)`` → handler dispatch with one-segment params."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), tuple(pattern.strip("/").split("/")), handler)
        )

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], bool]:
        """Returns ``(handler, params, path_known)``; ``handler`` is
        None for a miss — ``path_known`` then distinguishes 405 from
        404."""
        segments = tuple(path.strip("/").split("/"))
        path_known = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_known = True
            if route_method == method.upper():
                return handler, params, True
        return None, {}, path_known


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for want, got in zip(pattern, segments):
        if want.startswith("{") and want.endswith("}"):
            if not got:
                return None
            params[want[1:-1]] = got
        elif want != got:
            return None
    return params


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request; None on a closed/empty connection.

    Raises :class:`ServeError` on malformed framing — the connection
    handler answers 400 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError("truncated HTTP request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ServeError("HTTP request head too large") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0], parts[1]
    path, _, query_text = target.partition("?")
    path = unquote(path)
    query = dict(parse_qsl(query_text, keep_blank_values=True))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise ServeError(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ServeError(
            f"bad Content-Length: {length_text!r}"
        ) from exc
    if length < 0 or length > MAX_REQUEST_BYTES:
        raise ServeError(f"unacceptable Content-Length {length}")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServeError("truncated HTTP request body") from exc
    return HttpRequest(
        method=method, path=path, headers=headers, body=body, query=query
    )


async def handle_connection(
    router: Router,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: one request, one response, close."""
    try:
        try:
            request = await read_request(reader)
        except ServeError as exc:
            writer.write(HttpResponse.error(400, str(exc)).render())
            await writer.drain()
            return
        if request is None:
            return
        handler, params, path_known = router.resolve(
            request.method, request.path
        )
        if handler is None:
            response = HttpResponse.error(
                405 if path_known else 404,
                f"{'method not allowed' if path_known else 'not found'}: "
                f"{request.method} {request.path}",
            )
        else:
            request.params = params
            try:
                response = await handler(request)
            except ServeError as exc:
                response = HttpResponse.error(400, str(exc))
            except Exception as exc:  # noqa: BLE001 - boundary
                response = HttpResponse.error(
                    500, f"internal error: {type(exc).__name__}: {exc}"
                )
        writer.write(response.render())
        await writer.drain()
    except (ConnectionError, BrokenPipeError):  # client went away
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
