"""Job workers: the shared execution core and the worker process.

Three pieces live here:

* :func:`execute_job` — the one true way to run a campaign job on a
  runtime context.  The in-process :class:`~repro.serve.scheduler.
  Scheduler` and every supervised worker process call the same
  function, so a job's payload, trace and stats are byte-identical
  whichever execution mode computed them.
* :func:`_worker_main` — the entry point of a supervised worker
  process.  A worker receives claims over a pipe, runs them on its own
  pooled runtime contexts, heartbeats from a background thread, and
  reports results *with its fencing token* back to the supervisor.  It
  never touches the queue, the journals or the result store: a worker
  orphaned by a SIGKILLed server is harmless by construction and exits
  on the broken pipe.  Workers ignore SIGTERM/SIGINT — recovery of an
  in-flight claim is the **supervisor's** job (token-fenced requeue),
  which is what makes drain-time demotion exactly-once even when a
  terminal delivers the signal to the whole process group.
* :class:`WorkerHandle` — the supervisor's view of one worker:
  process + pipe + heartbeat age + current assignment, with spawn /
  kill / poll primitives the supervisor composes into monitoring.

Chaos's service modes are injected *inside the worker*, keyed on
``(job key, attempt)`` — deterministic for a given seed no matter
which worker draws the job or how often the supervisor restarts
workers, so every campaign under chaos still converges.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.flows.full_flow import run_full_flow
from repro.resilience.chaos import ChaosSpec
from repro.serve.job import JobSpec
from repro.serve.progress import PROGRESS_KINDS
from repro.serve.results import flow_result_payload, optimize_result_payload
from repro.trace.compare import phase_durations
from repro.trace.events import TraceEvent
from repro.trace.normalize import normalized_json
from repro.trace.span import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import RuntimeContext

#: Stats counters worth echoing onto the finished job record.
_JOB_STAT_KEYS = (
    "full_simulations",
    "full_sim_hits",
    "screen_simulations",
    "screen_hits",
    "tasks_dispatched",
    "task_retries",
    "serial_fallback_tasks",
)


@dataclass
class JobOutcome:
    """Everything one job execution produced (pipe-serializable)."""

    ok: bool
    payload: Optional[Dict[str, object]]
    trace_json: Optional[str]
    stats: Dict[str, float]
    #: Full runtime-stats snapshot of the run (metrics aggregation).
    snapshot: Dict[str, int]
    error: Optional[str]


def execute_job(
    spec: JobSpec,
    runtime: "RuntimeContext",
    progress: Optional[Callable[[TraceEvent], None]] = None,
) -> JobOutcome:
    """Run one job on ``runtime``; never raises for flow errors.

    The context is *reused*: stats are reset in place and a fresh
    per-job tracer attached, so the pool (and its warm workers) carries
    over while counters and spans do not.  Results are bit-identical
    to a fresh context by the runtime layer's standing guarantee.

    ``progress`` is an optional live tap: it is called with every
    *deterministic* tracer event (:data:`~repro.serve.progress.
    PROGRESS_KINDS`) as the job runs, feeding the server's long-poll
    events endpoint.  It never influences the result.
    """
    key = spec.key()
    runtime.reset_stats()
    on_event: Optional[Callable[[TraceEvent], None]] = None
    if progress is not None:
        tap = progress

        def _forward(event: TraceEvent) -> None:
            if event.kind in PROGRESS_KINDS:
                tap(event)

        on_event = _forward
    tracer = Tracer(stats=runtime.stats, on_event=on_event)
    runtime.attach_tracer(tracer)
    try:
        with tracer.span(
            "job", key=key, job=key, circuit=spec.circuit,
            seed=spec.seed, l_g=spec.l_g, task=spec.task,
        ):
            if spec.task == "optimize":
                from repro.optimize import run_optimize

                payload = optimize_result_payload(
                    run_optimize(
                        spec.circuit, spec.optimize_config(), runtime=runtime
                    )
                )
            else:
                payload = flow_result_payload(
                    run_full_flow(
                        spec.circuit, spec.flow_config(), runtime=runtime
                    )
                )
    except ReproError as exc:
        return JobOutcome(
            ok=False,
            payload=None,
            trace_json=None,
            stats={},
            snapshot=dict(runtime.stats.snapshot()),
            error=str(exc),
        )
    finally:
        runtime.attach_tracer(None)
    snapshot = dict(runtime.stats.snapshot())
    stats = {
        name: float(value)
        for name, value in snapshot.items()
        if name in _JOB_STAT_KEYS and value
    }
    root = tracer.finish()
    # Phase wall seconds ride on the job record's stats (machine-
    # dependent, so deliberately *not* part of the canonical result
    # bytes) — the campaign warehouse ingests them from there.
    for phase, seconds in phase_durations(root).items():
        if phase in ("trace", "job"):
            continue
        stats[f"phase:{phase}"] = seconds
    return JobOutcome(
        ok=True,
        payload=payload,
        trace_json=normalized_json(root, tracer.events),
        stats=stats,
        snapshot=snapshot,
        error=None,
    )


class _HeartbeatPump(threading.Thread):
    """Background thread beating the worker's pipe every ``period_s``.

    Chaos's hang/stall modes *pause* the pump — the worker falls
    silent exactly as a truly wedged process would — and a finished
    job resumes it.
    """

    def __init__(
        self,
        conn: multiprocessing.connection.Connection,
        send_lock: threading.Lock,
        period_s: float,
    ) -> None:
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self._conn = conn
        self._send_lock = send_lock
        self._period_s = period_s
        self._enabled = threading.Event()
        self._enabled.set()
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._period_s):
            if not self._enabled.is_set():
                continue
            try:
                with self._send_lock:
                    self._conn.send({"op": "heartbeat"})
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor gone; the main loop exits on EOF

    def pause(self) -> None:
        self._enabled.clear()

    def resume(self) -> None:
        self._enabled.set()

    def stop(self) -> None:
        self._stopped.set()


def _worker_main(
    conn: multiprocessing.connection.Connection,
    name: str,
    cache_dir: Optional[str],
    enable_cache: bool,
    chaos_text: Optional[str],
    heartbeat_s: float,
    close_fds: Sequence[int],
) -> None:
    """Worker-process entry point: claims in, results out, forever.

    Exits cleanly on a ``stop`` message or a broken pipe (supervisor
    died).  Never writes shared state — the fencing token it echoes on
    every result is its only authority, and the supervisor's queue is
    the only judge of it.
    """
    # Drain is the supervisor's problem: a worker that also reacted to
    # SIGTERM would race it demoting the same claim.  Ignoring the
    # signal here is what makes drain-time demotion exactly-once.
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - platform quirk
        pass
    for fd in close_fds:
        # Inherited fds this worker must not hold: the server's
        # listening socket (or a dead server's port stays bound after a
        # post-bind respawn) and — critically — the supervisor end of
        # this worker's own pipe, copied in by fork.  Holding one's own
        # peer means ``recv`` below could never see EOF, and an orphan
        # would outlive a SIGKILLed server forever.
        try:
            os.close(fd)
        except OSError:
            pass
    from repro.serve.scheduler import ContextPool

    chaos = ChaosSpec.parse(chaos_text) if chaos_text else None
    service_chaos = chaos if chaos is not None and chaos.affects_service else None
    pool = ContextPool(cache_dir, enable_cache, chaos=chaos_text)
    send_lock = threading.Lock()
    pump = _HeartbeatPump(conn, send_lock, heartbeat_s)
    pump.start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # supervisor gone: orphaned workers just exit
            if not isinstance(msg, dict) or msg.get("op") != "run":
                break  # "stop" (or anything unexpected): clean exit
            key = str(msg["key"])
            token = int(msg["token"])
            attempt = int(msg["attempt"])
            spec = JobSpec.from_dict(msg["spec"])
            if service_chaos is not None and service_chaos.decide(
                "kill_claim", key, attempt
            ):
                # The journaled lease is the only trace of this claim.
                os.kill(os.getpid(), signal.SIGKILL)
            if service_chaos is not None and service_chaos.decide(
                "worker_hang", key, attempt
            ):
                pump.pause()
                time.sleep(service_chaos.hang_s)
            runtime = pool.acquire(spec.budget())

            def _progress(event: TraceEvent) -> None:
                # Best-effort: progress lost on a dying pipe is fine;
                # the main loop exits on EOF soon after anyway.
                try:
                    with send_lock:
                        conn.send(
                            {
                                "op": "progress",
                                "key": key,
                                "token": token,
                                "kind": event.kind,
                                "attrs": dict(event.attrs),
                            }
                        )
                except (OSError, ValueError, BrokenPipeError):
                    pass

            outcome = execute_job(spec, runtime, progress=_progress)
            if (
                outcome.ok
                and service_chaos is not None
                and service_chaos.decide("worker_crash", key, attempt)
            ):
                os._exit(23)  # computed, never reported
            if service_chaos is not None and service_chaos.decide(
                "worker_stall", key, attempt
            ):
                pump.pause()
                time.sleep(service_chaos.hang_s)
            try:
                with send_lock:
                    conn.send(
                        {
                            "op": "done",
                            "key": key,
                            "token": token,
                            "ok": outcome.ok,
                            "payload": outcome.payload,
                            "trace": outcome.trace_json,
                            "stats": outcome.stats,
                            "snapshot": outcome.snapshot,
                            "error": outcome.error,
                        }
                    )
            except (OSError, ValueError, BrokenPipeError):
                break
            pump.resume()
    finally:
        pump.stop()
        pool.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class WorkerHandle:
    """The supervisor's handle on one (re)spawnable worker process."""

    def __init__(
        self,
        name: str,
        shard: int,
        cache_dir: Optional[str],
        enable_cache: bool,
        chaos_text: Optional[str],
        heartbeat_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.shard = shard
        self.cache_dir = cache_dir
        self.enable_cache = enable_cache
        self.chaos_text = chaos_text
        self.heartbeat_s = heartbeat_s
        self._clock: Callable[[], float] = (
            time.monotonic if clock is None else clock
        )
        #: Listening-socket fds a respawned worker must close.
        self.close_fds: Tuple[int, ...] = ()
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[multiprocessing.connection.Connection] = None
        #: Current assignment: ``(key, token, attempt)`` or None.
        self.busy: Optional[Tuple[str, int, int]] = None
        self.restarts = 0
        self.last_heartbeat = 0.0

    def spawn(self) -> None:
        """Fork a fresh worker process on a fresh pipe."""
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.name,
                self.cache_dir,
                self.enable_cache,
                self.chaos_text,
                self.heartbeat_s,
                # The child must close its fork-inherited copy of the
                # supervisor end of its own pipe, or its recv() never
                # sees EOF when the supervisor dies (SIGKILL leaves no
                # one else to tell it).
                self.close_fds + (parent_conn.fileno(),),
            ),
            name=f"repro-serve-{self.name}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.busy = None
        self.last_heartbeat = self._clock()

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def assign(
        self, key: str, token: int, attempt: int, spec: Dict[str, object]
    ) -> bool:
        """Send a claim; False when the pipe is already dead."""
        if self.conn is None:
            return False
        try:
            self.conn.send(
                {
                    "op": "run",
                    "key": key,
                    "token": token,
                    "attempt": attempt,
                    "spec": spec,
                }
            )
        except (OSError, ValueError, BrokenPipeError):
            return False
        self.busy = (key, token, attempt)
        return True

    def poll(self) -> List[Dict[str, object]]:
        """Drain pending messages; any message counts as a heartbeat.

        Returns the ``done`` and ``progress`` messages in arrival
        order (heartbeats are consumed silently).
        """
        out: List[Dict[str, object]] = []
        conn = self.conn
        if conn is None:
            return out
        while True:
            try:
                if not conn.poll(0):
                    break
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(msg, dict):
                continue
            self.last_heartbeat = self._clock()
            op = msg.get("op")
            if op == "done":
                self.busy = None
                out.append(msg)
            elif op == "progress":
                out.append(msg)
        return out

    def heartbeat_age(self) -> float:
        return self._clock() - self.last_heartbeat

    def request_stop(self) -> None:
        """Ask the worker to exit after its current message."""
        if self.conn is None:
            return
        try:
            self.conn.send({"op": "stop"})
        except (OSError, ValueError, BrokenPipeError):
            pass

    def join(self, timeout_s: float) -> bool:
        if self.proc is None:
            return True
        self.proc.join(timeout_s)
        return not self.proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker and reap it; the pipe is closed."""
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()
        if self.proc is not None:
            self.proc.join(5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.conn = None

    def snapshot(self) -> Dict[str, object]:
        """The `/healthz` view of this worker."""
        return {
            "name": self.name,
            "shard": self.shard,
            "alive": self.alive(),
            "busy": self.busy[0] if self.busy is not None else None,
            "restarts": self.restarts,
            "heartbeat_age_s": round(self.heartbeat_age(), 3),
        }

    def __repr__(self) -> str:
        return f"WorkerHandle({self.name}, alive={self.alive()})"
