"""The worker supervisor: leases out jobs, restarts what dies.

With ``repro serve --workers N`` (N ≥ 2) the server swaps its
in-process :class:`~repro.serve.scheduler.Scheduler` for a
``Supervisor``: N forked worker processes execute jobs while one
supervisor thread owns every shared mutable thing — the queue, the
lease table, the journals and the result store.  Workers only compute;
their sole authority is the fencing token they echo with each result.
That asymmetry is what makes every failure mode below recoverable:

* **Crash** (process exits, heartbeats stop): the supervisor reaps the
  worker, requeues its leased job (token-fenced, so exactly once) and
  respawns the worker with exponential backoff.
* **Hang/stall** (process alive, heartbeats stale): same treatment,
  plus a SIGKILL first — a wedged worker cannot be reasoned with.
* **Lease expiry** (worker alive but slower than its lease): the
  expiry sweep reclaims the job for someone else; when the original
  worker eventually reports, its token no longer matches and the stale
  result is dropped before it touches the result store.
* **Flapping** (a worker that dies faster than it works): after
  ``max_restarts`` restarts inside ``restart_window_s`` the slot is
  *degraded* — removed from the fleet, counted in metrics — rather
  than restarted forever.  The fleet never degrades below one worker,
  so a campaign always converges.

Dispatch prefers each worker's home shard
(:func:`~repro.serve.lease.shard_of` over the job key) and lets idle
workers **steal** across shards, so a skewed key distribution
rebalances instead of idling the fleet.

Results land exactly as the in-process scheduler lands them — same
:func:`~repro.serve.worker.execute_job`, same canonical bytes — so a
multi-worker campaign's results are byte-identical to a serial run's.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.runtime.metrics import RuntimeStats
from repro.serve.metrics import ServeMetrics
from repro.serve.progress import ProgressBook
from repro.serve.queue import JobQueue
from repro.serve.results import ResultStore
from repro.serve.worker import WorkerHandle
from repro.trace.span import Tracer

DEFAULT_WORKERS = 1
DEFAULT_LEASE_TTL_S = 30.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0


class Supervisor:
    """Lease-based dispatch over a fleet of worker processes.

    Exposes the same surface the in-process
    :class:`~repro.serve.scheduler.Scheduler` does — ``start`` /
    ``stop`` / ``idle`` / ``note_submitted`` / ``worker_snapshots`` /
    ``runtime_stats_snapshot`` — so the server treats both uniformly.

    Parameters
    ----------
    queue / results / metrics:
        The server's shared components (the queue must have been built
        with a shard root; workers' transitions journal into their
        owner shards).
    workers:
        Fleet size (≥ 2; one worker wants the plain scheduler).
    lease_ttl_s:
        Lease deadline granted per claim; heartbeats renew it.
    heartbeat_s:
        Worker heartbeat period.
    heartbeat_timeout_s:
        Silence after which a worker is declared hung and recycled.
    max_restarts / restart_window_s / restart_backoff_s:
        Flap control: restarts per worker allowed inside the window
        before the slot is degraded, and the base of the exponential
        respawn backoff.
    cache_dir / enable_cache / chaos_text:
        Forwarded to each worker's runtime contexts; ``chaos_text``
        also arms the service-level injection modes inside workers.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        queue: JobQueue,
        results: ResultStore,
        metrics: ServeMetrics,
        server_tracer: Optional[Tracer] = None,
        progress: Optional[ProgressBook] = None,
        *,
        workers: int = 2,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = 0.5,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        max_restarts: int = 5,
        restart_window_s: float = 30.0,
        restart_backoff_s: float = 0.2,
        poll_s: float = 0.05,
        cache_dir: Optional[str] = None,
        enable_cache: bool = True,
        chaos_text: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.queue = queue
        self.results = results
        self.metrics = metrics
        self.server_tracer = server_tracer
        self.progress = progress
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self.restart_backoff_s = restart_backoff_s
        self.poll_s = poll_s
        self.clock = clock
        self.total_shards = workers
        self._handles: List[WorkerHandle] = [
            WorkerHandle(
                name=f"w{i}",
                shard=i,
                cache_dir=cache_dir,
                enable_cache=enable_cache,
                chaos_text=chaos_text,
                heartbeat_s=heartbeat_s,
                clock=clock,
            )
            for i in range(workers)
        ]
        #: Degraded (permanently retired) worker slots, kept for /healthz.
        self._degraded: List[WorkerHandle] = []
        #: Respawn-not-before stamp per worker name (backoff gate).
        self._respawn_at: Dict[str, float] = {}
        #: Recent restart stamps per worker name (flap window).
        self._restart_stamps: Dict[str, List[float]] = {}
        #: Monotonic start stamps of in-flight jobs (latency accounting).
        self._started: Dict[str, float] = {}
        self.submit_stamps: Dict[str, float] = {}
        self._runtime_total = RuntimeStats()
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-supervisor", daemon=True
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for handle in self._handles:
            handle.spawn()
        self._thread.start()

    def stop(self, timeout_s: Optional[float] = None) -> bool:
        """Drain: let busy workers finish, then stop the fleet.

        In-flight jobs are *finished, not abandoned* while the grace
        budget lasts; whatever is still leased when it runs out is
        requeued token-fenced (exactly once) for the next server life.
        """
        grace = 30.0 if timeout_s is None else timeout_s
        self._stop.set()
        self._thread.join(grace)
        if self._thread.is_alive():  # pragma: no cover - grace exhausted
            return False
        deadline = self.clock() + grace
        while self.clock() < deadline:
            for handle in self._fleet():
                for msg in handle.poll():
                    self._handle_message(handle, msg)
                assignment = handle.busy
                if handle.alive() and assignment is not None:
                    key, token, _ = assignment
                    self.queue.renew(key, handle.name, token)
            if all(h.busy is None or not h.alive() for h in self._fleet()):
                break
            time.sleep(self.poll_s)
        for handle in self._fleet():
            handle.request_stop()
        for handle in self._fleet():
            if not handle.join(1.0):
                handle.kill()
            assignment = handle.busy
            if assignment is not None:
                key, token, _ = assignment
                if self.queue.requeue(key, token):
                    self.metrics.count("requeued")
                    self._server_event(
                        "job_requeued", key=key, reason="drain"
                    )
                handle.busy = None
        return True

    @property
    def idle(self) -> bool:
        """True when no worker is executing a job right now."""
        return all(h.busy is None for h in self._fleet())

    def _fleet(self) -> List[WorkerHandle]:
        return list(self._handles)

    def _server_event(self, kind: str, **attrs: object) -> None:
        if self.server_tracer is not None and not self.server_tracer.finished:
            self.server_tracer.event(kind, **attrs)

    # -- the loop -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            progressed = self._tick()
            if not progressed:
                self._stop.wait(self.poll_s)

    def _tick(self) -> bool:
        """One supervision round; True when anything happened."""
        progressed = False
        expired = self.queue.expire_leases()
        if expired:
            self.metrics.count("lease_expiries", len(expired))
            progressed = True
            for lease in expired:
                self._server_event(
                    "lease_expired", key=lease.key, owner=lease.owner
                )
        for handle in self._fleet():
            for msg in handle.poll():
                self._handle_message(handle, msg)
                progressed = True
        for handle in self._fleet():
            if handle.name in self._respawn_at:
                continue  # already down, waiting out its backoff
            if not handle.alive():
                self._recover(handle, reason="crash")
                progressed = True
            elif handle.heartbeat_age() > self.heartbeat_timeout_s:
                self._recover(handle, reason="hang")
                progressed = True
        progressed |= self._respawn_due()
        for handle in self._fleet():
            assignment = handle.busy
            if handle.alive() and assignment is not None:
                key, token, _ = assignment
                self.queue.renew(key, handle.name, token)
        progressed |= self._dispatch()
        return progressed

    def _respawn_due(self) -> bool:
        spawned = False
        now = self.clock()
        for handle in self._fleet():
            due = self._respawn_at.get(handle.name)
            if due is not None and now >= due:
                del self._respawn_at[handle.name]
                handle.spawn()
                spawned = True
        return spawned

    def _dispatch(self) -> bool:
        dispatched = False
        for handle in self._fleet():
            if not handle.alive() or handle.busy is not None:
                continue
            claimed = self.queue.claim(
                owner=handle.name,
                ttl_s=self.lease_ttl_s,
                shard=handle.shard,
                total_shards=self.total_shards,
                steal=True,
            )
            if claimed is None:
                break  # queue empty (steal=True saw every shard)
            job, lease = claimed
            if lease.stolen:
                self.metrics.count("steals")
            if not handle.assign(
                job.key, lease.token, job.attempts, job.spec.to_dict()
            ):
                # Worker died between liveness check and send; the
                # liveness sweep will recycle it — reclaim the job now.
                self.queue.requeue(job.key, lease.token)
                continue
            self._started[job.key] = self.clock()
            self._server_event(
                "job_running", key=job.key, circuit=job.spec.circuit,
                priority=job.spec.priority, attempt=job.attempts,
                worker=handle.name, stolen=lease.stolen,
            )
            if self.progress is not None:
                self.progress.post(
                    job.key, "job_running",
                    {
                        "circuit": job.spec.circuit,
                        "attempt": job.attempts,
                        "worker": handle.name,
                    },
                )
            dispatched = True
        return dispatched

    # -- results ------------------------------------------------------------

    def _handle_message(
        self, handle: WorkerHandle, msg: Dict[str, object]
    ) -> None:
        """Route one worker pipe message (``progress`` or ``done``)."""
        if msg.get("op") == "progress":
            self._handle_progress(handle, msg)
        else:
            self._handle_done(handle, msg)

    def _handle_progress(
        self, handle: WorkerHandle, msg: Dict[str, object]
    ) -> None:
        book = self.progress
        if book is None:
            return
        key = str(msg.get("key"))
        token_raw = msg.get("token")
        token = token_raw if isinstance(token_raw, int) else -1
        if not self.queue.lease_valid(key, token):
            return  # fenced: progress from a superseded claim is noise
        attrs = msg.get("attrs")
        book.post(
            key,
            str(msg.get("kind")),
            attrs if isinstance(attrs, dict) else None,
        )

    def _accumulate(self, snapshot: Dict[str, object]) -> None:
        with self._stats_lock:
            for name, value in snapshot.items():
                if not isinstance(value, (int, float)):
                    continue
                current = getattr(self._runtime_total, name, None)
                if isinstance(current, (int, float)):
                    # snapshot() floats everything; keep int fields int.
                    setattr(
                        self._runtime_total,
                        name,
                        current + type(current)(value),
                    )

    def _handle_done(self, handle: WorkerHandle, msg: Dict[str, object]) -> None:
        key = str(msg.get("key"))
        token_raw = msg.get("token")
        token = token_raw if isinstance(token_raw, int) else -1
        snapshot = msg.get("snapshot")
        if isinstance(snapshot, dict):
            self._accumulate(snapshot)
        if not self.queue.lease_valid(key, token):
            # Fenced: the lease expired (or the job was requeued and
            # re-leased) while this worker was computing.  Its bytes
            # never touch the result store; whoever holds the current
            # lease produces the identical bytes anyway.
            self.metrics.count("stale_results_rejected")
            self._server_event(
                "stale_result_rejected", key=key, worker=handle.name
            )
            return
        if msg.get("ok"):
            payload = msg.get("payload")
            if isinstance(payload, dict):
                self.results.put(key, payload)
            trace = msg.get("trace")
            if isinstance(trace, str):
                self.results.put_trace(key, trace)
            stats_raw = msg.get("stats")
            stats = (
                {str(k): float(v) for k, v in stats_raw.items()}
                if isinstance(stats_raw, dict)
                else None
            )
            if self.queue.finish(key, ok=True, stats=stats, token=token):
                self.metrics.count("completed")
                started = self._started.pop(key, None)
                submitted = self.submit_stamps.get(key)
                done = self.clock()
                self.metrics.observe_job(
                    queued_s=(
                        (started - submitted)
                        if started is not None and submitted is not None
                        else None
                    ),
                    run_s=(done - started) if started is not None else None,
                    total_s=(
                        (done - submitted) if submitted is not None else None
                    ),
                )
                self._server_event(
                    "job_done", key=key, worker=handle.name,
                )
                if self.progress is not None:
                    self.progress.post(
                        key, "job_done", {"worker": handle.name}
                    )
                    self.progress.close(key, "done")
        else:
            error = msg.get("error")
            if self.queue.finish(
                key, ok=False, error=str(error), token=token
            ):
                self.metrics.count("failed")
                self._started.pop(key, None)
                self._server_event(
                    "job_failed", key=key, error=str(error),
                    worker=handle.name,
                )
                if self.progress is not None:
                    self.progress.post(
                        key, "job_failed", {"error": str(error)}
                    )
                    self.progress.close(key, "failed")

    # -- recovery -----------------------------------------------------------

    def _recover(self, handle: WorkerHandle, reason: str) -> None:
        """Kill, reclaim, and schedule the respawn (or degrade)."""
        assignment = handle.busy
        handle.kill()
        handle.busy = None
        if assignment is not None:
            key, token, _ = assignment
            # Token-fenced and idempotent: if the expiry sweep (or a
            # racing drain) already demoted this claim, this is a no-op
            # — the job is demoted exactly once.
            if self.queue.requeue(key, token):
                self.metrics.count("requeued")
                self._server_event("job_requeued", key=key, reason=reason)
                if self.progress is not None:
                    self.progress.post(
                        key, "job_requeued", {"reason": reason}
                    )
                    self.progress.reopen(key)
        handle.restarts += 1
        self.metrics.count("worker_restarts")
        self._server_event(
            "worker_restart", worker=handle.name, reason=reason,
            restarts=handle.restarts,
        )
        now = self.clock()
        stamps = [
            stamp
            for stamp in self._restart_stamps.get(handle.name, [])
            if now - stamp <= self.restart_window_s
        ]
        stamps.append(now)
        self._restart_stamps[handle.name] = stamps
        if len(stamps) > self.max_restarts and len(self._handles) > 1:
            # Flapping: retire the slot instead of burning restarts
            # forever.  Never below one worker — a degraded-to-one
            # fleet is slow, not stuck.
            self._handles.remove(handle)
            self._degraded.append(handle)
            self.metrics.count("workers_degraded")
            self._server_event("worker_degraded", worker=handle.name)
            return
        backoff = min(
            self.restart_backoff_s * (2 ** min(len(stamps) - 1, 6)), 5.0
        )
        self._respawn_at[handle.name] = now + backoff

    # -- hooks for the server -----------------------------------------------

    def note_submitted(self, key: str) -> None:
        """Stamp a submission time for latency accounting."""
        self.submit_stamps[key] = self.clock()

    def worker_snapshots(self) -> List[Dict[str, object]]:
        """The `/healthz` per-worker liveness view."""
        out = [handle.snapshot() for handle in self._fleet()]
        for handle in self._degraded:
            snap = handle.snapshot()
            snap["degraded"] = True
            out.append(snap)
        return out

    def runtime_stats_snapshot(self) -> RuntimeStats:
        """Runtime counters accumulated from worker reports."""
        with self._stats_lock:
            total = RuntimeStats()
            for name, value in vars(self._runtime_total).items():
                if name != "timers":
                    setattr(total, name, value)
            return total

    def set_inherited_fds(self, fds: Sequence[int]) -> None:
        """Server listen-socket fds future respawns must close."""
        for handle in self._handles + self._degraded:
            handle.close_fds = tuple(fds)

    def __repr__(self) -> str:
        return (
            f"Supervisor({len(self._handles)} workers, "
            f"{len(self._degraded)} degraded)"
        )
