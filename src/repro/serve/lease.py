"""Leased job ownership: fencing tokens, deadlines, shard placement.

A claim in the multi-worker service is a **lease**: the queue grants a
worker bounded ownership of one job, stamped with a *monotonic fencing
token* and a deadline.  The token is the whole correctness story:

* every grant consumes the next token from a counter that only moves
  forward (restored past the journal's high-water mark on restart), so
  ownership is totally ordered across worker restarts and server
  lives;
* a worker finishing a job must present its token; after the lease
  expired — or the job was requeued by the supervisor — the token no
  longer matches and the **stale result is rejected**, so a slow or
  zombie worker can never overwrite work that has been handed to
  someone else;
* requeueing is **exactly-once** by construction: it demotes only a
  ``running`` job whose current token is presented, so the supervisor
  and a signal handler racing to demote the same claim cannot
  double-demote.

Deadlines use the injected monotonic clock and live only in memory —
a restart clears every lease anyway (``running`` jobs are demoted),
so persisting wall-clock deadlines would only invite clock-skew bugs.

:func:`shard_of` maps a job key onto one of N worker shards (stable
content hash, no RNG); the queue prefers shard-local claims and lets
idle workers *steal* across shards so a skewed hash never idles a
worker while work waits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def shard_of(key: str, total: int) -> int:
    """The home shard of job ``key`` among ``total`` shards.

    A pure function of the content-addressed key (its leading hex
    digits), so placement is stable across restarts and identical on
    every host.
    """
    if total <= 1:
        return 0
    return int(key[:8], 16) % total


@dataclass
class Lease:
    """One worker's bounded ownership of one job."""

    key: str
    owner: str
    token: int
    ttl_s: Optional[float]
    #: Monotonic-clock deadline; None = never expires (inline scheduler).
    deadline: Optional[float]
    #: True when the claim crossed shards (work stealing).
    stolen: bool = False

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class LeaseTable:
    """Active leases and the monotonic fencing counter.

    Not itself locked — the owning :class:`~repro.serve.queue.JobQueue`
    serializes access under its queue lock.
    """

    clock: Callable[[], float] = time.monotonic
    _leases: Dict[str, Lease] = field(default_factory=dict)
    _next_token: int = 1

    def observe_token(self, token: int) -> None:
        """Raise the fencing floor past a token seen in the journal."""
        if token >= self._next_token:
            self._next_token = token + 1

    def grant(
        self,
        key: str,
        owner: str,
        ttl_s: Optional[float],
        stolen: bool = False,
    ) -> Lease:
        """Grant ``owner`` a fresh lease on ``key`` (next fencing token).

        ``ttl_s`` of None means no deadline (the in-process scheduler,
        which cannot outlive its own server).  A ttl of 0 grants a
        lease that is already expired — chaos uses this to provoke the
        reclaim race.
        """
        token = self._next_token
        self._next_token += 1
        deadline = None if ttl_s is None else self.clock() + ttl_s
        lease = Lease(
            key=key,
            owner=owner,
            token=token,
            ttl_s=ttl_s,
            deadline=deadline,
            stolen=stolen,
        )
        self._leases[key] = lease
        return lease

    def get(self, key: str) -> Optional[Lease]:
        return self._leases.get(key)

    def validate(self, key: str, token: int) -> bool:
        """True when ``token`` is the *current* lease token for ``key``."""
        lease = self._leases.get(key)
        return lease is not None and lease.token == token

    def renew(self, key: str, owner: str, token: int) -> bool:
        """Push the deadline out by the lease's own ttl.

        A renewal must present the current token and owner; renewing a
        released or superseded lease is a no-op (False).  The granted
        ttl is sticky — a zero-ttl (chaos) lease stays expired no
        matter how fast the worker heartbeats.
        """
        lease = self._leases.get(key)
        if lease is None or lease.token != token or lease.owner != owner:
            return False
        if lease.ttl_s is not None:
            lease.deadline = self.clock() + lease.ttl_s
        return True

    def release(self, key: str, token: int) -> bool:
        """Drop the lease (job finished or requeued); token-fenced."""
        if not self.validate(key, token):
            return False
        del self._leases[key]
        return True

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """Every active lease past its deadline, in key order."""
        stamp = self.clock() if now is None else now
        return [
            lease
            for _key, lease in sorted(self._leases.items())
            if lease.expired(stamp)
        ]

    def __len__(self) -> int:
        return len(self._leases)
