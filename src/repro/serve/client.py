"""Thin HTTP client for the campaign server (stdlib only).

Used by the ``repro submit`` / ``repro jobs`` CLI commands, the
examples and the load-generator benchmark; anything it cannot reach or
parse becomes a :class:`~repro.errors.ServeError`, so the CLI's
one-line error contract holds end to end.  Admission refusals raise
:class:`~repro.errors.RateLimited` carrying the HTTP status and the
server's ``Retry-After`` — a polite load generator backs off with it.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPResponse as _RawResponse
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import RateLimited, ServeError
from repro.serve.job import TERMINAL_STATES, JobSpec

DEFAULT_TIMEOUT_S = 30.0
DEFAULT_POLL_S = 0.1


class ServeClient:
    """Client for one server base URL (``http://host:port``)."""

    def __init__(
        self,
        url: str,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        client_id: Optional[str] = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http" or not parts.hostname:
            raise ServeError(f"unsupported server URL: {url!r}")
        self.host: str = parts.hostname
        self.port: int = parts.port or 80
        self.timeout_s = timeout_s
        self.client_id = client_id

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        conn = HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s,
        )
        try:
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"}
                if payload is not None
                else {},
            )
            response: _RawResponse = conn.getresponse()
            data = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, headers, data
        except OSError as exc:
            raise ServeError(
                f"cannot reach server {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        status, headers, data = self._request(
            method, path, body, timeout_s=timeout_s
        )
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(
                f"server sent invalid JSON for {method} {path}: {exc}"
            ) from exc
        if not isinstance(parsed, dict):
            raise ServeError(
                f"server sent a non-object for {method} {path}: {parsed!r}"
            )
        return status, headers, parsed

    @staticmethod
    def _retry_after(
        headers: Dict[str, str], payload: Dict[str, object]
    ) -> float:
        value = payload.get("retry_after_s", headers.get("retry-after", 1.0))
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 1.0

    def _raise_for(
        self,
        status: int,
        headers: Dict[str, str],
        payload: Dict[str, object],
    ) -> None:
        message = str(payload.get("error", f"HTTP {status}"))
        if status in (429, 503):
            raise RateLimited(
                message, status, self._retry_after(headers, payload)
            )
        raise ServeError(message)

    # -- API ----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, object]:
        """Submit one job; returns the server's job record (its
        ``created`` field says new vs. deduplicated).

        Raises :class:`RateLimited` on 429/503 and :class:`ServeError`
        on anything else unexpected.
        """
        if self.client_id is not None and spec.client == "anonymous":
            spec = JobSpec(**{**spec.to_dict(), "client": self.client_id})
        status, headers, payload = self._json("POST", "/jobs", spec.to_dict())
        if status not in (200, 202):
            self._raise_for(status, headers, payload)
        return payload

    def submit_with_backoff(
        self,
        spec: JobSpec,
        max_wait_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict[str, object]:
        """Submit, honouring 429/503 Retry-After until ``max_wait_s``."""
        waited = 0.0
        while True:
            try:
                return self.submit(spec)
            except RateLimited as exc:
                if waited >= max_wait_s:
                    raise
                delay = min(max(exc.retry_after_s, 0.01), max_wait_s - waited)
                sleep(delay)
                waited += delay

    def jobs(self) -> List[Dict[str, object]]:
        status, headers, payload = self._json("GET", "/jobs")
        if status != 200:
            self._raise_for(status, headers, payload)
        jobs = payload.get("jobs", [])
        return jobs if isinstance(jobs, list) else []

    def job(self, key: str) -> Dict[str, object]:
        status, headers, payload = self._json("GET", f"/jobs/{key}")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def cancel(self, key: str) -> Dict[str, object]:
        status, headers, payload = self._json("DELETE", f"/jobs/{key}")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def result_bytes(self, key: str) -> bytes:
        status, _headers, data = self._request("GET", f"/jobs/{key}/result")
        if status != 200:
            try:
                payload = json.loads(data.decode("utf-8"))
            except ValueError:
                payload = {}
            raise ServeError(
                str(payload.get("error", f"result fetch failed ({status})"))
            )
        return data

    def result(self, key: str) -> Dict[str, object]:
        parsed = json.loads(self.result_bytes(key).decode("utf-8"))
        if not isinstance(parsed, dict):
            raise ServeError(f"malformed result payload for {key}")
        return parsed

    def trace_bytes(self, key: str) -> bytes:
        status, _headers, data = self._request("GET", f"/jobs/{key}/trace")
        if status != 200:
            raise ServeError(f"trace fetch failed for {key} ({status})")
        return data

    def events(
        self,
        key: str,
        since: int = 0,
        timeout_s: float = 0.0,
    ) -> Dict[str, object]:
        """One poll of the job's progress feed.

        ``timeout_s`` is the server-side long-poll park: 0 returns
        immediately, anything larger blocks until an event with
        ``seq >= since`` arrives (or the park expires).  Returns the
        server payload: ``events``, ``next`` (the follow-up cursor),
        ``state`` and ``closed``.
        """
        status, headers, payload = self._json(
            "GET",
            f"/jobs/{key}/events?since={int(since)}&timeout={timeout_s:g}",
            # The socket must outlive the server-side park.
            timeout_s=self.timeout_s + max(timeout_s, 0.0),
        )
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def watch(
        self,
        key: str,
        since: int = 0,
        timeout_s: float = 300.0,
        poll_timeout_s: float = 10.0,
    ) -> Iterator[Dict[str, object]]:
        """Follow a job live: yield progress events until it closes.

        Long-polls ``GET /jobs/<key>/events`` and yields each event
        dict (``{"seq", "kind", "attrs"}``) as it arrives; returns
        when the server marks the feed closed (the job reached a
        terminal state).  Raises :class:`ServeError` if the job is
        still open after ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        cursor = int(since)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise ServeError(
                    f"job {key} still open after {timeout_s:.0f}s of watching"
                )
            payload = self.events(
                key,
                since=cursor,
                timeout_s=min(max(poll_timeout_s, 0.0), remaining),
            )
            events = payload.get("events", [])
            if isinstance(events, list):
                for event in events:
                    if isinstance(event, dict):
                        yield event
            next_raw = payload.get("next", cursor)
            cursor = (
                int(next_raw)
                if isinstance(next_raw, (int, float))
                else cursor
            )
            if payload.get("closed"):
                return

    def healthz(self) -> Dict[str, object]:
        status, headers, payload = self._json("GET", "/healthz")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    def metrics(self) -> Dict[str, object]:
        status, headers, payload = self._json("GET", "/metrics")
        if status != 200:
            self._raise_for(status, headers, payload)
        return payload

    # -- polling ------------------------------------------------------------

    def wait(
        self,
        key: str,
        timeout_s: float = 120.0,
        poll_s: float = DEFAULT_POLL_S,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(key)
            if job.get("state") in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {key} still {job.get('state')} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)

    def wait_all(
        self,
        keys: Iterable[str],
        timeout_s: float = 300.0,
        poll_s: float = DEFAULT_POLL_S,
    ) -> Dict[str, Dict[str, object]]:
        """Wait for every key; returns key → terminal job record."""
        deadline = time.monotonic() + timeout_s
        out: Dict[str, Dict[str, object]] = {}
        for key in keys:
            remaining = max(deadline - time.monotonic(), 0.01)
            out[key] = self.wait(key, timeout_s=remaining, poll_s=poll_s)
        return out
