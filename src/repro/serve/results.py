"""Persistent, canonical job results.

A finished job's result is rendered to *canonical bytes* —
:func:`render_result` over :func:`flow_result_payload` — and stored
content-addressed by job key with the same atomic-replace discipline as
the artifact cache.  Canonical bytes are the point: the flow is
deterministic, so the result a client downloads is byte-identical to
rendering a direct :func:`~repro.flows.full_flow.run_full_flow` of the
same spec — whatever server life, worker count or cache temperature
produced it.  The end-to-end service tests assert exactly this.

Alongside each result the store keeps the job's *normalized* trace
(:func:`repro.trace.normalize.normalized_json`): the deterministic
projection of the per-job span tree, also byte-stable across runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.flows.full_flow import FlowResult
from repro.sim.values import to_char

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimize.search import OptimizeResult

RESULT_FORMAT = 1
"""Version of the result payload layout."""


def flow_result_payload(flow: FlowResult) -> Dict[str, object]:
    """The canonical, JSON-ready projection of one flow result.

    Carries everything a campaign client consumes — the Table-6 row,
    the deterministic sequence ``T``, the kept weighted subsequences'
    count and the TPG verification verdict — and nothing
    machine-dependent (no timings, no runtime counters).

    Flows run with the certified pre-prune additionally report the
    ``proved_untestable`` section; every other key is byte-identical to
    an unpruned run of the same spec.
    """
    payload: Dict[str, object] = {
        "format": RESULT_FORMAT,
        "circuit": flow.circuit.name,
        "table6": asdict(flow.table6),
        "sequence": [
            "".join(to_char(v) for v in row) for row in flow.sequence
        ],
        "kept_assignments": len(flow.reverse_order.kept),
        "omega_size": len(flow.procedure.omega),
        "tpg_verified": flow.tpg_verified,
    }
    if flow.pruned is not None:
        payload["proved_untestable"] = flow.pruned.to_payload()
    return payload


def optimize_result_payload(result: "OptimizeResult") -> Dict[str, object]:
    """The canonical projection of one optimize-task result.

    Delegates to :func:`repro.optimize.report.optimize_payload` — the
    same payload the CLI's ``--output`` writes — so a downloaded
    ``task="optimize"`` result is byte-identical to a direct
    ``repro optimize`` run of the same spec.
    """
    from repro.optimize.report import optimize_payload

    return optimize_payload(result)


def render_result(payload: Dict[str, object]) -> bytes:
    """Canonical bytes of a result payload (sorted keys, fixed layout)."""
    return (
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


class ResultStore:
    """Job-key → result/trace bytes, atomic and restart-stable."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, key: str, suffix: str) -> Path:
        return self.root / f"{key}{suffix}"

    def _write(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        self.root.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # -- results ------------------------------------------------------------

    def put(self, key: str, payload: Dict[str, object]) -> bytes:
        """Render and persist ``payload``; returns the canonical bytes."""
        data = render_result(payload)
        self._write(self._path(key, ".json"), data)
        return data

    def get_bytes(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key, ".json").read_bytes()
        except OSError:
            return None

    def has(self, key: str) -> bool:
        return self._path(key, ".json").is_file()

    # -- normalized traces --------------------------------------------------

    def put_trace(self, key: str, normalized: str) -> None:
        self._write(
            self._path(key, ".trace.json"), normalized.encode("utf-8")
        )

    def get_trace(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key, ".trace.json").read_bytes()
        except OSError:
            return None
