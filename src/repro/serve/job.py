"""Campaign jobs: specification, identity and lifecycle.

A :class:`JobSpec` describes one BIST-campaign unit of work — "run the
full Section-4 flow on this circuit with these knobs".  Its identity
(:meth:`JobSpec.key`) is content-addressed over exactly the fields that
influence the *result* (circuit, seed, sequence budgets, ``L_G``,
hardware synthesis), reusing the fingerprint machinery of
:mod:`repro.runtime.keys`; priority, client and execution budgets are
deliberately excluded so two clients asking for the same computation
share one job and one result.

A :class:`Job` is a spec the server has accepted: it carries the queue
sequence number (the FIFO tiebreak inside a priority tier), the
lifecycle state and — once terminal — an error string for failures.
States move strictly forward::

    QUEUED ──> RUNNING ──> DONE | FAILED
       │
       └─────> CANCELLED | SHED

``SHED`` is a cancellation performed *by the server*: admission control
evicted the job to make room for higher-priority work (the client is
told so and may resubmit).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.errors import ServeError
from repro.flows.full_flow import TGEN_MODES, FlowConfig
from repro.runtime.keys import config_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimize.search import OptimizeConfig

MIN_PRIORITY = 0
MAX_PRIORITY = 9
DEFAULT_PRIORITY = 4
"""Priorities run 0 (batch) to 9 (urgent); higher dispatches first."""

TASKS = ("flow", "optimize")
"""Job types the server runs: the greedy Section-4 flow, or the
multi-objective weight search of :mod:`repro.optimize`."""

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
SHED = "shed"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, SHED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, SHED})

_KEY_BYTES = 16


@dataclass(frozen=True)
class JobSpec:
    """One requested flow run.

    Attributes
    ----------
    circuit:
        Library circuit name (the server only runs embedded circuits —
        it never reads paths a remote client names).
    task:
        ``"flow"`` (the greedy Section-4 flow, the default) or
        ``"optimize"`` (the multi-objective weight search seeded by
        that flow).
    seed / tgen_mode / tgen_max_len / compaction_sims / l_g /
    synthesize_hardware:
        The :class:`~repro.flows.full_flow.FlowConfig` knobs.
    population / generations:
        The search budget; only meaningful (and only part of the job
        key) when ``task == "optimize"``.
    static_prune:
        Run the certified static pre-prune before fault simulation;
        the result gains a ``proved_untestable`` section and the job
        key changes only when the flag is set (old keys stay valid).
    sim_backend:
        Fault-simulation backend (``"auto"``/``"python"``/``"vector"``).
        Backends are bit-identical, so — like the execution budget — it
        is *excluded* from :meth:`result_fields` and the job key: two
        clients demanding the same computation share one result no
        matter which engine computes it.
    priority:
        0–9, higher runs first; FIFO within a priority.
    client:
        Submitting client's identity (rate limiting and fair-share are
        per client).
    jobs / task_timeout / retries:
        Per-job execution budget: worker processes, per-task timeout
        and retry budget for the runtime context the job runs under.
        Budgets never influence results, only how they are obtained.
    """

    circuit: str
    task: str = "flow"
    seed: int = 1
    tgen_mode: str = "random"
    tgen_max_len: int = 2000
    compaction_sims: int = 60
    l_g: int = 512
    synthesize_hardware: bool = False
    static_prune: bool = False
    sim_backend: str = "auto"
    population: int = 8
    generations: int = 2
    priority: int = DEFAULT_PRIORITY
    client: str = "anonymous"
    jobs: int = 1
    task_timeout: Optional[float] = None
    retries: int = 2

    def __post_init__(self) -> None:
        if not self.circuit or not isinstance(self.circuit, str):
            raise ServeError("job spec needs a circuit name")
        if self.task not in TASKS:
            raise ServeError(
                f"unknown task {self.task!r}; expected one of "
                f"{', '.join(TASKS)}"
            )
        if self.population < 2:
            raise ServeError("population must be >= 2")
        if self.generations < 0:
            raise ServeError("generations must be >= 0")
        if self.tgen_mode not in TGEN_MODES:
            raise ServeError(
                f"unknown tgen_mode {self.tgen_mode!r}; expected one of "
                f"{', '.join(TGEN_MODES)}"
            )
        from repro.sim.backend import BACKENDS

        if self.sim_backend not in BACKENDS:
            raise ServeError(
                f"unknown sim_backend {self.sim_backend!r}; expected one "
                f"of {', '.join(BACKENDS)}"
            )
        if not MIN_PRIORITY <= self.priority <= MAX_PRIORITY:
            raise ServeError(
                f"priority {self.priority} out of range "
                f"[{MIN_PRIORITY}, {MAX_PRIORITY}]"
            )
        for name in ("tgen_max_len", "l_g"):
            if getattr(self, name) <= 0:
                raise ServeError(f"{name} must be positive")
        if self.compaction_sims < 0:
            raise ServeError("compaction_sims must be >= 0")
        if self.jobs < 1:
            raise ServeError("jobs must be >= 1")
        if self.retries < 0:
            raise ServeError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ServeError("task_timeout must be positive")
        if not self.client:
            raise ServeError("client must be non-empty")

    # -- identity -----------------------------------------------------------

    def result_fields(self) -> Dict[str, object]:
        """The fields that determine the *result* (the key basis).

        ``"flow"`` jobs keep the exact pre-optimize field set, so every
        flow key minted by an earlier server life still matches;
        ``"optimize"`` jobs add the task tag and the search budget.
        """
        fields: Dict[str, object] = {
            "circuit": self.circuit,
            "seed": self.seed,
            "tgen_mode": self.tgen_mode,
            "tgen_max_len": self.tgen_max_len,
            "compaction_sims": self.compaction_sims,
            "l_g": self.l_g,
            "synthesize_hardware": self.synthesize_hardware,
        }
        if self.task != "flow":
            fields["task"] = self.task
            fields["population"] = self.population
            fields["generations"] = self.generations
        if self.static_prune:
            # Pruned jobs report extra sections, so they key separately;
            # default jobs keep their historical keys.
            fields["static_prune"] = True
        return fields

    def key(self) -> str:
        """Content-addressed job identity.

        Two specs demanding the same computation — whatever their
        priority, client or execution budget — share one key, one
        queue slot and one result.
        """
        return config_fingerprint(self.result_fields())[: 2 * _KEY_BYTES]

    def flow_config(self) -> FlowConfig:
        """The :class:`FlowConfig` this spec demands."""
        from repro.core.procedure import ProcedureConfig

        return FlowConfig(
            seed=self.seed,
            tgen_max_len=self.tgen_max_len,
            tgen_mode=self.tgen_mode,
            compaction_sims=self.compaction_sims,
            procedure=ProcedureConfig(l_g=self.l_g),
            synthesize_hardware=self.synthesize_hardware,
            static_prune=self.static_prune,
            sim_backend=self.sim_backend,
        )

    def optimize_config(self) -> "OptimizeConfig":
        """The :class:`~repro.optimize.OptimizeConfig` this spec demands
        (``task == "optimize"`` jobs only)."""
        from repro.optimize import OptimizeConfig

        return OptimizeConfig(
            seed=self.seed,
            population=self.population,
            generations=self.generations,
            l_g=self.l_g,
            tgen_mode=self.tgen_mode,
            tgen_max_len=self.tgen_max_len,
            compaction_sims=self.compaction_sims,
            static_prune=self.static_prune,
            sim_backend=self.sim_backend,
        )

    def budget(self) -> Tuple[int, Optional[float], int]:
        """The execution-budget triple (contexts are pooled by it)."""
        return (self.jobs, self.task_timeout, self.retries)

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the HTTP submit body)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JobSpec":
        """Validate and rebuild a spec from :meth:`to_dict` output.

        Raises :class:`ServeError` on anything malformed — unknown
        fields, wrong types, out-of-range values — so the HTTP layer
        can turn every bad submission into a clean 400.
        """
        if not isinstance(payload, Mapping):
            raise ServeError(f"job spec is not an object: {payload!r}")
        known = {f: None for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ServeError(
                f"unknown job spec field(s): {', '.join(unknown)}"
            )
        try:
            return cls(**dict(payload))  # type: ignore[arg-type]
        except TypeError as exc:
            raise ServeError(f"malformed job spec: {exc}") from exc


@dataclass
class Job:
    """A spec the server has accepted, plus its lifecycle state.

    ``owner``/``lease_token`` identify the worker currently leasing a
    running job (None for queued/terminal jobs or the in-process
    scheduler's unleased claims); ``version`` increments on *every*
    state transition and orders records when per-worker journal shards
    are merged after a crash.
    """

    spec: JobSpec
    seq: int
    state: str = QUEUED
    error: Optional[str] = None
    attempts: int = 0
    stats: Dict[str, float] = field(default_factory=dict)
    owner: Optional[str] = None
    version: int = 0
    lease_token: Optional[int] = None

    @property
    def key(self) -> str:
        return self.spec.key()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def sort_key(self) -> Tuple[int, int]:
        """Dispatch order: highest priority first, then FIFO."""
        return (-self.spec.priority, self.seq)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (journal payload and HTTP body)."""
        return {
            "kind": "job",
            "key": self.key,
            "spec": self.spec.to_dict(),
            "seq": self.seq,
            "state": self.state,
            "error": self.error,
            "attempts": self.attempts,
            "stats": dict(self.stats),
            "owner": self.owner,
            "version": self.version,
            "lease_token": self.lease_token,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Job":
        """Validate and rebuild a job from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping) or payload.get("kind") != "job":
            raise ServeError(f"not a job record: {payload!r}")
        spec_raw = payload.get("spec")
        if not isinstance(spec_raw, Mapping):
            raise ServeError(f"job record has no spec: {payload!r}")
        spec = JobSpec.from_dict(spec_raw)
        state = payload.get("state")
        if state not in STATES:
            raise ServeError(f"unknown job state {state!r}")
        try:
            seq = int(payload["seq"])  # type: ignore[arg-type,call-overload]
            attempts = int(payload.get("attempts", 0))  # type: ignore[arg-type]
            version = int(payload.get("version", 0))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed job record: {payload!r}") from exc
        error = payload.get("error")
        owner = payload.get("owner")
        token_raw = payload.get("lease_token")
        lease_token = (
            int(token_raw) if isinstance(token_raw, (int, float)) else None
        )
        stats_raw = payload.get("stats", {})
        stats: Dict[str, float] = {}
        if isinstance(stats_raw, Mapping):
            for name, value in stats_raw.items():
                if isinstance(value, (int, float)):
                    stats[str(name)] = float(value)
        return cls(
            spec=spec,
            seq=seq,
            state=str(state),
            error=str(error) if error is not None else None,
            attempts=attempts,
            stats=stats,
            owner=str(owner) if owner is not None else None,
            version=version,
            lease_token=lease_token,
        )
