"""BIST-campaign job service.

Turns the one-shot flows into a long-running service: a durable
priority queue of campaign jobs, a scheduler dispatching them onto
pooled runtime contexts, admission control with per-client rate limits
and load shedding, and a stdlib-only asyncio HTTP API — submit,
inspect, cancel, fetch results and normalized traces, ``/healthz``,
``/metrics``.  ``repro serve`` boots it; ``repro submit`` / ``repro
jobs`` and :class:`ServeClient` talk to it.

Guarantees, in one line each:

* an **acknowledged job is never lost** — it is journaled atomically
  before the 202 and survives crash, SIGTERM and restart;
* results are **byte-identical** to running the same flow directly
  (the flows are deterministic; the service only schedules them);
* an over-limit client hears **429/503 with Retry-After** in
  milliseconds instead of waiting on work that will not run.
"""

from __future__ import annotations

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.client import ServeClient
from repro.serve.job import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    STATES,
    TASKS,
    TERMINAL_STATES,
    Job,
    JobSpec,
)
from repro.serve.lease import Lease, LeaseTable, shard_of
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.progress import PROGRESS_KINDS, ProgressBook
from repro.serve.queue import JobQueue
from repro.serve.results import (
    ResultStore,
    flow_result_payload,
    optimize_result_payload,
    render_result,
)
from repro.serve.scheduler import ContextPool, Scheduler
from repro.serve.server import CampaignServer, ServerConfig, ServerThread
from repro.serve.supervisor import Supervisor
from repro.serve.worker import JobOutcome, WorkerHandle, execute_job

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CampaignServer",
    "CANCELLED",
    "ContextPool",
    "DONE",
    "FAILED",
    "Job",
    "JobOutcome",
    "JobQueue",
    "JobSpec",
    "LatencyHistogram",
    "Lease",
    "LeaseTable",
    "PROGRESS_KINDS",
    "ProgressBook",
    "QUEUED",
    "ResultStore",
    "RUNNING",
    "Scheduler",
    "ServeClient",
    "ServeMetrics",
    "ServerConfig",
    "ServerThread",
    "SHED",
    "STATES",
    "Supervisor",
    "TASKS",
    "TERMINAL_STATES",
    "TokenBucket",
    "WorkerHandle",
    "execute_job",
    "flow_result_payload",
    "optimize_result_payload",
    "render_result",
    "shard_of",
]
