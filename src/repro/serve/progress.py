"""Live job-progress feed for the long-poll events endpoint.

A :class:`ProgressBook` is the server's in-memory, thread-safe record
of what each job is doing *right now*: lifecycle transitions posted by
the scheduler/supervisor plus the deterministic phase events
(``stage``, ``generation``, ...) tapped off each job's own tracer via
:attr:`~repro.trace.span.Tracer.on_event`.  ``GET
/jobs/<key>/events?since=<seq>`` long-polls :meth:`ProgressBook.wait`
from the asyncio side (via ``asyncio.to_thread``), so a watching
client wakes the moment a stage completes instead of busy-polling the
job record.

Progress is *observability, not state*: the book lives only as long as
the server process, is bounded per job (old events fall off the
front), and losing it loses nothing — results, traces and the queue
journal are the durable record.  A job finished in an earlier server
life simply reports ``closed`` with no events.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.trace.events import DETERMINISTIC_KINDS, Scalar, coerce_attr

DEFAULT_CAPACITY = 512
"""Events retained per job; older ones fall off (seq keeps counting)."""

MAX_WAIT_S = 60.0
"""Hard cap on one long-poll wait, whatever the client asks for."""

PROGRESS_KINDS = frozenset(DETERMINISTIC_KINDS)
"""Tracer event kinds forwarded from a running job into the book —
exactly the deterministic kinds, which fire at phase granularity
(``stage``, ``generation``, ``front``, ``analysis``, ``prune``,
``omega``, ``reverse``, ``note``) and are therefore bounded per job."""


class ProgressBook:
    """Per-job event ledger with monotone sequence numbers.

    Every event is a plain dict ``{"seq": int, "kind": str, "attrs":
    {...}}``; ``seq`` is per-job, starts at 0, and never repeats even
    after old events are evicted, so ``?since=<seq>`` cursors stay
    valid across evictions (a client that fell behind simply misses
    the evicted middle).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._events: Dict[str, List[Dict[str, object]]] = {}
        self._next_seq: Dict[str, int] = {}
        self._closed: Dict[str, str] = {}
        self._cond = threading.Condition()

    # -- producers ----------------------------------------------------------

    def post(
        self, key: str, kind: str, attrs: Optional[Mapping[str, object]] = None
    ) -> None:
        """Append one event for ``key`` and wake every waiter."""
        clean: Dict[str, Scalar] = (
            {str(k): coerce_attr(v) for k, v in attrs.items()}
            if attrs
            else {}
        )
        with self._cond:
            seq = self._next_seq.get(key, 0)
            self._next_seq[key] = seq + 1
            bucket = self._events.setdefault(key, [])
            bucket.append({"seq": seq, "kind": kind, "attrs": clean})
            if len(bucket) > self.capacity:
                del bucket[: len(bucket) - self.capacity]
            self._cond.notify_all()

    def close(self, key: str, state: str) -> None:
        """Mark ``key`` terminal; waiters return immediately from now on."""
        with self._cond:
            self._closed[key] = state
            self._cond.notify_all()

    def reopen(self, key: str) -> None:
        """Un-close a requeued job so watchers keep following it."""
        with self._cond:
            self._closed.pop(key, None)
            self._cond.notify_all()

    # -- consumers ----------------------------------------------------------

    def _since_locked(
        self, key: str, since: int
    ) -> List[Dict[str, object]]:
        return [
            dict(event)
            for event in self._events.get(key, [])
            if int(event["seq"]) >= since  # type: ignore[call-overload]
        ]

    def snapshot(
        self, key: str, since: int = 0
    ) -> Tuple[List[Dict[str, object]], bool]:
        """Events with ``seq >= since`` plus the closed flag, now."""
        with self._cond:
            return self._since_locked(key, since), key in self._closed

    def wait(
        self, key: str, since: int = 0, timeout_s: float = 25.0
    ) -> Tuple[List[Dict[str, object]], bool]:
        """Block until an event with ``seq >= since`` exists, the job
        closes, or ``timeout_s`` passes; then behave as :meth:`snapshot`."""
        deadline = time.monotonic() + min(max(timeout_s, 0.0), MAX_WAIT_S)
        with self._cond:
            while True:
                events = self._since_locked(key, since)
                closed = key in self._closed
                if events or closed:
                    return events, closed
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    return [], False
                self._cond.wait(remaining)

    def next_seq(self, key: str) -> int:
        """The seq the *next* event for ``key`` will get (the cursor a
        fully caught-up client should poll with)."""
        with self._cond:
            return self._next_seq.get(key, 0)
