"""Job scheduler: claims queued jobs and runs them on pooled runtimes.

One scheduler thread drains the queue in dispatch order (the queue
itself encodes priority, FIFO and client fair-share) and runs each job
through :func:`~repro.flows.full_flow.run_full_flow`.

**Context pooling.**  Jobs carry an execution budget — worker
processes, per-task timeout, retry budget — and a
:class:`~repro.runtime.context.RuntimeContext` is expensive to build
(it owns a process pool).  The scheduler therefore keeps one context
per distinct budget and *reuses* it across jobs:
:meth:`RuntimeContext.reset_stats` zeroes the counters in place between
jobs (the pool stays warm), and
:meth:`RuntimeContext.attach_tracer` swaps in a per-job tracer, so each
job still gets cleanly separated stats and its own span tree.  Results
are bit-identical to a fresh context by the runtime layer's standing
guarantee.

**Per-job tracing.**  Every job runs inside a ``job`` span on its own
tracer; the normalized projection is persisted next to the result and
served at ``GET /jobs/<key>/trace``.  Lifecycle events
(``job_running``, ``job_done``, ...) additionally fire on the *server*
tracer when one is attached, so a ``repro serve --trace`` artifact
attributes every job's lifecycle in Perfetto.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.context import RuntimeContext
from repro.runtime.metrics import RuntimeStats
from repro.serve.job import Job
from repro.serve.metrics import ServeMetrics
from repro.serve.progress import ProgressBook
from repro.serve.queue import JobQueue
from repro.serve.results import ResultStore
from repro.serve.worker import execute_job
from repro.trace.events import TraceEvent
from repro.trace.span import Tracer

Budget = Tuple[int, Optional[float], int]


class ContextPool:
    """One long-lived :class:`RuntimeContext` per execution budget."""

    def __init__(
        self,
        cache_dir: Optional[str],
        enable_cache: bool,
        chaos: Optional[str] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.enable_cache = enable_cache
        self.chaos = chaos
        self._contexts: Dict[Budget, RuntimeContext] = {}
        self._lock = threading.Lock()

    def acquire(self, budget: Budget) -> RuntimeContext:
        """The pooled context for ``budget`` (built on first use)."""
        with self._lock:
            runtime = self._contexts.get(budget)
            if runtime is None:
                jobs, task_timeout, retries = budget
                runtime = RuntimeContext(
                    jobs=jobs,
                    cache_dir=self.cache_dir,
                    enable_cache=self.enable_cache,
                    task_timeout=task_timeout,
                    retries=retries,
                    chaos=self.chaos,
                )
                self._contexts[budget] = runtime
            return runtime

    def aggregate_stats(self) -> RuntimeStats:
        """Sum of every pooled context's *current* counters (the
        `/metrics` runtime section)."""
        total = RuntimeStats()
        with self._lock:
            contexts = list(self._contexts.values())
        for runtime in contexts:
            snap = runtime.stats.snapshot()
            for name, value in snap.items():
                setattr(total, name, getattr(total, name) + value)
            total.jobs = max(total.jobs, runtime.jobs)
        return total

    def close(self) -> None:
        with self._lock:
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for runtime in contexts:
            runtime.close()


class Scheduler:
    """The dispatch loop, on its own daemon thread.

    Parameters
    ----------
    queue / results / metrics / contexts:
        The server's shared components.
    server_tracer:
        Optional tracer owned by the server; job lifecycle events fire
        on it (under its currently open span) when present.
    progress:
        Optional :class:`~repro.serve.progress.ProgressBook`; when
        present, lifecycle transitions and the running job's
        deterministic tracer events are posted to it live.
    poll_s:
        Idle sleep between queue polls.
    """

    def __init__(
        self,
        queue: JobQueue,
        results: ResultStore,
        metrics: ServeMetrics,
        contexts: ContextPool,
        server_tracer: Optional[Tracer] = None,
        progress: Optional[ProgressBook] = None,
        poll_s: float = 0.05,
    ) -> None:
        self.queue = queue
        self.results = results
        self.metrics = metrics
        self.contexts = contexts
        self.server_tracer = server_tracer
        self.progress = progress
        self.poll_s = poll_s
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._current_key: Optional[str] = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True
        )
        #: Monotonic submit stamps for latency accounting, by job key
        #: (jobs resumed from a previous life have none).
        self.submit_stamps: Dict[str, float] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout_s: Optional[float] = None) -> bool:
        """Ask the loop to stop after the in-flight job and join it.

        Returns True when the thread exited within ``timeout_s``.  The
        in-flight job is *finished, not abandoned* — its result and
        checkpoint land before the thread exits, which is what makes
        SIGTERM drain lossless.
        """
        self._stop.set()
        self._thread.join(timeout_s)
        return not self._thread.is_alive()

    @property
    def idle(self) -> bool:
        """True when no job is being executed right now."""
        return self._idle.is_set()

    def _server_event(self, kind: str, **attrs: object) -> None:
        if self.server_tracer is not None and not self.server_tracer.finished:
            self.server_tracer.event(kind, **attrs)

    # -- the loop -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim_next()
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            self._idle.clear()
            self._current_key = job.key
            try:
                self._run_job(job)
            finally:
                self._current_key = None
                self._idle.set()

    def _run_job(self, job: Job) -> None:
        key = job.key
        submitted = self.submit_stamps.get(key)
        started = time.monotonic()
        self._server_event(
            "job_running", key=key, circuit=job.spec.circuit,
            priority=job.spec.priority, attempt=job.attempts,
        )
        book = self.progress
        tap: Optional[Callable[[TraceEvent], None]] = None
        if book is not None:
            live = book
            book.post(
                key, "job_running",
                {"circuit": job.spec.circuit, "attempt": job.attempts},
            )

            def _tap(event: TraceEvent) -> None:
                live.post(key, event.kind, event.attrs)

            tap = _tap
        runtime = self.contexts.acquire(job.spec.budget())
        outcome = execute_job(job.spec, runtime, progress=tap)
        if not outcome.ok:
            self.queue.finish(key, ok=False, error=outcome.error)
            self.metrics.count("failed")
            self._server_event("job_failed", key=key, error=outcome.error)
            if book is not None:
                book.post(key, "job_failed", {"error": outcome.error})
                book.close(key, "failed")
            return
        assert outcome.payload is not None  # ok outcomes carry a payload
        self.results.put(key, outcome.payload)
        if outcome.trace_json is not None:
            self.results.put_trace(key, outcome.trace_json)
        self.queue.finish(key, ok=True, stats=outcome.stats)
        done = time.monotonic()
        self.metrics.count("completed")
        self.metrics.observe_job(
            queued_s=(started - submitted) if submitted is not None else None,
            run_s=done - started,
            total_s=(done - submitted) if submitted is not None else None,
        )
        self._server_event(
            "job_done", key=key, circuit=job.spec.circuit,
            run_s=round(done - started, 6),
        )
        if book is not None:
            book.post(key, "job_done", {"circuit": job.spec.circuit})
            book.close(key, "done")

    # -- hooks for the server -----------------------------------------------

    def note_submitted(self, key: str) -> None:
        """Stamp a submission time for latency accounting."""
        self.submit_stamps[key] = time.monotonic()

    def worker_snapshots(self) -> List[Dict[str, object]]:
        """The `/healthz` worker view: one in-process pseudo-worker."""
        return [
            {
                "name": "scheduler",
                "shard": 0,
                "alive": self._thread.is_alive(),
                "busy": self._current_key,
                "restarts": 0,
                "heartbeat_age_s": 0.0,
            }
        ]

    def runtime_stats_snapshot(self) -> RuntimeStats:
        """Aggregated runtime counters (the `/metrics` runtime section)."""
        return self.contexts.aggregate_stats()

    def set_inherited_fds(self, fds: Sequence[int]) -> None:
        """No-op: the in-process scheduler forks no workers."""
