"""Service metrics: counters, queue depth and latency histograms.

What ``GET /metrics`` serves.  Three ingredients:

* the service's own counters (submissions, admissions by verdict,
  completions, failures, shed/cancelled jobs),
* latency histograms — queue wait, run time, and the end-to-end
  submit→complete latency — with p50/p90/p99 read-outs, and
* a snapshot of the aggregated
  :class:`~repro.runtime.metrics.RuntimeStats` across the scheduler's
  runtime contexts plus the live queue depth, merged in by the server.

Histograms use fixed exponential bucket bounds, so two servers'
metrics are mergeable and the render is stable.  All clocks are
monotonic durations; nothing here feeds a result.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Histogram bucket upper bounds, seconds (exponential, 1 ms … ~137 s).
_BOUNDS: Tuple[float, ...] = tuple(0.001 * (2.0**i) for i in range(18))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile read-outs."""

    def __init__(self) -> None:
        self._counts: List[int] = [0] * (len(_BOUNDS) + 1)
        self._total = 0
        self._sum_s = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(_BOUNDS, seconds)] += 1
        self._total += 1
        self._sum_s += seconds

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean_s(self) -> float:
        return self._sum_s / self._total if self._total else 0.0

    def percentile(self, p: float) -> float:
        """The upper bound of the bucket holding the ``p``-quantile
        observation (0.0 on an empty histogram)."""
        if not self._total:
            return 0.0
        rank = max(1, int(p * self._total + 0.999999))
        seen = 0
        for i, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                return _BOUNDS[i] if i < len(_BOUNDS) else float("inf")
        return float("inf")  # pragma: no cover - unreachable

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self._total,
            "mean_s": round(self.mean_s, 6),
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
            "p99_s": self.percentile(0.99),
        }


class ServeMetrics:
    """Thread-safe counter/histogram bag for one server."""

    _COUNTERS = (
        "submissions",
        "admitted",
        "deduplicated",
        "rejected_rate_limited",
        "rejected_saturated",
        "completed",
        "failed",
        "cancelled",
        "shed",
        "requeued",
        # Multi-worker service counters (zero under the in-process
        # scheduler): restarts of crashed/hung workers, leases the
        # expiry sweep reclaimed, cross-shard work steals, results a
        # stale fencing token kept out of the store, and worker slots
        # retired for flapping.
        "worker_restarts",
        "lease_expiries",
        "steals",
        "stale_results_rejected",
        "workers_degraded",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {name: 0 for name in self._COUNTERS}
        self.queue_wait = LatencyHistogram()
        self.run = LatencyHistogram()
        self.submit_to_complete = LatencyHistogram()

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def observe_job(
        self,
        queued_s: Optional[float],
        run_s: Optional[float],
        total_s: Optional[float],
    ) -> None:
        """Record one finished job's latencies (None = unknown, e.g. a
        job resumed from a previous server life)."""
        with self._lock:
            if queued_s is not None:
                self.queue_wait.observe(queued_s)
            if run_s is not None:
                self.run.observe(run_s)
            if total_s is not None:
                self.submit_to_complete.observe(total_s)

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "latency": {
                    "queue_wait": self.queue_wait.to_dict(),
                    "run": self.run.to_dict(),
                    "submit_to_complete": self.submit_to_complete.to_dict(),
                },
            }
