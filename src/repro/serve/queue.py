"""Durable, crash-safe job queue.

The queue is a key → :class:`~repro.serve.job.Job` map with a dispatch
order (priority tiers, FIFO inside a tier, fair-share across clients)
and an on-disk journal.  Persistence reuses the resilience layer's
:class:`~repro.resilience.journal.CheckpointJournal` — atomic
whole-file rewrites, versioned, merged, never trusted — so the
durability guarantees are exactly the ones the checkpoint/resume path
already proves:

* **Crash-safe submit.**  A job is journaled *before* the submitter is
  acknowledged; after any crash the journal contains every
  acknowledged job exactly once (an unacknowledged one either made the
  atomic rewrite or left no trace — never a torn record).
* **Dedup by content.**  The job key is content-addressed over the
  result-determining spec fields, so resubmitting the same computation
  returns the existing job (whatever its state) instead of queueing a
  duplicate.
* **Restart = requeue.**  On restart, jobs journaled ``running`` are
  demoted to ``queued`` (the flow they were running is deterministic
  and its completed stages sit in the artifact cache, so the rerun is
  cheap and byte-identical); terminal jobs stay terminal.

All public methods are thread-safe — the HTTP loop submits and
cancels while the scheduler thread claims and finishes.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

from pathlib import Path

from repro.resilience.journal import CheckpointJournal
from repro.runtime.metrics import RuntimeStats
from repro.trace.span import Tracer
from repro.serve.job import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    Job,
    JobSpec,
)


class JobQueue:
    """Priority/FIFO job queue with a durable journal.

    Parameters
    ----------
    journal_path:
        The queue journal file (atomic whole-file rewrites).  Pass the
        same path to a restarted server to resume the queue.
    stats / tracer:
        Optional :class:`~repro.runtime.metrics.RuntimeStats` /
        :class:`~repro.trace.span.Tracer` forwarded to the journal so
        checkpoint writes are counted and traced like every other.
    """

    def __init__(
        self,
        journal_path: Union[str, Path],
        stats: Optional[RuntimeStats] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._journal = CheckpointJournal(
            journal_path, stats=stats, tracer=tracer
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next_seq = 0
        #: Fair-share bookkeeping: the claim round at which each client
        #: was last served (lower = served longer ago = goes first).
        self._last_served: Dict[str, int] = {}
        self._claim_round = 0
        self._restore()

    # -- persistence --------------------------------------------------------

    def _restore(self) -> None:
        """Load the journal; demote ``running`` jobs back to ``queued``."""
        for key in self._journal.keys():
            payload = self._journal.get(key)
            if payload is None:
                continue
            try:
                job = Job.from_dict(payload)
            except Exception:
                continue  # foreign or stale record: recompute, never trust
            if job.key != key:
                continue
            if job.state == RUNNING:
                job.state = QUEUED
                self._journal.record(key, job.to_dict())
            self._jobs[key] = job
            self._next_seq = max(self._next_seq, job.seq + 1)

    def _checkpoint(self, job: Job) -> None:
        self._journal.record(job.key, job.to_dict())

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Accept ``spec``; returns ``(job, created)``.

        ``created`` is False when a job with the same content key
        already exists (dedup) — the existing job is returned whatever
        its state, so a client resubmitting finished work is handed
        the finished job.  A previously cancelled or shed job *is*
        revived (requeued under its old key): cancellation removes
        work from the queue, it does not ban the computation.
        """
        key = spec.key()
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None:
                if existing.state in (CANCELLED, SHED):
                    existing.spec = spec
                    existing.state = QUEUED
                    existing.error = None
                    existing.seq = self._next_seq
                    self._next_seq += 1
                    self._checkpoint(existing)
                    return existing, True
                return existing, False
            job = Job(spec=spec, seq=self._next_seq)
            self._next_seq += 1
            # Journal *before* acknowledging: an acked job survives any
            # crash; a crash before this line leaves no trace at all.
            self._jobs[key] = job
            self._checkpoint(job)
            return job, True

    # -- dispatch -----------------------------------------------------------

    def _queued_jobs(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.state == QUEUED]

    def claim_next(self) -> Optional[Job]:
        """Claim the next job to run (marks it ``running``).

        Order: highest priority tier first; inside the tier, the
        *client served longest ago* goes first (fair share — one chatty
        client cannot starve the others), and FIFO within a client.
        """
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            top = max(j.spec.priority for j in queued)
            tier = [j for j in queued if j.spec.priority == top]
            job = min(
                tier,
                key=lambda j: (self._last_served.get(j.spec.client, -1), j.seq),
            )
            self._claim_round += 1
            self._last_served[job.spec.client] = self._claim_round
            job.state = RUNNING
            job.attempts += 1
            self._checkpoint(job)
            return job

    def finish(
        self,
        key: str,
        ok: bool,
        error: Optional[str] = None,
        stats: Optional[Dict[str, float]] = None,
    ) -> Optional[Job]:
        """Mark a running job ``done`` (or ``failed``)."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state != RUNNING:
                return None
            job.state = DONE if ok else FAILED
            job.error = error
            if stats:
                job.stats = dict(stats)
            self._checkpoint(job)
            return job

    # -- cancellation and shedding ------------------------------------------

    def cancel(self, key: str) -> Optional[Job]:
        """Cancel a *queued* job; running or terminal jobs are left
        alone (returns None for them)."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state != QUEUED:
                return None
            job.state = CANCELLED
            self._checkpoint(job)
            return job

    def shed_lowest(self, below_priority: int) -> Optional[Job]:
        """Evict the lowest-priority queued job, if one sits strictly
        below ``below_priority`` (admission control's load shedding).

        The *youngest* job of the lowest tier goes — shedding the
        oldest would starve work that has already waited longest.
        """
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            bottom = min(j.spec.priority for j in queued)
            if bottom >= below_priority:
                return None
            victim = max(
                (j for j in queued if j.spec.priority == bottom),
                key=lambda j: j.seq,
            )
            victim.state = SHED
            self._checkpoint(victim)
            return victim

    # -- inspection ---------------------------------------------------------

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def jobs(self) -> List[Job]:
        """Every known job, in dispatch order then terminal states."""
        with self._lock:
            return sorted(
                self._jobs.values(),
                key=lambda j: (j.terminal, j.sort_key()),
            )

    def depth(self) -> int:
        """Number of jobs waiting to run."""
        with self._lock:
            return len(self._queued_jobs())

    def running(self) -> List[Job]:
        with self._lock:
            return [j for j in self._jobs.values() if j.state == RUNNING]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero states omitted)."""
        with self._lock:
            out: Dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __repr__(self) -> str:
        return f"JobQueue({self._journal.path}, {len(self)} jobs)"
