"""Durable, crash-safe job queue with leased ownership.

The queue is a key → :class:`~repro.serve.job.Job` map with a dispatch
order (priority tiers, FIFO inside a tier, fair-share across clients)
and an on-disk journal.  Persistence reuses the resilience layer's
:class:`~repro.resilience.journal.CheckpointJournal` — atomic
whole-file rewrites, versioned, merged, never trusted — so the
durability guarantees are exactly the ones the checkpoint/resume path
already proves:

* **Crash-safe submit.**  A job is journaled *before* the submitter is
  acknowledged; after any crash the journal contains every
  acknowledged job exactly once (an unacknowledged one either made the
  atomic rewrite or left no trace — never a torn record).
* **Dedup by content.**  The job key is content-addressed over the
  result-determining spec fields, so resubmitting the same computation
  returns the existing job (whatever its state) instead of queueing a
  duplicate.
* **Restart = requeue.**  On restart, jobs journaled ``running`` are
  demoted to ``queued`` (the flow they were running is deterministic
  and its completed stages sit in the artifact cache, so the rerun is
  cheap and byte-identical); terminal jobs stay terminal.

Multi-worker service mode adds two layers on top:

* **Leases** (:mod:`repro.serve.lease`).  :meth:`claim` grants the
  claiming worker a journaled lease — monotonic fencing token plus
  deadline — instead of bare ownership.  :meth:`finish` and
  :meth:`requeue` are token-fenced: a worker whose lease expired (or
  whose job the supervisor already reclaimed) presents a stale token
  and is rejected, so no result is ever double-applied and no job is
  double-demoted.  The token floor is restored past the journal's
  high-water mark on restart, so fencing survives server lives.
* **Journal shards** (:mod:`repro.resilience.shards`).  Transitions of
  a leased job are journaled into its owner's shard (single writer per
  file); submits, demotions and unleased transitions go to the main
  journal.  A restart merges main + shards deterministically by record
  ``version``, compacts the merge back into the main journal in one
  atomic rewrite, and clears the shards.

All public methods are thread-safe — the HTTP loop submits and
cancels while scheduler/supervisor threads claim and finish.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from pathlib import Path

from repro.resilience.chaos import ChaosSpec
from repro.resilience.journal import CheckpointJournal
from repro.resilience.shards import ShardedJournal
from repro.runtime.metrics import RuntimeStats
from repro.trace.span import Tracer
from repro.serve.job import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    Job,
    JobSpec,
)
from repro.serve.lease import Lease, LeaseTable, shard_of


class JobQueue:
    """Priority/FIFO job queue with a durable journal and lease table.

    Parameters
    ----------
    journal_path:
        The main queue journal file (atomic whole-file rewrites).  Pass
        the same path to a restarted server to resume the queue.
    stats / tracer:
        Optional :class:`~repro.runtime.metrics.RuntimeStats` /
        :class:`~repro.trace.span.Tracer` forwarded to the journal so
        checkpoint writes are counted and traced like every other.
    shard_root:
        Directory for per-worker journal shards.  None (the default)
        keeps the single-journal behaviour of the in-process scheduler;
        a restarted queue still merges any shards it finds there.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosSpec`; its
        ``lease_expire`` mode grants already-expired leases and its
        ``journal_tear`` mode drops individual shard writes.
    clock:
        Monotonic clock for lease deadlines (injectable for tests).
    """

    def __init__(
        self,
        journal_path: Union[str, Path],
        stats: Optional[RuntimeStats] = None,
        tracer: Optional[Tracer] = None,
        shard_root: Optional[Union[str, Path]] = None,
        chaos: Optional[ChaosSpec] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._journal = CheckpointJournal(
            journal_path, stats=stats, tracer=tracer
        )
        self.shards: Optional[ShardedJournal] = (
            None
            if shard_root is None
            else ShardedJournal(
                shard_root, stats=stats, tracer=tracer, chaos=chaos
            )
        )
        self._chaos = chaos
        self.leases = LeaseTable(clock=clock)
        #: Token-fenced finishes rejected as stale (metrics surface this).
        self.stale_finishes = 0
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next_seq = 0
        #: Fair-share bookkeeping: the claim round at which each client
        #: was last served (lower = served longer ago = goes first).
        self._last_served: Dict[str, int] = {}
        self._claim_round = 0
        self._restore()

    # -- persistence --------------------------------------------------------

    def _merged_records(self) -> Dict[str, dict]:
        """Main journal + shards, per key the highest-version record.

        Ties between the main journal and a shard go to the shard: the
        main journal holds the *compacted* state of an earlier life,
        so an equal-version shard record is the same transition or a
        later one — never an older one.
        """
        best: Dict[str, Tuple[int, int, dict]] = {}
        for key in self._journal.keys():
            payload = self._journal.get(key)
            if payload is not None:
                best[key] = (_record_version(payload), 0, payload)
        if self.shards is not None:
            for key, payload in sorted(self.shards.merged().items()):
                rank = (_record_version(payload), 1)
                current = best.get(key)
                if current is None or rank > (current[0], current[1]):
                    best[key] = (rank[0], rank[1], payload)
        return {key: payload for key, (_, _, payload) in best.items()}

    def _restore(self) -> None:
        """Merge journal + shards; demote ``running`` jobs to ``queued``.

        When shards are in play the merged state is compacted back into
        the main journal in one atomic rewrite and the shards cleared,
        so the next restart starts from a single consistent file.
        """
        for key, payload in sorted(self._merged_records().items()):
            try:
                job = Job.from_dict(payload)
            except Exception:
                continue  # foreign or stale record: recompute, never trust
            if job.key != key:
                continue
            if job.lease_token is not None:
                # Restore the fencing floor past every token ever granted.
                self.leases.observe_token(job.lease_token)
            if job.state == RUNNING:
                job.state = QUEUED
                job.owner = None
                job.lease_token = None
                job.version += 1
                if self.shards is None:
                    self._journal.record(key, job.to_dict())
            self._jobs[key] = job
            self._next_seq = max(self._next_seq, job.seq + 1)
        if self.shards is not None:
            self._journal.record_many(
                {key: job.to_dict() for key, job in sorted(self._jobs.items())}
            )
            self.shards.clear()

    def _checkpoint(self, job: Job) -> None:
        """Journal ``job`` — into its owner's shard when it has one."""
        if self.shards is not None and job.owner is not None:
            self.shards.record(job.owner, job.key, job.to_dict())
        else:
            self._journal.record(job.key, job.to_dict())

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[Job, bool]:
        """Accept ``spec``; returns ``(job, created)``.

        ``created`` is False when a job with the same content key
        already exists (dedup) — the existing job is returned whatever
        its state, so a client resubmitting finished work is handed
        the finished job.  A previously cancelled or shed job *is*
        revived (requeued under its old key): cancellation removes
        work from the queue, it does not ban the computation.
        """
        key = spec.key()
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None:
                if existing.state in (CANCELLED, SHED):
                    existing.spec = spec
                    existing.state = QUEUED
                    existing.error = None
                    existing.seq = self._next_seq
                    existing.version += 1
                    self._next_seq += 1
                    self._checkpoint(existing)
                    return existing, True
                return existing, False
            job = Job(spec=spec, seq=self._next_seq)
            self._next_seq += 1
            # Journal *before* acknowledging: an acked job survives any
            # crash; a crash before this line leaves no trace at all.
            self._jobs[key] = job
            self._checkpoint(job)
            return job, True

    # -- dispatch -----------------------------------------------------------

    def _queued_jobs(self) -> List[Job]:
        return [j for j in self._jobs.values() if j.state == QUEUED]

    def _select(self, pool: List[Job]) -> Job:
        """Pick (and account) the next job from a non-empty pool.

        Order: highest priority tier first; inside the tier, the
        *client served longest ago* goes first (fair share — one chatty
        client cannot starve the others), and FIFO within a client.
        """
        top = max(j.spec.priority for j in pool)
        tier = [j for j in pool if j.spec.priority == top]
        job = min(
            tier,
            key=lambda j: (self._last_served.get(j.spec.client, -1), j.seq),
        )
        self._claim_round += 1
        self._last_served[job.spec.client] = self._claim_round
        return job

    def claim_next(self) -> Optional[Job]:
        """Claim the next job to run, unleased (in-process scheduler).

        The job is marked ``running`` with no owner and no lease; the
        scheduler thread that claimed it cannot outlive its server, so
        a deadline would only expire work that is still progressing.
        """
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            job = self._select(queued)
            job.state = RUNNING
            job.attempts += 1
            job.version += 1
            self._checkpoint(job)
            return job

    def claim(
        self,
        owner: str,
        ttl_s: Optional[float],
        shard: Optional[int] = None,
        total_shards: int = 1,
        steal: bool = True,
    ) -> Optional[Tuple[Job, Lease]]:
        """Claim the next job under a lease for worker ``owner``.

        ``shard``/``total_shards`` steer the claim to the worker's home
        shard (:func:`~repro.serve.lease.shard_of` placement); when the
        home shard is empty and ``steal`` is set, the claim crosses
        shards rather than idling (the returned lease is marked
        ``stolen``).  Chaos's ``lease_expire`` mode replaces the ttl
        with zero, granting a lease that is already past its deadline.
        """
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            if shard is None:
                pool, stolen = queued, False
            else:
                local = [
                    j
                    for j in queued
                    if shard_of(j.key, total_shards) == shard
                ]
                if local:
                    pool, stolen = local, False
                elif steal:
                    pool, stolen = queued, True
                else:
                    return None
            job = self._select(pool)
            attempt = job.attempts + 1
            ttl = ttl_s
            if self._chaos is not None and self._chaos.decide(
                "lease_expire", job.key, owner, attempt
            ):
                ttl = 0.0
            lease = self.leases.grant(job.key, owner, ttl, stolen=stolen)
            job.state = RUNNING
            job.attempts = attempt
            job.owner = owner
            job.lease_token = lease.token
            job.version += 1
            self._checkpoint(job)
            return job, lease

    def renew(self, key: str, owner: str, token: int) -> bool:
        """Extend ``owner``'s lease on ``key`` (heartbeat); token-fenced."""
        with self._lock:
            return self.leases.renew(key, owner, token)

    def lease_valid(self, key: str, token: int) -> bool:
        """Whether ``token`` is still the current lease on ``key``.

        The supervisor checks this *before* persisting a worker's
        result bytes, so a fenced-off worker's payload never reaches
        the result store at all.
        """
        with self._lock:
            return self.leases.validate(key, token)

    def finish(
        self,
        key: str,
        ok: bool,
        error: Optional[str] = None,
        stats: Optional[Dict[str, float]] = None,
        token: Optional[int] = None,
    ) -> Optional[Job]:
        """Mark a running job ``done`` (or ``failed``).

        For leased jobs the worker's fencing ``token`` must match the
        *current* lease: a worker whose lease expired — or whose job
        was requeued and re-leased to someone else — is rejected, and
        the rejection counted in :attr:`stale_finishes`.  The unleased
        form (``token=None``) is refused on leased jobs.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state != RUNNING:
                if token is not None:
                    self.stale_finishes += 1
                return None
            lease = self.leases.get(key)
            if token is None:
                if lease is not None:
                    self.stale_finishes += 1
                    return None
            else:
                if lease is None or lease.token != token:
                    self.stale_finishes += 1
                    return None
                self.leases.release(key, token)
            job.state = DONE if ok else FAILED
            job.error = error
            if stats:
                job.stats = dict(stats)
            job.lease_token = None
            job.version += 1
            self._checkpoint(job)
            return job

    def requeue(self, key: str, token: int) -> bool:
        """Demote a leased running job back to ``queued``; idempotent.

        Only the holder of the *current* fencing token can demote, and
        demotion clears the lease — so two recovery paths racing on
        the same claim (supervisor restart sweep and signal-time drain,
        say) demote **exactly once**: the second presents a token that
        no longer matches and is a no-op.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state != RUNNING:
                return False
            lease = self.leases.get(key)
            if lease is None or lease.token != token:
                return False
            self.leases.release(key, token)
            self._demote(job)
            return True

    def expire_leases(self, now: Optional[float] = None) -> List[Lease]:
        """Reclaim every job whose lease deadline has passed.

        Expired claims are demoted back to ``queued`` (lease cleared,
        so the late worker's token is fenced off) and the reclaimed
        leases returned for the supervisor's metrics.
        """
        with self._lock:
            reclaimed: List[Lease] = []
            for lease in self.leases.expired(now):
                self.leases.release(lease.key, lease.token)
                job = self._jobs.get(lease.key)
                if job is not None and job.state == RUNNING:
                    self._demote(job)
                reclaimed.append(lease)
            return reclaimed

    def _demote(self, job: Job) -> None:
        """running → queued (lock held; lease already released)."""
        job.state = QUEUED
        job.owner = None
        job.lease_token = None
        job.version += 1
        self._checkpoint(job)

    # -- cancellation and shedding ------------------------------------------

    def cancel(self, key: str) -> Optional[Job]:
        """Cancel a *queued* job; running or terminal jobs are left
        alone (returns None for them)."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None or job.state != QUEUED:
                return None
            job.state = CANCELLED
            job.version += 1
            self._checkpoint(job)
            return job

    def shed_lowest(self, below_priority: int) -> Optional[Job]:
        """Evict the lowest-priority queued job, if one sits strictly
        below ``below_priority`` (admission control's load shedding).

        The *youngest* job of the lowest tier goes — shedding the
        oldest would starve work that has already waited longest.
        """
        with self._lock:
            queued = self._queued_jobs()
            if not queued:
                return None
            bottom = min(j.spec.priority for j in queued)
            if bottom >= below_priority:
                return None
            victim = max(
                (j for j in queued if j.spec.priority == bottom),
                key=lambda j: j.seq,
            )
            victim.state = SHED
            victim.version += 1
            self._checkpoint(victim)
            return victim

    # -- inspection ---------------------------------------------------------

    def get(self, key: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(key)

    def jobs(self) -> List[Job]:
        """Every known job, in dispatch order then terminal states."""
        with self._lock:
            return sorted(
                self._jobs.values(),
                key=lambda j: (j.terminal, j.sort_key()),
            )

    def depth(self) -> int:
        """Number of jobs waiting to run."""
        with self._lock:
            return len(self._queued_jobs())

    def running(self) -> List[Job]:
        with self._lock:
            return [j for j in self._jobs.values() if j.state == RUNNING]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero states omitted)."""
        with self._lock:
            out: Dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __repr__(self) -> str:
        return f"JobQueue({self._journal.path}, {len(self)} jobs)"


def _record_version(payload: dict) -> int:
    try:
        return int(payload.get("version", 0))
    except (TypeError, ValueError):
        return 0
