"""Admission control and backpressure.

The server promises two things under load: an *accepted* job is never
dropped, and an over-limit client finds out in milliseconds — with a
machine-readable ``Retry-After`` — instead of queueing work the server
cannot honour.  Three mechanisms, applied in order at submit time:

1. **Drain gate.**  A draining server admits nothing (503); queued and
   running work is still completed/persisted.
2. **Per-client token bucket.**  Each client holds ``burst`` tokens,
   refilled at ``rate`` per second; an empty bucket is a 429 with the
   exact time until the next token.
3. **Bounded queue with load shedding.**  When the queue is full, a
   submission that outranks the lowest queued priority evicts that
   lowest-priority job (it is marked ``shed``; its client may resubmit)
   and is admitted in its place; otherwise the submission is refused
   with 503 and a depth-proportional Retry-After.

Clocks here are :func:`time.monotonic` — admission timing is
operational, never part of a result.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple

from repro.serve.job import Job, JobSpec

DEFAULT_QUEUE_CAPACITY = 64
DEFAULT_RATE_PER_S = 20.0
DEFAULT_BURST = 20

#: Retry-After suggested per queued job ahead when the queue is full.
_RETRY_S_PER_QUEUED_JOB = 0.25
_MIN_RETRY_S = 0.05


class TokenBucket:
    """The classic token bucket: ``burst`` capacity, ``rate``/s refill."""

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate_per_s
        )
        self._stamp = now

    def take(self) -> float:
        """Consume one token; returns 0.0, or the seconds until one
        would be available (the Retry-After) when the bucket is empty."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        if self.rate_per_s <= 0.0:
            return float("inf")
        return (1.0 - self._tokens) / self.rate_per_s


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one submission attempt.

    ``status`` mirrors HTTP: 202 admitted (201-ish: a new job), 200
    deduplicated onto an existing job, 429 rate-limited, 503 saturated
    or draining.  ``retry_after_s`` is meaningful for 429/503.
    ``shed`` names the job evicted to make room, if any.
    """

    status: int
    reason: str
    retry_after_s: float = 0.0
    job: Optional[Job] = None
    shed: Optional[Job] = None

    @property
    def admitted(self) -> bool:
        return self.status in (200, 202)


class AdmissionController:
    """Applies the drain gate, rate limits and the queue bound."""

    def __init__(
        self,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        rate_per_s: float = DEFAULT_RATE_PER_S,
        burst: int = DEFAULT_BURST,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_capacity < 1:
            from repro.errors import ServeError

            raise ServeError("queue capacity must be >= 1")
        self.queue_capacity = queue_capacity
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.draining = False

    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst, self._clock)
            self._buckets[client] = bucket
        return bucket

    def admit(self, spec: JobSpec, queue: "JobQueueLike") -> AdmissionDecision:
        """Decide one submission and, when admitted, enqueue it."""
        with self._lock:
            if self.draining:
                return AdmissionDecision(
                    status=503,
                    reason="server is draining; resubmit to the next instance",
                    retry_after_s=1.0,
                )
            retry = self._bucket(spec.client).take()
            if retry > 0.0:
                return AdmissionDecision(
                    status=429,
                    reason=f"client {spec.client!r} is over its rate limit",
                    retry_after_s=max(retry, _MIN_RETRY_S),
                )
            shed: Optional[Job] = None
            depth = queue.depth()
            if depth >= self.queue_capacity:
                # Full: make room by shedding strictly lower-priority
                # work, or refuse with a depth-proportional backoff.
                shed = queue.shed_lowest(spec.priority)
                if shed is None:
                    return AdmissionDecision(
                        status=503,
                        reason=(
                            f"queue is full ({depth} jobs) and nothing "
                            f"queued ranks below priority {spec.priority}"
                        ),
                        retry_after_s=max(
                            depth * _RETRY_S_PER_QUEUED_JOB, _MIN_RETRY_S
                        ),
                    )
            job, created = queue.submit(spec)
            return AdmissionDecision(
                status=202 if created else 200,
                reason="admitted" if created else "deduplicated",
                job=job,
                shed=shed,
            )

    def start_draining(self) -> None:
        """Refuse all further submissions (graceful drain)."""
        with self._lock:
            self.draining = True


class JobQueueLike(Protocol):
    """Structural interface :meth:`AdmissionController.admit` needs —
    satisfied by :class:`~repro.serve.queue.JobQueue` and by the model
    queues the property tests drive the controller against."""

    def depth(self) -> int: ...  # pragma: no cover - protocol

    def shed_lowest(
        self, below_priority: int
    ) -> Optional[Job]: ...  # pragma: no cover - protocol

    def submit(
        self, spec: JobSpec
    ) -> Tuple[Job, bool]: ...  # pragma: no cover - protocol
