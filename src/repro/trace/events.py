"""Structured trace events and their JSONL log.

A :class:`TraceEvent` is one discrete occurrence inside a trace — a
cache hit, a worker retry, a checkpoint write, an ``Ω`` acceptance —
attached to the span that was open when it happened.  Events come in
two determinism classes:

* **deterministic** kinds (:data:`DETERMINISTIC_KINDS`) are a pure
  function of the workload: the same flow emits the same events in the
  same order whether it runs serially, on a worker pool, from a warm
  cache, or under chaos injection.  They survive trace normalization
  (:mod:`repro.trace.normalize`) and are what the golden-trace tests
  compare.
* **runtime** kinds (:data:`RUNTIME_KINDS`) describe *how* the results
  were obtained — cache traffic, executor dispatch and recovery, chaos
  injections, checkpoint writes.  They vary with worker count, cache
  temperature and injected failures, so normalization drops them.

The JSONL log (:func:`write_events_jsonl` / :func:`read_events_jsonl`)
stores one event per line, append-friendly and diff-friendly; the
round trip is exact because event attributes are coerced to JSON
scalars at creation time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.errors import TraceError

TRACE_FORMAT = 1
"""Version of the trace payload layout.  Exports carry it; loaders
reject anything else (recompute, never reinterpret)."""

DETERMINISTIC_KINDS = frozenset(
    {"note", "omega", "reverse", "stage", "generation", "front",
     "analysis", "prune"}
)
"""Event kinds that are identical for any execution strategy.  The
``generation`` / ``front`` kinds mark :mod:`repro.optimize` progress:
one event per search generation and one for the final Pareto front —
both pure functions of (circuit, config, seed).  The ``analysis`` /
``prune`` kinds summarise :mod:`repro.analysis.static` results and the
certified fault pre-prune — pure functions of (circuit, fault set),
whether computed fresh or replayed from the artifact cache."""

RUNTIME_KINDS = frozenset(
    {
        "cache_hit",
        "cache_miss",
        "cache_store",
        "cache_discard",
        "cache_evict",
        "cache_chaos",
        "task_retry",
        "task_timeout",
        "worker_crash",
        "pool_rebuild",
        "serial_replay",
        "corrupt_result",
        "executor_degraded",
        "checkpoint",
        "journal_skip",
        "job_queued",
        "job_admitted",
        "job_running",
        "job_done",
        "job_failed",
        "job_cancelled",
        "job_shed",
        "job_rejected",
        "job_requeued",
        "lease_expired",
        "stale_result_rejected",
        "worker_restart",
        "worker_degraded",
    }
)
"""Event kinds describing execution strategy, not results.  The
``job_*`` family marks the lifecycle of one :mod:`repro.serve` campaign
job (queued → admitted → running → done/failed/cancelled/shed), so a
served trace attributes every job in Perfetto; the supervisor adds the
recovery kinds (requeue, lease expiry, fencing, worker restarts)."""

EVENT_KINDS = DETERMINISTIC_KINDS | RUNTIME_KINDS

Scalar = Union[str, int, float, bool, None]


def coerce_attr(value: object) -> Scalar:
    """Reduce an attribute value to a JSON scalar.

    Scalars pass through; everything else is rendered with ``str`` so
    the JSONL round trip is exact by construction.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One discrete trace occurrence.

    Attributes
    ----------
    seq:
        Position in the tracer's global event order (0-based).
    kind:
        One of :data:`EVENT_KINDS`.
    span_id:
        Stable ID of the span that was open when the event fired.
    t_s:
        Seconds since the tracer's epoch (wall clock; stripped by
        normalization).
    attrs:
        JSON-scalar attributes.
    """

    seq: int
    kind: str
    span_id: str
    t_s: float
    attrs: Dict[str, Scalar] = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        """True when this event survives trace normalization."""
        return self.kind in DETERMINISTIC_KINDS

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (one JSONL line)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "span": self.span_id,
            "t_s": self.t_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: object) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise TraceError(f"trace event is not an object: {payload!r}")
        try:
            attrs = payload.get("attrs", {})
            if not isinstance(attrs, dict):
                raise TraceError(f"trace event attrs is not an object: {attrs!r}")
            return cls(
                seq=int(payload["seq"]),
                kind=str(payload["kind"]),
                span_id=str(payload["span"]),
                t_s=float(payload["t_s"]),
                attrs={str(k): coerce_attr(v) for k, v in attrs.items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace event: {payload!r}") from exc


def write_events_jsonl(events: Iterable[TraceEvent], path: Union[str, Path]) -> int:
    """Write ``events`` to ``path``, one JSON object per line.

    Returns the number of events written.  Raises :class:`TraceError`
    on an unwritable path (the clean one-line CLI error contract).
    """
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    try:
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    except OSError as exc:
        raise TraceError(f"cannot write event log {path}: {exc}") from exc
    return len(lines)


def read_events_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSONL event log written by :func:`write_events_jsonl`."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TraceError(f"cannot read event log {path}: {exc}") from exc
    events: List[TraceEvent] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"{path}: line {line_no} is not valid JSON: {exc}"
            ) from exc
        events.append(TraceEvent.from_dict(payload))
    return events
