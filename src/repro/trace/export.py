"""Trace exporters: human text tree, JSON payload, Chrome trace events.

Three views of the same trace:

* :func:`render_text` — indented tree with wall/CPU seconds and the
  per-span counter deltas; what ``repro trace show`` prints.
* :func:`trace_payload` / :func:`write_trace` — the canonical JSON
  artifact (versioned with
  :data:`~repro.trace.events.TRACE_FORMAT`); round-trips through
  :func:`load_trace`.
* :func:`chrome_trace` — the Chrome trace-event format (`Trace Event
  Format`_, the JSON object form with a ``traceEvents`` array) that
  Perfetto and ``chrome://tracing`` load directly.  Spans become
  complete (``"ph": "X"``) events with microsecond timestamps; trace
  events become instants (``"ph": "i"``).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import TraceError
from repro.trace.events import TRACE_FORMAT, TraceEvent
from repro.trace.span import Span

EXPORT_FORMATS = ("text", "json", "chrome")
"""Accepted values for ``--trace-format``."""


# -- canonical JSON artifact ------------------------------------------------


def trace_payload(
    root: Span, events: Iterable[TraceEvent]
) -> Dict[str, object]:
    """The canonical JSON-serializable trace artifact."""
    return {
        "format": TRACE_FORMAT,
        "spans": root.to_dict(),
        "events": [e.to_dict() for e in events],
    }


def load_trace(path: Union[str, Path]) -> Tuple[Span, List[TraceEvent]]:
    """Read a JSON trace artifact back into a span tree and events."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    except ValueError as exc:
        raise TraceError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceError(f"{path} is not a trace artifact (not an object)")
    fmt = payload.get("format")
    if fmt != TRACE_FORMAT:
        raise TraceError(
            f"{path} has trace format {fmt!r}; this build reads format "
            f"{TRACE_FORMAT} (regenerate the trace)"
        )
    root = Span.from_dict(payload.get("spans"))
    raw_events = payload.get("events", [])
    if not isinstance(raw_events, list):
        raise TraceError(f"{path}: events is not a list")
    events = [TraceEvent.from_dict(e) for e in raw_events]
    return root, events


# -- human text tree --------------------------------------------------------


def _format_counters(deltas: Dict[str, float]) -> str:
    if not deltas:
        return ""
    parts = []
    for name in sorted(deltas):
        value = deltas[name]
        if value == int(value):
            parts.append(f"{name}=+{int(value)}")
        else:
            parts.append(f"{name}=+{value:.3f}")
    return "  [" + " ".join(parts) + "]"


def _format_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    return " (" + ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + ")"


def render_text(root: Span, events: Sequence[TraceEvent] = ()) -> str:
    """Indented span tree with timings, counters, and an event count."""
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        marker = "*" if span.category == "task" else "-"
        lines.append(
            f"{'  ' * depth}{marker} {span.name}{_format_attrs(dict(span.attrs))}"
            f"  wall={span.duration_s:.3f}s cpu={span.cpu_s:.3f}s"
            f"{_format_counters(span.counter_deltas)}"
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    if events:
        kinds: Dict[str, int] = {}
        for event in events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(f"{k}={kinds[k]}" for k in sorted(kinds))
        lines.append(f"events: {len(events)} ({summary})")
    return "\n".join(lines) + "\n"


# -- Chrome trace-event format ----------------------------------------------


def chrome_trace(
    root: Span, events: Iterable[TraceEvent]
) -> Dict[str, object]:
    """The trace as a Chrome trace-event JSON object.

    Uses the JSON *object* form (``{"traceEvents": [...]}``) so
    metadata can ride along; Perfetto accepts both forms.  All spans
    land on pid 1 / tid 1 — the trace models one logical flow, with
    worker busy time already merged in as ``task`` spans.
    """
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for span in root.walk():
        trace_events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": span.name,
                "cat": span.category,
                "ts": round(span.t_start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "args": {
                    "id": span.span_id,
                    **dict(span.attrs),
                    **{f"+{k}": v for k, v in span.counter_deltas.items()},
                },
            }
        )
    for event in events:
        trace_events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": 1,
                "name": event.kind,
                "cat": "deterministic" if event.deterministic else "runtime",
                "ts": round(event.t_s * 1e6, 3),
                "s": "t",
                "args": {"span": event.span_id, **dict(event.attrs)},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# -- unified writer ---------------------------------------------------------


def export_trace(
    root: Span,
    events: Sequence[TraceEvent],
    path: Union[str, Path],
    fmt: str = "json",
) -> None:
    """Write the trace to ``path`` in ``fmt`` (text, json, or chrome)."""
    if fmt == "text":
        text = render_text(root, events)
    elif fmt == "json":
        text = json.dumps(trace_payload(root, events), sort_keys=True, indent=1)
        text += "\n"
    elif fmt == "chrome":
        text = json.dumps(chrome_trace(root, events), sort_keys=True)
        text += "\n"
    else:
        raise TraceError(
            f"unknown trace format {fmt!r}; expected one of "
            f"{', '.join(EXPORT_FORMATS)}"
        )
    try:
        Path(path).write_text(text)
    except OSError as exc:
        raise TraceError(f"cannot write trace {path}: {exc}") from exc
