"""Per-phase timing comparison for the perf-regression harness.

The benchmark harness stores, per run, the wall seconds of each flow
phase (``{"phases": {"procedure": 12.3, ...}}``).  A later run compares
against that artifact with :func:`compare_phases`: a phase *regresses*
when its duration grows beyond ``tolerance`` (a fraction, default 25%)
**and** the growth is at least ``min_seconds`` — tiny phases jitter by
large ratios without meaning anything.

Phase durations come from the trace itself via
:func:`phase_durations`, which aggregates ``flow``-category spans by
name (many ``mine_candidates`` spans, one total).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import TraceError
from repro.trace.span import Span

DEFAULT_TOLERANCE = 0.25
"""Allowed fractional growth of a phase before it counts as a regression."""

DEFAULT_MIN_SECONDS = 0.05
"""Absolute growth floor: smaller deltas are noise, never regressions."""


def phase_durations(root: Span) -> Dict[str, float]:
    """Total wall seconds per ``flow``-span name across the tree."""
    totals: Dict[str, float] = {}
    for span in root.walk():
        if span.category != "flow":
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
    return totals


def load_phases(path: Union[str, Path]) -> Dict[str, float]:
    """Read a per-phase timing artifact.

    Accepts the benchmark artifact form (``{"phases": {...}}``,
    possibly with extra bookkeeping keys), the same wrapped in the
    versioned benchmark envelope (``{"schema_version": ...,
    "payload": {...}}``), and a full JSON trace artifact
    (``{"format": 1, "spans": ...}``), so ``repro trace compare``
    works against any of them.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"baseline not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise TraceError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise TraceError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceError(f"{path} is not a timing artifact (not an object)")
    if "spans" in payload:
        from repro.trace.export import load_trace

        root, _ = load_trace(path)
        return phase_durations(root)
    if "schema_version" in payload and isinstance(
        payload.get("payload"), dict
    ):
        payload = payload["payload"]
    phases = payload.get("phases")
    if not isinstance(phases, dict):
        raise TraceError(
            f"{path} has no 'phases' table and is not a trace artifact"
        )
    try:
        return {str(name): float(value) for name, value in phases.items()}
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed phase table: {exc}") from exc


def write_phases(
    phases: Dict[str, float], path: Union[str, Path], **extra: object
) -> None:
    """Write a per-phase timing artifact for later comparison."""
    payload: Dict[str, object] = {"phases": dict(phases)}
    payload.update(extra)
    try:
        Path(path).write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    except OSError as exc:
        raise TraceError(f"cannot write {path}: {exc}") from exc


@dataclass(frozen=True)
class PhaseDelta:
    """One phase's baseline-vs-current comparison."""

    name: str
    baseline_s: float
    current_s: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` for a phase new in current)."""
        if self.baseline_s <= 0.0:
            return float("inf") if self.current_s > 0.0 else 1.0
        return self.current_s / self.baseline_s

    def format(self) -> str:
        """One human-readable comparison line."""
        flag = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name:<24} {self.baseline_s:>9.3f}s -> "
            f"{self.current_s:>9.3f}s  x{self.ratio:5.2f}  {flag}"
        )


def compare_phases(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[PhaseDelta]:
    """Compare two phase tables; sorted by name, regressions flagged.

    A phase present only in ``current`` is compared against a zero
    baseline (it regresses only if it alone exceeds ``min_seconds``);
    a phase present only in ``baseline`` shows as dropping to zero.
    """
    if tolerance < 0.0:
        raise TraceError(f"tolerance must be >= 0, got {tolerance}")
    deltas: List[PhaseDelta] = []
    for name in sorted(set(baseline) | set(current)):
        base = float(baseline.get(name, 0.0))
        cur = float(current.get(name, 0.0))
        grew = cur - base
        regressed = grew > max(base * tolerance, min_seconds)
        deltas.append(
            PhaseDelta(name=name, baseline_s=base, current_s=cur, regressed=regressed)
        )
    return deltas


def regressions(deltas: List[PhaseDelta]) -> List[PhaseDelta]:
    """The flagged subset of :func:`compare_phases` output."""
    return [d for d in deltas if d.regressed]
