"""Trace-driven observability for the repro flows.

The package records *where* a run spent its effort: a hierarchical
span tree (:class:`~repro.trace.span.Tracer`) attributing wall time,
CPU time and runtime-counter deltas to each phase of the Section-4
flow, plus a structured event log capturing cache traffic, executor
recovery, chaos injections and checkpoint writes.

Instrumented code never talks to a tracer directly — it goes through
the two helpers below, which are no-ops when tracing is off:

>>> with traced(runtime, "mine_candidates", u=u, l_s=l_s):
...     candidates = ...
>>> trace_event(runtime, "omega", u=u, row=row)

``runtime`` here is anything with an optional ``tracer`` attribute
(a :class:`~repro.runtime.context.RuntimeContext`) — or ``None``.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from repro.trace.compare import (
    PhaseDelta,
    compare_phases,
    load_phases,
    phase_durations,
    regressions,
    write_phases,
)
from repro.trace.events import (
    DETERMINISTIC_KINDS,
    EVENT_KINDS,
    RUNTIME_KINDS,
    TRACE_FORMAT,
    TraceEvent,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.trace.export import (
    EXPORT_FORMATS,
    chrome_trace,
    export_trace,
    load_trace,
    render_text,
    trace_payload,
)
from repro.trace.normalize import (
    normalize_events,
    normalize_span,
    normalize_trace,
    normalized_json,
)
from repro.trace.span import ROOT_SPAN_ID, Span, Tracer, span_id_for

__all__ = [
    "DETERMINISTIC_KINDS",
    "EVENT_KINDS",
    "EXPORT_FORMATS",
    "PhaseDelta",
    "ROOT_SPAN_ID",
    "RUNTIME_KINDS",
    "Span",
    "TRACE_FORMAT",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "compare_phases",
    "export_trace",
    "load_phases",
    "load_trace",
    "normalize_events",
    "normalize_span",
    "normalize_trace",
    "normalized_json",
    "phase_durations",
    "read_events_jsonl",
    "regressions",
    "render_text",
    "span_id_for",
    "trace_event",
    "trace_payload",
    "traced",
    "tracer_of",
    "write_events_jsonl",
    "write_phases",
]


def tracer_of(runtime: object) -> Optional[Tracer]:
    """The tracer attached to ``runtime``, if any (``runtime`` may be None)."""
    return getattr(runtime, "tracer", None)


def traced(
    runtime: object,
    name: str,
    **attrs: object,
) -> ContextManager[Optional[Span]]:
    """A flow span under ``runtime``'s tracer, or a no-op without one."""
    tracer = tracer_of(runtime)
    if tracer is None:
        return nullcontext(None)

    @contextmanager
    def _span() -> Iterator[Optional[Span]]:
        with tracer.span(name, **attrs) as span:
            yield span

    return _span()


def trace_event(runtime: object, kind: str, **attrs: object) -> None:
    """Fire a trace event under ``runtime``'s tracer; no-op without one."""
    tracer = tracer_of(runtime)
    if tracer is not None:
        tracer.event(kind, **attrs)
