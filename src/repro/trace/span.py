"""Hierarchical span tracing with deterministic identities.

A :class:`Span` is one named, attributed interval of work; spans nest,
forming a tree rooted at the tracer's synthetic ``trace`` span.  Two
design rules make the tree usable for golden-trace testing:

* **Stable IDs.**  A span's ID is a digest of its *path* — the parent
  ID, the span name, and either an explicit ``key`` (worker-pool tasks
  use their task digest) or the occurrence index among same-named
  siblings.  Wall clock, PIDs and scheduling order never contribute,
  so the same workload produces the same IDs on every run, for any
  worker count.
* **Category split.**  ``flow`` spans mark phases of the algorithm
  (mining, screening, reverse-order compaction, ...) and are created
  at fixed program points — their tree is a pure function of the
  workload.  ``task`` spans mirror executor work units (which vary
  with cache temperature, worker count and chaos injection) and are
  dropped by normalization.

Each span records wall time (``time.perf_counter``), CPU time
(``time.process_time``) and — when the tracer is attached to a
:class:`~repro.runtime.metrics.RuntimeStats` — the delta of every
runtime counter over its interval, so a trace answers "where did the
simulations/cache hits/retries happen", not just "where did the time
go".
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import TraceError
from repro.trace.events import EVENT_KINDS, Scalar, TraceEvent, coerce_attr

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.metrics import RuntimeStats

CATEGORIES = ("flow", "task")
"""Span categories: algorithm phases vs. executor work units."""

_ID_BYTES = 8

ROOT_SPAN_ID = hashlib.sha256(b"repro-trace-root").hexdigest()[: 2 * _ID_BYTES]
"""The synthetic root span's ID (identical in every trace)."""


def span_id_for(parent_id: str, name: str, token: str) -> str:
    """The stable ID of a span at path ``parent/name#token``."""
    text = f"{parent_id}/{name}#{token}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[: 2 * _ID_BYTES]


@dataclass
class Span:
    """One interval of the span tree.

    Attributes
    ----------
    span_id:
        Stable identity (see :func:`span_id_for`).
    name:
        Phase or task name (``"mine_candidates"``, ``"fault_group"``).
    category:
        ``"flow"`` or ``"task"``.
    attrs:
        JSON-scalar attributes fixed at creation (circuit name, ``u``,
        ``L_S``, ...).
    parent_id:
        The enclosing span's ID (None only for the root).
    t_start_s / t_end_s:
        Wall-clock interval in seconds since the tracer's epoch.
    cpu_start_s / cpu_end_s:
        ``time.process_time`` interval.
    counter_deltas:
        Per-counter increments of the attached
        :class:`~repro.runtime.metrics.RuntimeStats` over the span
        (zero deltas omitted).
    children:
        Nested spans, in creation order.
    """

    span_id: str
    name: str
    category: str
    attrs: Dict[str, Scalar]
    parent_id: Optional[str]
    t_start_s: float
    t_end_s: Optional[float] = None
    cpu_start_s: float = 0.0
    cpu_end_s: Optional[float] = None
    counter_deltas: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds spanned (0.0 while still open)."""
        if self.t_end_s is None:
            return 0.0
        return self.t_end_s - self.t_start_s

    @property
    def cpu_s(self) -> float:
        """CPU seconds spanned (0.0 while still open)."""
        if self.cpu_end_s is None:
            return 0.0
        return self.cpu_end_s - self.cpu_start_s

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def self_counter_deltas(self) -> Dict[str, float]:
        """Counter increments attributed to this span *excluding* its
        children (non-negative for monotonic counters)."""
        out = dict(self.counter_deltas)
        for child in self.children:
            for name, delta in child.counter_deltas.items():
                out[name] = out.get(name, 0.0) - delta
        return {k: v for k, v in out.items() if v}

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form of this subtree."""
        return {
            "id": self.span_id,
            "name": self.name,
            "category": self.category,
            "attrs": dict(self.attrs),
            "t_start_s": self.t_start_s,
            "duration_s": self.duration_s,
            "cpu_s": self.cpu_s,
            "counters": dict(self.counter_deltas),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(
        cls, payload: object, parent_id: Optional[str] = None
    ) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise TraceError(f"trace span is not an object: {payload!r}")
        try:
            t_start = float(payload.get("t_start_s", 0.0))
            duration = float(payload.get("duration_s", 0.0))
            cpu = float(payload.get("cpu_s", 0.0))
            attrs = payload.get("attrs", {})
            counters = payload.get("counters", {})
            if not isinstance(attrs, dict) or not isinstance(counters, dict):
                raise TraceError(f"malformed trace span: {payload!r}")
            span = cls(
                span_id=str(payload["id"]),
                name=str(payload["name"]),
                category=str(payload.get("category", "flow")),
                attrs={str(k): coerce_attr(v) for k, v in attrs.items()},
                parent_id=parent_id,
                t_start_s=t_start,
                t_end_s=t_start + duration,
                cpu_start_s=0.0,
                cpu_end_s=cpu,
                counter_deltas={str(k): float(v) for k, v in counters.items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace span: {payload!r}") from exc
        children = payload.get("children", [])
        if not isinstance(children, list):
            raise TraceError(f"trace span children is not a list: {children!r}")
        span.children = [
            cls.from_dict(child, parent_id=span.span_id) for child in children
        ]
        return span


class Tracer:
    """Collects one trace: a span tree plus the event log.

    Parameters
    ----------
    stats:
        Optional :class:`~repro.runtime.metrics.RuntimeStats`; when
        given, every span records the delta of each counter over its
        interval.
    on_event:
        Optional callback fired with every :class:`TraceEvent` as it
        is appended — the live-progress tap used by
        :mod:`repro.serve.progress`.  Exceptions it raises are
        swallowed: observation must never change the observed run.

    The tracer is strictly stack-disciplined: :meth:`end` must close
    the innermost open span (the ``span`` context manager guarantees
    this).  :meth:`finish` closes everything still open — after it,
    the trace is immutable.
    """

    def __init__(
        self,
        stats: Optional["RuntimeStats"] = None,
        on_event: Optional[Callable[[TraceEvent], None]] = None,
    ) -> None:
        self.stats = stats
        self.on_event = on_event
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.root = Span(
            span_id=ROOT_SPAN_ID,
            name="trace",
            category="flow",
            attrs={},
            parent_id=None,
            t_start_s=0.0,
            cpu_start_s=0.0,
        )
        self._stack: List[Tuple[Span, Dict[str, float]]] = [
            (self.root, self._snapshot())
        ]
        self._occurrences: Dict[Tuple[str, str], int] = {}
        self.events: List[TraceEvent] = []
        self._finished = False

    # -- clocks and counters ------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _cpu_now(self) -> float:
        return time.process_time() - self._cpu0

    def _snapshot(self) -> Dict[str, float]:
        if self.stats is None:
            return {}
        return self.stats.snapshot()

    # -- span lifecycle -----------------------------------------------------

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1][0]

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` sealed the trace."""
        return self._finished

    def begin(
        self,
        name: str,
        category: str = "flow",
        key: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Open a child span of the current span and make it current.

        ``key`` overrides the identity token (worker tasks pass their
        task digest); without it the token is the occurrence index of
        ``name`` under this parent — deterministic for spans created
        at fixed program points.
        """
        if self._finished:
            raise TraceError("tracer is finished; no new spans can start")
        if category not in CATEGORIES:
            raise TraceError(
                f"unknown span category {category!r}; expected one of "
                f"{', '.join(CATEGORIES)}"
            )
        parent = self.current
        if key is None:
            slot = (parent.span_id, name)
            index = self._occurrences.get(slot, 0)
            self._occurrences[slot] = index + 1
            token = str(index)
        else:
            token = key
        span = Span(
            span_id=span_id_for(parent.span_id, name, token),
            name=name,
            category=category,
            attrs={str(k): coerce_attr(v) for k, v in attrs.items()},
            parent_id=parent.span_id,
            t_start_s=self._now(),
            cpu_start_s=self._cpu_now(),
        )
        parent.children.append(span)
        self._stack.append((span, self._snapshot()))
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` (which must be the innermost open span)."""
        if len(self._stack) <= 1:
            raise TraceError("no open span to end (root closes via finish())")
        top, start_counters = self._stack[-1]
        if top is not span:
            raise TraceError(
                f"out-of-order span end: {span.name!r} is not the "
                f"innermost open span ({top.name!r} is)"
            )
        self._stack.pop()
        self._seal(span, start_counters)

    def _seal(self, span: Span, start_counters: Dict[str, float]) -> None:
        span.t_end_s = self._now()
        span.cpu_end_s = self._cpu_now()
        if start_counters or self.stats is not None:
            now = self._snapshot()
            span.counter_deltas = {
                name: now[name] - before
                for name, before in start_counters.items()
                if now.get(name, before) != before
            }

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "flow",
        key: Optional[str] = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Context manager around :meth:`begin` / :meth:`end`."""
        span = self.begin(name, category=category, key=key, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def add_task_span(
        self,
        name: str,
        key: str,
        busy_s: float,
        **attrs: object,
    ) -> Span:
        """Record one already-completed executor work unit.

        Worker-pool tasks run out of process, so their spans are
        merged into the parent trace after the fact: a ``task`` span
        keyed on the task digest (stable across runs, workers and
        PIDs) whose duration is the worker's busy time.  The span is
        attached to the currently open span and closed immediately.
        """
        if self._finished:
            raise TraceError("tracer is finished; no new spans can start")
        parent = self.current
        now = self._now()
        span = Span(
            span_id=span_id_for(parent.span_id, name, key),
            name=name,
            category="task",
            attrs={str(k): coerce_attr(v) for k, v in attrs.items()},
            parent_id=parent.span_id,
            t_start_s=max(now - busy_s, parent.t_start_s),
            cpu_start_s=0.0,
            cpu_end_s=busy_s,
        )
        span.t_end_s = span.t_start_s + busy_s
        parent.children.append(span)
        return span

    # -- events -------------------------------------------------------------

    def event(self, kind: str, **attrs: object) -> TraceEvent:
        """Append one event, attached to the current span."""
        if kind not in EVENT_KINDS:
            raise TraceError(
                f"unknown trace event kind {kind!r}; expected one of "
                f"{', '.join(sorted(EVENT_KINDS))}"
            )
        if self._finished:
            raise TraceError("tracer is finished; no new events can fire")
        event = TraceEvent(
            seq=len(self.events),
            kind=kind,
            span_id=self.current.span_id,
            t_s=self._now(),
            attrs={str(k): coerce_attr(v) for k, v in attrs.items()},
        )
        self.events.append(event)
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:  # noqa: BLE001 - observers must not break runs
                pass
        return event

    # -- sealing ------------------------------------------------------------

    def finish(self) -> Span:
        """Close every open span, including the root; idempotent."""
        if self._finished:
            return self.root
        while len(self._stack) > 1:
            span, counters = self._stack[-1]
            self._stack.pop()
            self._seal(span, counters)
        root, counters = self._stack[0]
        self._seal(root, counters)
        self._finished = True
        return root
