"""Trace normalization for golden-trace comparison.

A raw trace mixes two kinds of information: *what* the flow computed
(phase structure, Ω acceptances, reverse-order decisions) and *how*
the run executed it (timings, worker tasks, cache traffic, chaos
recovery).  The first is a pure function of the workload and must be
identical for a serial run, a ``--jobs 4`` run, a warm-cache rerun,
and a chaos-injected run; the second legitimately varies.

:func:`normalize_trace` keeps only the deterministic projection:

* ``flow``-category spans (IDs, names, attributes, child order) —
  ``task`` spans are dropped;
* events whose kind is in
  :data:`~repro.trace.events.DETERMINISTIC_KINDS`, renumbered densely
  — runtime kinds are dropped;
* no timestamps, durations, CPU times, or counter deltas.

:func:`normalized_json` renders that projection as canonical compact
JSON, so the golden-trace tests can compare runs byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.trace.events import TraceEvent
from repro.trace.span import Span


def normalize_span(span: Span) -> Optional[Dict[str, object]]:
    """The deterministic projection of one span subtree.

    Returns ``None`` for ``task`` spans (and anything beneath them).
    """
    if span.category != "flow":
        return None
    children = [normalize_span(c) for c in span.children]
    return {
        "id": span.span_id,
        "name": span.name,
        "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
        "children": [c for c in children if c is not None],
    }


def normalize_events(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Deterministic events only, densely renumbered, timestamps gone."""
    out: List[Dict[str, object]] = []
    for event in events:
        if not event.deterministic:
            continue
        out.append(
            {
                "seq": len(out),
                "kind": event.kind,
                "span": event.span_id,
                "attrs": {k: event.attrs[k] for k in sorted(event.attrs)},
            }
        )
    return out


def normalize_trace(
    root: Span, events: Iterable[TraceEvent]
) -> Dict[str, object]:
    """The full deterministic projection of a trace."""
    span_tree = normalize_span(root)
    if span_tree is None:
        # The root is always a flow span; a task root means the caller
        # normalized a subtree it should not have.
        span_tree = {"id": root.span_id, "name": root.name, "attrs": {}, "children": []}
    return {"spans": span_tree, "events": normalize_events(events)}


def normalized_json(root: Span, events: Iterable[TraceEvent]) -> str:
    """Canonical compact JSON of the normalized trace (byte-comparable)."""
    return json.dumps(
        normalize_trace(root, events),
        sort_keys=True,
        separators=(",", ":"),
    )
