"""SCOAP testability measures (Goldstein 1979), sequential extension.

Combinational controllability ``CC0``/``CC1`` counts the minimum number
of input assignments (plus traversed gates) needed to set a net to
0/1; observability ``CO`` counts the additional effort to propagate a
net's value to a primary output.  For sequential circuits, a flip-flop
adds one unit of *sequential* depth; the measures are iterated through
the state loops to a (saturating) fixpoint.

These measures drive two things here: the hard-fault analysis in the
benchmarks (faults the random-walk generator misses have
characteristically high SCOAP numbers), and an optional backtrace
guidance heuristic for PODEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: Saturation bound: unreachable / uncontrollable values stay here.
INFINITY = 10**6


@dataclass(frozen=True)
class ScoapMeasures:
    """SCOAP values for every net.

    Attributes
    ----------
    cc0 / cc1:
        Controllability to 0 / 1 per net (primary inputs cost 1).
    co:
        Observability per net (primary outputs cost 0).
    """

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co: Dict[str, int]

    def fault_difficulty(self, net: str, stuck: int) -> int:
        """SCOAP difficulty of the stem fault ``net``/``stuck``:
        controllability to the opposite value plus observability."""
        control = self.cc1[net] if stuck == 0 else self.cc0[net]
        return min(INFINITY, control + self.co[net])


def compute_scoap(circuit: Circuit, max_iterations: int = 50) -> ScoapMeasures:
    """Compute SCOAP measures for ``circuit``.

    Controllability iterates forward through the flip-flops until a
    fixpoint (values only decrease, bounded below, so termination is
    guaranteed; ``max_iterations`` is a safety net).  Observability then
    iterates backward the same way.
    """
    cc0 = {net: INFINITY for net in circuit.gates}
    cc1 = {net: INFINITY for net in circuit.gates}
    for net, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            cc0[net] = 1
            cc1[net] = 1
        elif gate.gtype is GateType.CONST0:
            cc0[net] = 0
        elif gate.gtype is GateType.CONST1:
            cc1[net] = 0

    for _ in range(max_iterations):
        changed = False
        for net in circuit.combinational_order:
            new0, new1 = _gate_controllability(circuit, net, cc0, cc1)
            if new0 < cc0[net] or new1 < cc1[net]:
                cc0[net] = min(cc0[net], new0)
                cc1[net] = min(cc1[net], new1)
                changed = True
        for net in circuit.flops:
            d_net = circuit.gate(net).fanins[0]
            # A flip-flop adds one unit of sequential cost.
            if cc0[d_net] + 1 < cc0[net]:
                cc0[net] = cc0[d_net] + 1
                changed = True
            if cc1[d_net] + 1 < cc1[net]:
                cc1[net] = cc1[d_net] + 1
                changed = True
        if not changed:
            break

    co = {net: INFINITY for net in circuit.gates}
    for net in circuit.outputs:
        co[net] = 0
    for _ in range(max_iterations):
        changed = False
        for net in reversed(circuit.combinational_order):
            gate = circuit.gate(net)
            for pin, fanin in enumerate(gate.fanins):
                new = _pin_observability(gate, pin, co[net], cc0, cc1)
                if new < co[fanin]:
                    co[fanin] = new
                    changed = True
        for net in circuit.flops:
            gate = circuit.gate(net)
            d_net = gate.fanins[0]
            if co[net] + 1 < co[d_net]:
                co[d_net] = co[net] + 1
                changed = True
        # Fanout stems: a net observable through any sink.
        for net in circuit.gates:
            for sink, pin in circuit.fanout(net):
                sink_gate = circuit.gate(sink)
                if sink_gate.gtype is GateType.DFF:
                    new = co[sink] + 1
                else:
                    new = _pin_observability(sink_gate, pin, co[sink], cc0, cc1)
                if new < co[net]:
                    co[net] = new
                    changed = True
        if not changed:
            break

    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)


def _gate_controllability(
    circuit: Circuit,
    net: str,
    cc0: Dict[str, int],
    cc1: Dict[str, int],
) -> Tuple[int, int]:
    """(CC0, CC1) of a combinational gate from its fanin measures."""
    gate = circuit.gate(net)
    ins0 = [cc0[f] for f in gate.fanins]
    ins1 = [cc1[f] for f in gate.fanins]
    gtype = gate.gtype

    def cap(value: int) -> int:
        return min(value, INFINITY)

    if gtype is GateType.BUF:
        return cap(ins0[0] + 1), cap(ins1[0] + 1)
    if gtype is GateType.NOT:
        return cap(ins1[0] + 1), cap(ins0[0] + 1)
    if gtype in (GateType.AND, GateType.NAND):
        to0 = cap(min(ins0) + 1)          # one controlling 0
        to1 = cap(sum(ins1) + 1)          # all inputs 1
        return (to0, to1) if gtype is GateType.AND else (to1, to0)
    if gtype in (GateType.OR, GateType.NOR):
        to1 = cap(min(ins1) + 1)
        to0 = cap(sum(ins0) + 1)
        return (to0, to1) if gtype is GateType.OR else (to1, to0)
    # XOR / XNOR: parity over inputs; enumerate parities cheaply for
    # two inputs, approximate with pairwise folding beyond.
    even, odd = ins0[0], ins1[0]
    for k in range(1, len(ins0)):
        new_even = min(even + ins0[k], odd + ins1[k])
        new_odd = min(even + ins1[k], odd + ins0[k])
        even, odd = new_even, new_odd
    even, odd = cap(even + 1), cap(odd + 1)
    if gtype is GateType.XOR:
        return even, odd
    return odd, even


def _pin_observability(
    gate,
    pin: int,
    out_co: int,
    cc0: Dict[str, int],
    cc1: Dict[str, int],
) -> int:
    """Observability of a gate input pin given the output's CO."""
    gtype = gate.gtype
    others = [f for k, f in enumerate(gate.fanins) if k != pin]
    if gtype in (GateType.BUF, GateType.NOT):
        side = 0
    elif gtype in (GateType.AND, GateType.NAND):
        side = sum(cc1[f] for f in others)  # side inputs at 1
    elif gtype in (GateType.OR, GateType.NOR):
        side = sum(cc0[f] for f in others)  # side inputs at 0
    else:  # XOR / XNOR: side inputs at any known value
        side = sum(min(cc0[f], cc1[f]) for f in others)
    return min(out_co + side + 1, INFINITY)
