"""Frame-local implication engine (SOCRATES-style static learning).

A literal ``(net, v)`` means "the ternary machine computes the *binary*
value ``v`` on ``net`` this cycle".  The engine derives:

* **direct implications** — forward gate evaluation and backward unit
  propagation, each step valid under the ternary semantics (e.g. an AND
  whose output is 0 while all other inputs are 1 forces the last input
  to 0, because a 1 would make the output 1 and an X would make it X);
* **learned implications** — the contrapositive of every derived
  direct implication.  Ternary semantics make the contrapositive an
  *exclusion*: from ``(a=v ⟹ b=w)`` and an observed ``b = ¬w`` follows
  only ``a ≠ v`` (``a`` may still be X), so learned edges map a trigger
  literal to the literals it excludes;
* **impossible literals** — assuming a literal and reaching a
  contradiction proves the machine never computes it (every derivation
  step is ternary-valid, so a real machine state satisfying the
  assumption would satisfy the whole contradictory set at once).

Impossibility proofs double as certificates: the derivation is recorded
step by step and :func:`replay_implication_steps` re-validates each step
by brute-force local ternary reasoning, independent of the search that
found it.  Certificate-grade proofs never use learned edges — only
steps a checker can justify against the gate functions and the
value-set fixpoint.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.analysis.static.valuesets import (
    CAN0,
    CAN1,
    CANX,
    constants_of,
    gate_value_set,
)

Literal = Tuple[str, int]
"""``(net, binary value)`` — the net computes this binary value."""

_X = 2
_MAX_LOCAL_WORLDS = 3**12
_LEARN_ROUNDS = 4


def _ternary_gate(gtype: GateType, values: Sequence[int]) -> int:
    """Exact ternary gate evaluation over 0/1/``_X`` values."""
    mask = gate_value_set(
        gtype, [CAN0 if v == 0 else CAN1 if v == 1 else CANX for v in values]
    )
    if mask == CAN0:
        return 0
    if mask == CAN1:
        return 1
    return _X


class _Conflict(Exception):
    """Internal control flow: the current assumption set is contradictory."""


class ImplicationEngine:
    """Implication machinery over one circuit and its value-set fixpoint.

    ``value_sets`` is the good-machine union map ``U`` from
    :func:`repro.analysis.static.valuesets.frame_fixpoint`; singleton
    binary sets seed constants, and a binary value absent from ``U``
    makes the corresponding literal impossible from the start.
    """

    def __init__(self, circuit: Circuit, value_sets: Mapping[str, int]) -> None:
        self.circuit = circuit
        self.value_sets = dict(value_sets)
        self.constants = constants_of(value_sets)
        self.impossible: Set[Literal] = {
            (net, v)
            for net, mask in self.value_sets.items()
            for v in (0, 1)
            if not mask & (CAN1 if v else CAN0)
        }
        #: literals proved impossible by contradiction, with their
        #: recorded derivations (net, v) -> steps.
        self.contradictions: Dict[Literal, Tuple[Dict[str, object], ...]] = {}
        #: direct implications: literal -> every literal it forces.
        self.implications: Dict[Literal, Tuple[Literal, ...]] = {}
        #: learned exclusions: trigger literal -> literals it rules out.
        self.learned: Dict[Literal, Tuple[Literal, ...]] = {}
        self._gates_of: Dict[str, Tuple[str, ...]] = self._build_adjacency()
        self._learned_sets: Dict[Literal, Set[Literal]] = {}

    def _build_adjacency(self) -> Dict[str, Tuple[str, ...]]:
        """Net -> combinational gates to re-examine when it is assigned."""
        adj: Dict[str, List[str]] = {net: [] for net in self.circuit.gates}
        for name in self.circuit.combinational_order:
            adj[name].append(name)
            for driver in self.circuit.gate(name).fanins:
                adj[driver].append(name)
        return {net: tuple(dict.fromkeys(gates)) for net, gates in adj.items()}

    # -- propagation --------------------------------------------------------

    def propagate(
        self,
        assumptions: Mapping[str, int],
        use_learned: bool = True,
        record: Optional[List[Dict[str, object]]] = None,
    ) -> Optional[Dict[str, int]]:
        """Binary consequence closure of ``assumptions``.

        Returns the full assignment map (assumptions, constants and
        everything they force) or ``None`` on contradiction.  With
        ``record`` supplied the derivation is logged step by step and
        learned edges are never used, so the log replays under
        :func:`replay_implication_steps`.
        """
        if record is not None:
            use_learned = False
        assigned: Dict[str, int] = {}
        excluded: Dict[str, int] = {}
        queue: List[str] = []

        def note(why: str, net: str, value: int, **extra: object) -> None:
            if record is not None:
                step: Dict[str, object] = {"why": why, "net": net, "value": value}
                step.update(extra)
                record.append(step)

        def assign(net: str, value: int, why: str, **extra: object) -> None:
            if assigned.get(net) == value:
                return
            note(why, net, value, **extra)
            if net in assigned:
                raise _Conflict
            if (net, value) in self.impossible and record is None:
                raise _Conflict
            mask = self.value_sets.get(net, 0)
            if not mask & (CAN1 if value else CAN0):
                # The value-set fixpoint already rules this value out —
                # checkable independently, so it may justify a recorded
                # conflict.
                raise _Conflict
            if excluded.get(net, 0) & (1 << value):
                raise _Conflict
            assigned[net] = value
            queue.extend(self._gates_of.get(net, ()))
            if use_learned:
                for lit in self._learned_sets.get((net, value), ()):
                    exclude(lit[0], lit[1])

        def exclude(net: str, value: int) -> None:
            bit = 1 << value
            if excluded.get(net, 0) & bit:
                return
            if assigned.get(net) == value:
                raise _Conflict
            excluded[net] = excluded.get(net, 0) | bit
            if not self.value_sets.get(net, 0) & CANX:
                # The net is never X, so ruling out one binary value
                # forces the other.
                assign(net, 1 - value, "binary-only")

        try:
            for net, value in self.constants.items():
                assign(net, value, "const")
            for net, value in assumptions.items():
                assign(net, value, "assume")
            while queue:
                gate_name = queue.pop()
                self._examine(gate_name, assigned, assign)
        except _Conflict:
            return None
        return assigned

    def _examine(
        self,
        name: str,
        assigned: Dict[str, int],
        assign: "Callable[..., None]",
    ) -> None:
        """Apply every forward/backward rule of one combinational gate."""
        gate = self.circuit.gate(name)
        gtype = gate.gtype
        fanins = gate.fanins
        out = assigned.get(name)
        ins = [assigned.get(f) for f in fanins]

        if gtype in (GateType.NOT, GateType.BUF):
            invert = gtype is GateType.NOT
            if ins[0] is not None:
                assign(name, ins[0] ^ 1 if invert else ins[0], "gate", gate=name)
            if out is not None:
                assign(fanins[0], out ^ 1 if invert else out, "gate", gate=name)
            return
        if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            control = 0 if gtype in (GateType.AND, GateType.NAND) else 1
            inverted = gtype in (GateType.NAND, GateType.NOR)
            out_control = control ^ 1 if inverted else control
            out_all = out_control ^ 1
            if any(v == control for v in ins):
                assign(name, out_control, "gate", gate=name)
            if all(v == control ^ 1 for v in ins):
                assign(name, out_all, "gate", gate=name)
            if out == out_all:
                for driver in fanins:
                    assign(driver, control ^ 1, "gate", gate=name)
            if out == out_control:
                unknown = [i for i, v in enumerate(ins) if v is None]
                if len(unknown) == 1 and all(
                    v == control ^ 1 for i, v in enumerate(ins) if i != unknown[0]
                ):
                    assign(fanins[unknown[0]], control, "gate", gate=name)
            return
        if gtype in (GateType.XOR, GateType.XNOR):
            invert = gtype is GateType.XNOR
            unknown = [i for i, v in enumerate(ins) if v is None]
            if not unknown:
                parity = 0
                for v in ins:
                    parity ^= v or 0
                assign(name, parity ^ 1 if invert else parity, "gate", gate=name)
            elif len(unknown) == 1 and out is not None:
                parity = out ^ 1 if invert else out
                for i, v in enumerate(ins):
                    if i != unknown[0]:
                        parity ^= v or 0
                assign(fanins[unknown[0]], parity, "gate", gate=name)
            return
        raise AnalysisError(f"unexpected gate type {gtype!r} in implication")

    # -- learning -----------------------------------------------------------

    def learn(self) -> None:
        """Run static learning to a fixpoint.

        Each round closes every feasible literal; contradictions extend
        :attr:`impossible` (with a recorded certificate-grade
        derivation) and every direct implication contributes its
        contrapositive as a learned exclusion for later rounds.
        """
        literals = [
            (net, v)
            for net in self.circuit.nets
            if net not in self.constants
            and self.circuit.gate(net).gtype
            not in (GateType.CONST0, GateType.CONST1)
            for v in (0, 1)
        ]
        for _ in range(_LEARN_ROUNDS):
            changed = False
            self.implications = {}
            for literal in literals:
                if literal in self.impossible:
                    continue
                net, value = literal
                result = self.propagate({net: value})
                if result is None:
                    steps: List[Dict[str, object]] = []
                    if self.propagate({net: value}, record=steps) is None:
                        self.contradictions[literal] = tuple(steps)
                    self.impossible.add(literal)
                    changed = True
                    continue
                derived = tuple(
                    sorted(
                        (m, w)
                        for m, w in result.items()
                        if m != net and m not in self.constants
                    )
                )
                self.implications[literal] = derived
                for m, w in derived:
                    bucket = self._learned_sets.setdefault((m, 1 - w), set())
                    if literal not in bucket:
                        bucket.add(literal)
                        changed = True
            if not changed:
                break
        self.learned = {
            trigger: tuple(sorted(lits))
            for trigger, lits in sorted(self._learned_sets.items())
        }

    def implied_constants(self) -> Dict[str, int]:
        """Nets forced constant by implication beyond the value sets.

        A net whose opposite binary value is impossible *and* that can
        never be X is constant; only nets not already constant by the
        value sets alone are reported.
        """
        out: Dict[str, int] = {}
        for net, mask in self.value_sets.items():
            if net in self.constants or mask & CANX:
                continue
            for v in (0, 1):
                if (net, 1 - v) in self.impossible and (net, v) not in self.impossible:
                    out[net] = v
        return dict(sorted(out.items()))


def replay_implication_steps(
    circuit: Circuit,
    value_sets: Mapping[str, int],
    literal: Literal,
    steps: Sequence[Mapping[str, object]],
) -> bool:
    """Re-validate a recorded impossibility derivation for ``literal``.

    Replays the derivation with every step justified locally — constants
    and value-set facts against ``value_sets`` (independently recomputed
    by the caller), gate steps by brute-force enumeration of the ternary
    input worlds consistent with the facts so far — and accepts only if
    the final step is a genuine contradiction.  Trusts nothing about how
    the derivation was found.
    """
    facts: Dict[str, int] = {}
    constants = constants_of(value_sets)
    saw_assumption = False
    for index, step in enumerate(steps):
        try:
            why = str(step["why"])
            net = str(step["net"])
            value = int(step["value"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return False
        if value not in (0, 1) or net not in circuit.gates:
            return False
        if why == "assume":
            if (net, value) != literal:
                return False
            saw_assumption = True
        elif why == "const":
            if constants.get(net) != value:
                return False
        elif why == "gate":
            gate_name = str(step.get("gate", ""))
            if not _gate_step_valid(circuit, facts, gate_name, net, value):
                return False
        elif why == "binary-only":
            # Certificate-grade proofs never exclude without assigning,
            # so this justification cannot appear in a valid replay.
            return False
        else:
            return False
        is_last = index == len(steps) - 1
        conflict = facts.get(net) == 1 - value or not value_sets.get(net, 0) & (
            CAN1 if value else CAN0
        )
        if conflict:
            return is_last and saw_assumption
        facts[net] = value
    return False


def _gate_step_valid(
    circuit: Circuit,
    facts: Mapping[str, int],
    gate_name: str,
    net: str,
    value: int,
) -> bool:
    """Does ``net = value`` hold in every ternary world of ``gate_name``
    consistent with ``facts``?  (Vacuously false worlds prove nothing —
    an empty world set means an earlier fact pair already conflicts at
    this gate, which the replay surfaces as a direct conflict instead.)
    """
    if gate_name not in circuit.gates:
        return False
    gate = circuit.gate(gate_name)
    if not gate.gtype.is_combinational:
        return False
    if net != gate_name and net not in gate.fanins:
        return False
    drivers = tuple(dict.fromkeys(gate.fanins))
    if 3 ** len(drivers) > _MAX_LOCAL_WORLDS:
        return False
    worlds = 0
    for combo in product((0, 1, _X), repeat=len(drivers)):
        world = dict(zip(drivers, combo))
        # The derived net's own prior fact is deliberately *not* a world
        # constraint: a conflicting derivation (the final step of a
        # contradiction proof) must still be justifiable by the other
        # facts alone — the replay loop detects the clash afterwards.
        if any(
            driver in facts and driver != net and world[driver] != facts[driver]
            for driver in drivers
        ):
            continue
        out = _ternary_gate(gate.gtype, [world[d] for d in gate.fanins])
        if gate_name in facts and gate_name != net and out != facts[gate_name]:
            continue
        worlds += 1
        derived = out if net == gate_name else world[net]
        if derived != value:
            return False
    return worlds > 0
