"""Possible-value-set abstraction over the ternary machine.

Each net carries a *set* of ternary values it may take — a subset of
``{0, 1, X}`` encoded as a 3-bit mask — and gates are evaluated over
sets.  Iterating frames with accumulating flip-flop sets yields, per
net, a sound over-approximation ``U(net)`` of every value the net can
take at *any* cycle under *any* stimulus, starting from the paper's
all-X no-reset state.

Soundness argument (the certificates in :mod:`repro.analysis.static.certify`
lean on it):

* The set transfer functions are exact images of the ternary gate
  functions under independent choice of input values; correlation
  between inputs can only shrink the reachable set, so the computed
  set is always a superset of the truly reachable one.
* The transfer functions are monotone in set inclusion, and the
  flip-flop sets only grow (``state' = state ∪ next``), so the frame
  iteration reaches a least fixpoint in at most ``3 · n_flops + 1``
  frames and every per-cycle reachable value is contained in it.

A :class:`Clamp` models a stuck-at fault exactly as the bit-parallel
simulator forces it (:class:`repro.sim.faultsim._GroupSim`): a stem
clamp replaces the net's value after evaluation (primary inputs and
flip-flop outputs included), a pin clamp replaces what one gate input
reads, and a flip-flop branch clamp replaces the *latched* next state
(so the faulty flop still starts at X in cycle 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError

CAN0 = 1
"""Mask bit: the net can evaluate to binary 0."""
CAN1 = 2
"""Mask bit: the net can evaluate to binary 1."""
CANX = 4
"""Mask bit: the net can evaluate to the unknown value X."""

SET_NONE = 0
SET_0 = CAN0
SET_1 = CAN1
SET_X = CANX
SET_ALL = CAN0 | CAN1 | CANX

_CHARS = ((CAN0, "0"), (CAN1, "1"), (CANX, "X"))


def set_to_str(mask: int) -> str:
    """Canonical rendering of a value-set mask, e.g. ``"0X"``."""
    return "".join(char for bit, char in _CHARS if mask & bit)


def set_from_str(text: str) -> int:
    """Inverse of :func:`set_to_str` (used by certificate validation)."""
    mask = 0
    for char in text:
        for bit, known in _CHARS:
            if char == known:
                mask |= bit
                break
        else:
            raise AnalysisError(f"bad value-set character {char!r}")
    return mask


def and_sets(inputs: Sequence[int]) -> int:
    """Image of the ternary AND over independent input sets."""
    out = 0
    if any(s & CAN0 for s in inputs):
        out |= CAN0
    if all(s & CAN1 for s in inputs):
        out |= CAN1
    if all(s & (CAN1 | CANX) for s in inputs) and any(s & CANX for s in inputs):
        out |= CANX
    return out


def or_sets(inputs: Sequence[int]) -> int:
    """Image of the ternary OR over independent input sets."""
    out = 0
    if any(s & CAN1 for s in inputs):
        out |= CAN1
    if all(s & CAN0 for s in inputs):
        out |= CAN0
    if all(s & (CAN0 | CANX) for s in inputs) and any(s & CANX for s in inputs):
        out |= CANX
    return out


def not_set(value: int) -> int:
    """Image of the ternary NOT over a set."""
    out = value & CANX
    if value & CAN0:
        out |= CAN1
    if value & CAN1:
        out |= CAN0
    return out


def xor_sets(inputs: Sequence[int]) -> int:
    """Image of the ternary XOR over independent input sets.

    Ternary XOR is X as soon as any input is X; otherwise it is the
    parity of the binary inputs, so the binary part of the image is the
    fold of achievable parities.
    """
    out = 0
    if any(s & CANX for s in inputs):
        out |= CANX
    parities = 1  # bit p set <=> parity p achievable; start: even
    for s in inputs:
        nxt = 0
        if s & CAN0:
            nxt |= parities
        if s & CAN1:
            nxt |= ((parities & 1) << 1) | ((parities & 2) >> 1)
        parities = nxt
    if parities & 1:
        out |= CAN0
    if parities & 2:
        out |= CAN1
    return out


def gate_value_set(gtype: GateType, inputs: Sequence[int]) -> int:
    """Set-level evaluation of one combinational gate."""
    if gtype is GateType.AND:
        return and_sets(inputs)
    if gtype is GateType.NAND:
        return not_set(and_sets(inputs))
    if gtype is GateType.OR:
        return or_sets(inputs)
    if gtype is GateType.NOR:
        return not_set(or_sets(inputs))
    if gtype is GateType.XOR:
        return xor_sets(inputs)
    if gtype is GateType.XNOR:
        return not_set(xor_sets(inputs))
    if gtype is GateType.NOT:
        return not_set(inputs[0])
    if gtype is GateType.BUF:
        return inputs[0]
    raise AnalysisError(f"gate type {gtype!r} is not combinational")


@dataclass(frozen=True)
class Clamp:
    """A stuck-at force, mirrored from the fault simulator's semantics.

    ``gate``/``pin`` are ``None`` for a stem clamp.  A branch clamp
    whose ``gate`` is a flip-flop forces the latched next state.
    """

    net: str
    value: int
    gate: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise AnalysisError(f"clamp value must be 0 or 1, got {self.value!r}")

    @property
    def mask(self) -> int:
        """The singleton value set the clamp forces."""
        return CAN1 if self.value else CAN0


def evaluate_frame(
    circuit: Circuit,
    state: Mapping[str, int],
    clamp: Optional[Clamp] = None,
) -> Dict[str, int]:
    """One frame of set evaluation from per-flop state sets.

    Primary inputs take the full set (any stimulus, X included);
    constants take their singleton; flip-flop output nets take their
    accumulated state set.
    """
    stem = clamp if clamp is not None and clamp.gate is None else None
    pin_clamp = clamp if clamp is not None and clamp.gate is not None else None
    vals: Dict[str, int] = {}
    for name, gate in circuit.gates.items():
        if gate.gtype is GateType.INPUT:
            vals[name] = SET_ALL
        elif gate.gtype is GateType.DFF:
            vals[name] = state[name]
        elif gate.gtype is GateType.CONST0:
            vals[name] = SET_0
        elif gate.gtype is GateType.CONST1:
            vals[name] = SET_1
    if stem is not None and stem.net in vals:
        vals[stem.net] = stem.mask
    for name in circuit.combinational_order:
        gate = circuit.gate(name)
        ins: List[int] = []
        for pin, driver in enumerate(gate.fanins):
            if (
                pin_clamp is not None
                and pin_clamp.gate == name
                and pin_clamp.pin == pin
            ):
                ins.append(pin_clamp.mask)
            else:
                ins.append(vals[driver])
        out = gate_value_set(gate.gtype, ins)
        if stem is not None and stem.net == name:
            out = stem.mask
        vals[name] = out
    return vals


def frame_fixpoint(
    circuit: Circuit,
    clamp: Optional[Clamp] = None,
    max_frames: Optional[int] = None,
) -> Tuple[Dict[str, int], int]:
    """Accumulated per-net value sets ``U`` over all cycles and stimuli.

    Returns ``(U, frames)`` where ``frames`` is the number of frame
    evaluations until the flip-flop sets stabilised.  ``max_frames``
    bounds the unrolling depth; if the bound is hit before the fixpoint
    the remaining flip-flop sets are widened to the full set, keeping
    the result a sound over-approximation.
    """
    flop_clamped = (
        clamp is not None
        and clamp.gate is not None
        and clamp.gate in circuit.gates
        and circuit.gate(clamp.gate).gtype is GateType.DFF
    )
    state: Dict[str, int] = {q: SET_X for q in circuit.flops}
    union: Dict[str, int] = {}
    bound = max_frames if max_frames is not None else 3 * len(circuit.flops) + 1
    frames = 0
    while True:
        vals = evaluate_frame(circuit, state, clamp)
        frames += 1
        for net, mask in vals.items():
            union[net] = union.get(net, 0) | mask
        changed = False
        for q in circuit.flops:
            if flop_clamped and clamp is not None and clamp.gate == q:
                nxt = state[q] | clamp.mask
            else:
                nxt = state[q] | vals[circuit.gate(q).fanins[0]]
            if nxt != state[q]:
                state[q] = nxt
                changed = True
        if not changed:
            break
        if frames >= bound:
            # Depth bound hit: widen to keep soundness, then settle.
            for q in circuit.flops:
                state[q] = SET_ALL
            vals = evaluate_frame(circuit, state, clamp)
            frames += 1
            for net, mask in vals.items():
                union[net] = union.get(net, 0) | mask
            break
    return union, frames


def constants_of(value_sets: Mapping[str, int]) -> Dict[str, int]:
    """Nets provably constant at a binary value (singleton sets)."""
    out: Dict[str, int] = {}
    for net, mask in value_sets.items():
        if mask == SET_0:
            out[net] = 0
        elif mask == SET_1:
            out[net] = 1
    return dict(sorted(out.items()))
